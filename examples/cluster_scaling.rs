//! Cluster scaling study — a miniature of the paper's Fig. 6 and Fig. 7.
//!
//! ```text
//! cargo run -p dismastd-examples --bin cluster_scaling --release
//! ```
//!
//! Runs one DisMASTD snapshot update over the simulated cluster while
//! sweeping (a) the number of worker nodes and (b) the number of tensor
//! partitions per mode, for both partitioning heuristics.  Reports measured
//! iteration time, network bytes, and the per-worker load balance so you
//! can see the trade-offs the paper discusses: more workers → faster until
//! coordination dominates; partitions ≈ workers is the sweet spot; MTP
//! balances skewed tensors better than GTP.

use dismastd_core::distributed::dismastd;
use dismastd_core::{ClusterConfig, DecompConfig};
use dismastd_data::zipf_tensor;
use dismastd_partition::{BalanceStats, GridPartition, Partitioner};
use dismastd_tensor::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A skewed tensor (Zipf indices) so GTP and MTP actually differ.
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let new_shape = [600usize, 500, 200];
    let old_shape = [450usize, 375, 150];
    let full = zipf_tensor(&new_shape, 60_000, &[1.0, 1.0, 0.7], &mut rng)?;
    let complement = full.complement(&old_shape)?;

    // Previous factors: pretend the old box was already decomposed.
    let rank = 10;
    let mut frng = ChaCha8Rng::seed_from_u64(32);
    let old_factors: Vec<Matrix> = old_shape
        .iter()
        .map(|&s| Matrix::random(s, rank, &mut frng))
        .collect();
    let cfg = DecompConfig::default().with_rank(rank).with_max_iters(5);

    println!(
        "complement: {} nonzeros outside the {:?} box of a {:?} tensor\n",
        complement.nnz(),
        old_shape,
        new_shape
    );

    println!("-- sweep 1: worker count (partitions = workers per mode) --------------");
    println!("workers  method  time/iter   net KB/iter  collectives");
    for &workers in &[1usize, 2, 4, 8] {
        for p in [Partitioner::Gtp, Partitioner::Mtp] {
            let cluster = ClusterConfig::new(workers).with_partitioner(p);
            let out = dismastd(&complement, &old_factors, &cfg, &cluster)?;
            println!(
                "{:>7}  {:>6}  {:>9.2?}  {:>10.1}  {:>11}",
                workers,
                p.name(),
                out.time_per_iter(),
                out.comm.bytes as f64 / 1024.0 / out.iterations as f64,
                out.comm.collectives / out.iterations as u64,
            );
        }
    }

    println!("\n-- sweep 2: partitions per mode (4 workers) ---------------------------");
    println!("parts/mode  method  time/iter   worker-load CV");
    for &parts in &[2usize, 4, 8, 16] {
        for p in [Partitioner::Gtp, Partitioner::Mtp] {
            let cluster = ClusterConfig::new(4)
                .with_partitioner(p)
                .with_parts_per_mode(vec![parts; 3]);
            let out = dismastd(&complement, &old_factors, &cfg, &cluster)?;
            // Re-derive the placement to report the load balance it gave.
            let grid = GridPartition::build(&complement, p, &[parts; 3], 4)?;
            let balance = BalanceStats::from_loads(&grid.worker_loads(&complement));
            println!(
                "{:>10}  {:>6}  {:>9.2?}  {:>14.4}",
                parts,
                p.name(),
                out.time_per_iter(),
                balance.cv,
            );
        }
    }

    println!("\n-- partition balance detail (per-mode slice partitions, 8 parts) ------");
    println!("mode  GTP std-dev  MTP std-dev");
    for mode in 0..3 {
        let hist = complement.slice_nnz(mode)?;
        let g = dismastd_partition::gtp(&hist, 8).balance(&hist);
        let m = dismastd_partition::mtp(&hist, 8).balance(&hist);
        println!("{:>4}  {:>11.1}  {:>11.1}", mode, g.std_dev, m.std_dev);
    }

    Ok(())
}

//! Event-log ingestion pipeline: from raw `⟨user, item, day, value⟩` events
//! to a continuously maintained CP decomposition.
//!
//! ```text
//! cargo run -p dismastd-examples --bin event_pipeline --release
//! ```
//!
//! Real deployments don't receive neatly nested snapshot tensors — they
//! receive an ordered event log in which new users, items, and days keep
//! appearing.  This example:
//!
//! 1. synthesises such a log (population growing in every mode);
//! 2. cuts snapshots every `BATCH` events and feeds them to a
//!    `StreamingSession`;
//! 3. monitors the model-fidelity caveat of the multi-aspect streaming
//!    model: late events that land *inside* an already-processed box are
//!    only absorbed through the forgetting-factor approximation
//!    (`EventLog::in_box_events` counts them);
//! 4. picks the CP rank automatically with `select_rank` on the first
//!    batch before streaming begins.

use dismastd_core::{select_rank, DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::EventLog;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const TOTAL_EVENTS: usize = 12_000;
const BATCH: usize = 2_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The event stream: 90 users x 70 items x 40 days at full size.
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    let log =
        EventLog::synthetic_growth(&[90, 70, 40], TOTAL_EVENTS, &[0.8, 0.8, 0.3], 1.0, &mut rng)?;

    // 2. Rank selection on the first batch.
    let first = log.snapshot_after(BATCH)?;
    let base = DecompConfig::default().with_max_iters(15);
    let search = select_rank(&first, &[2, 4, 8, 12], &base, 0.002)?;
    println!("rank search on the first {BATCH} events:");
    for (r, fit) in &search.evaluated {
        println!("  rank {r:>2}: fit {fit:.4}");
    }
    println!("selected rank {}\n", search.selected);

    // 3. Stream the rest.
    let cfg = base.with_rank(search.selected);
    let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);
    println!("batch  shape            events  processed  in-box  fit");
    let mut prev_cut = 0usize;
    let mut cut = BATCH;
    while prev_cut < TOTAL_EVENTS {
        let snapshot = log.snapshot_after(cut)?;
        let report = session.ingest(&snapshot)?;
        let in_box = log.in_box_events(prev_cut, cut);
        println!(
            "{:>5}  {:<15} {:>7} {:>10} {:>7}  {:.4}",
            report.step,
            format!("{:?}", report.snapshot_shape),
            cut.min(TOTAL_EVENTS),
            report.processed_nnz,
            in_box,
            report.fit,
        );
        prev_cut = cut;
        cut = (cut + BATCH).min(TOTAL_EVENTS);
        if prev_cut == TOTAL_EVENTS {
            break;
        }
    }

    let factors = session.factors().ok_or("no batches were ingested")?;
    println!(
        "\nmaintained decomposition: rank-{} over {:?} after {} events",
        factors.rank(),
        factors.shape(),
        TOTAL_EVENTS
    );
    println!(
        "note: in-box events bypass the complement pass and are only captured\n\
         through the μ-weighted history approximation (see data::events docs)."
    );

    Ok(())
}

//! Command-line decomposition of a COO tensor file — the "bring your own
//! data" entry point.
//!
//! ```text
//! cargo run -p dismastd-examples --bin decompose_file --release -- \
//!     [INPUT.tns] [RANK] [--distributed N]
//! ```
//!
//! Reads a FROSTT-style COO text file (`%shape I J K` header, 1-based
//! `i j k value` lines — see `dismastd_data::io`), runs CP-ALS at the given
//! rank (default 10), and writes the factor matrices as JSON next to the
//! input.  With `--distributed N` the decomposition runs on the N-worker
//! simulated cluster and reports the network traffic it counted.
//!
//! Run without arguments to see it demonstrated on a bundled synthetic
//! tensor written to a temporary directory.

use dismastd_core::{ClusterConfig, DecompConfig};
use dismastd_data::io::{read_coo_text, write_coo_text};
use dismastd_data::uniform_tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fs::File;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Demo mode: fabricate an input file when none is given.
    let (input, rank, workers) = parse_args(&args);
    let input = match input {
        Some(path) => path,
        None => demo_input()?,
    };

    // 1. Load.
    let file = File::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", input.display());
        std::process::exit(1);
    });
    let tensor = read_coo_text(file).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", input.display());
        std::process::exit(1);
    });
    println!(
        "loaded {:?} tensor with {} nonzeros from {}",
        tensor.shape(),
        tensor.nnz(),
        input.display()
    );

    // 2. Decompose.
    let cfg = DecompConfig::default()
        .with_rank(rank)
        .with_max_iters(20)
        .with_tolerance(1e-6);
    let start = std::time::Instant::now();
    let (kruskal, iterations, comm) = match workers {
        Some(n) => {
            let out = dismastd_core::dms_mg(&tensor, &cfg, &ClusterConfig::new(n))?;
            (out.kruskal, out.iterations, Some(out.comm))
        }
        None => {
            let out = dismastd_core::als::cp_als(&tensor, &cfg)?;
            (out.kruskal, out.iterations, None)
        }
    };
    let elapsed = start.elapsed();
    let fit = kruskal.fit(&tensor)?;
    println!("rank-{rank} CP decomposition: {iterations} iterations, fit {fit:.4}, {elapsed:.2?}");
    if let Some(c) = comm {
        println!(
            "cluster traffic: {:.1} KB in {} messages, {} collectives",
            c.bytes as f64 / 1024.0,
            c.messages,
            c.collectives
        );
    }

    // 3. Rank components by weight and save.
    let mut normalised = kruskal.clone();
    let weights = normalised.normalize_columns();
    let mut ranked: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "component weights (desc): {:?}",
        ranked
            .iter()
            .map(|(_, w)| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let out_path = input.with_extension("factors.json");
    let json = serde_json::to_string(&kruskal)?;
    std::fs::write(&out_path, json)?;
    println!("factors written to {}", out_path.display());

    Ok(())
}

/// Fabricates the bundled demo tensor in the temp directory.
fn demo_input() -> Result<PathBuf, Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("dismastd_demo.tns");
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let t = uniform_tensor(&[60, 50, 40], 5_000, &mut rng)?;
    let f = File::create(&path)?;
    write_coo_text(&t, f)?;
    println!(
        "(no input given — demo tensor written to {})",
        path.display()
    );
    Ok(path)
}

fn parse_args(args: &[String]) -> (Option<PathBuf>, usize, Option<usize>) {
    let mut input = None;
    let mut rank = 10usize;
    let mut workers = None;
    let mut i = 0;
    let mut positional = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--distributed" => {
                i += 1;
                workers = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--distributed needs a worker count");
                    std::process::exit(2);
                }));
            }
            other => {
                match positional {
                    0 => input = Some(PathBuf::from(other)),
                    1 => {
                        rank = other.parse().unwrap_or_else(|_| {
                            eprintln!("RANK must be a positive integer, got {other}");
                            std::process::exit(2);
                        })
                    }
                    _ => {
                        eprintln!("unexpected argument {other}");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
        i += 1;
    }
    (input, rank, workers)
}

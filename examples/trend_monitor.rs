//! Social-media trend monitoring on the simulated cluster.
//!
//! ```text
//! cargo run -p dismastd-examples --bin trend_monitor --release
//! ```
//!
//! The paper's introduction motivates DisMASTD with the firehose of social
//! platforms (tweets, snaps, calls): an activity tensor
//! `account × topic × hour` grows in all modes as new accounts appear, new
//! topics trend, and time advances.  This example plants three synthetic
//! "trend" communities (groups of accounts posting about a topic cluster in
//! a time window) inside Zipf background noise, streams the growing tensor
//! through **distributed** DisMASTD, and shows that the latent components
//! recover the planted trends while the per-step network traffic stays
//! bounded.

use dismastd_core::{ClusterConfig, DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::ZipfSampler;
use dismastd_partition::Partitioner;
use dismastd_tensor::{SparseTensor, SparseTensorBuilder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const ACCOUNTS: usize = 300;
const TOPICS: usize = 120;
const HOURS: usize = 48;

/// A planted community: a block of accounts posting about a block of topics
/// during a window of hours.
struct Trend {
    accounts: std::ops::Range<usize>,
    topics: std::ops::Range<usize>,
    hours: std::ops::Range<usize>,
    intensity: f64,
}

fn build_full_tensor(
    trends: &[Trend],
    rng: &mut ChaCha8Rng,
) -> Result<SparseTensor, Box<dyn std::error::Error>> {
    let mut b = SparseTensorBuilder::new(vec![ACCOUNTS, TOPICS, HOURS]);
    // Background chatter: Zipf-skewed (a few loud accounts and hot topics).
    let acc = ZipfSampler::new(ACCOUNTS, 1.0);
    let top = ZipfSampler::new(TOPICS, 1.1);
    for _ in 0..12_000 {
        let idx = [acc.sample(rng), top.sample(rng), rng.gen_range(0..HOURS)];
        b.push(&idx, rng.gen_range(0.2..1.0))?;
    }
    // Planted trends: dense positive blocks.
    for t in trends {
        for a in t.accounts.clone() {
            for q in t.topics.clone() {
                for h in t.hours.clone() {
                    if rng.gen::<f64>() < 0.6 {
                        b.push(&[a, q, h], t.intensity * rng.gen_range(0.8..1.2))?;
                    }
                }
            }
        }
    }
    Ok(b.build()?)
}

/// Index of the largest-magnitude entries of a factor column.
fn top_indices(col: usize, factor: &dismastd_tensor::Matrix, k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = (0..factor.rows())
        .map(|i| (i, factor.get(i, col).abs()))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let trends = vec![
        Trend {
            accounts: 10..30,
            topics: 5..15,
            hours: 6..14,
            intensity: 8.0,
        },
        Trend {
            accounts: 120..150,
            topics: 40..52,
            hours: 20..30,
            intensity: 7.0,
        },
        Trend {
            accounts: 220..260,
            topics: 80..95,
            hours: 34..44,
            intensity: 9.0,
        },
    ];
    let full = build_full_tensor(&trends, &mut rng)?;
    println!("activity tensor: {:?}, {} events", full.shape(), full.nnz());

    // Stream it over a 4-worker simulated cluster with MTP partitioning
    // (the skew-robust heuristic — background chatter is Zipf-skewed).
    let cluster = ClusterConfig::new(4).with_partitioner(Partitioner::Mtp);
    let cfg = DecompConfig::default().with_rank(6).with_max_iters(15);
    let mut session = StreamingSession::new(cfg, ExecutionMode::Distributed(cluster));

    println!("\n-- streaming over the 4-worker cluster --------------------------------");
    println!("step  shape              events  processed  fit     net bytes");
    for f in [0.7f64, 0.8, 0.9, 1.0] {
        let bounds: Vec<usize> = full
            .shape()
            .iter()
            .map(|&s| ((s as f64 * f).ceil() as usize).min(s))
            .collect();
        let snapshot = full.restrict(&bounds)?;
        let report = session.ingest(&snapshot)?;
        println!(
            "{:>4}  {:<17} {:>7} {:>10}  {:.4}  {:>9}",
            report.step,
            format!("{:?}", report.snapshot_shape),
            report.snapshot_nnz,
            report.processed_nnz,
            report.fit,
            report.comm.map(|c| c.bytes).unwrap_or(0),
        );
    }

    // Inspect the latent components: each planted trend should dominate one
    // component in all three modes.
    let k = session.factors().ok_or("no batches were ingested")?;
    println!("\n-- latent components (top indices per mode) ---------------------------");
    for c in 0..k.rank() {
        let accounts = top_indices(c, k.factor(0), 5);
        let topics = top_indices(c, k.factor(1), 4);
        let hours = top_indices(c, k.factor(2), 4);
        println!("component {c}: accounts {accounts:?}  topics {topics:?}  hours {hours:?}");
    }

    // Automatic check: for every planted trend, some component's top
    // accounts/topics/hours intersect the planted blocks.
    println!("\n-- planted-trend recovery ---------------------------------------------");
    for (i, t) in trends.iter().enumerate() {
        let recovered = (0..k.rank()).any(|c| {
            let acc_hit = top_indices(c, k.factor(0), 8)
                .iter()
                .filter(|&&a| t.accounts.contains(&a))
                .count();
            let top_hit = top_indices(c, k.factor(1), 8)
                .iter()
                .filter(|&&q| t.topics.contains(&q))
                .count();
            let hr_hit = top_indices(c, k.factor(2), 8)
                .iter()
                .filter(|&&h| t.hours.contains(&h))
                .count();
            acc_hit >= 4 && top_hit >= 4 && hr_hit >= 4
        });
        println!(
            "trend {i} (accounts {:?}, topics {:?}, hours {:?}): {}",
            t.accounts,
            t.topics,
            t.hours,
            if recovered {
                "RECOVERED"
            } else {
                "not clearly separated"
            }
        );
    }

    Ok(())
}

//! Recommendation system on a growing user × product × time rating tensor —
//! the motivating application from the paper's introduction.
//!
//! ```text
//! cargo run -p dismastd-examples --bin recommendation --release
//! ```
//!
//! New users sign up, new products launch, and time marches on, so the
//! rating tensor grows in **all three modes** between snapshots (the
//! multi-aspect streaming setting, Fig. 1 right).  A ground-truth low-rank
//! preference model generates the ratings; the example streams five
//! snapshots through DisMASTD, holds out a set of future ratings, and
//! reports prediction error (RMSE) plus how much cheaper each incremental
//! update was than re-decomposing from scratch.

use dismastd_core::{DecompConfig, ExecutionMode, StreamingSession};
use dismastd_tensor::{KruskalTensor, Matrix, SparseTensor, SparseTensorBuilder};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::error::Error;
use std::time::Instant;

/// Ground truth: a rank-4 preference model over the *final* population.
struct World {
    truth: KruskalTensor,
    users: usize,
    products: usize,
    days: usize,
}

impl World {
    fn new(
        users: usize,
        products: usize,
        days: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, Box<dyn Error>> {
        let rank = 4;
        let factors = vec![
            Matrix::random(users, rank, rng),
            Matrix::random(products, rank, rng),
            Matrix::random(days, rank, rng),
        ];
        Ok(World {
            truth: KruskalTensor::new(factors)?,
            users,
            products,
            days,
        })
    }

    /// True rating of (user, product, day) under the latent model.
    fn rating(&self, u: usize, p: usize, d: usize) -> f64 {
        (0..self.truth.rank())
            .map(|f| {
                self.truth.factor(0).get(u, f)
                    * self.truth.factor(1).get(p, f)
                    * self.truth.factor(2).get(d, f)
            })
            .sum()
    }

    /// Observed ratings inside a population box, with observation rate
    /// `density` and light noise.
    ///
    /// Whether a cell is observed is a *per-cell* deterministic coin, so a
    /// larger box strictly contains the observations of a smaller one —
    /// exactly the nested-snapshot property of Def. 4.
    fn observe(
        &self,
        users: usize,
        products: usize,
        days: usize,
        density: f64,
    ) -> Result<SparseTensor, Box<dyn Error>> {
        let mut b = SparseTensorBuilder::new(vec![self.users, self.products, self.days]);
        for u in 0..users {
            for p in 0..products {
                for d in 0..days {
                    let coin = cell_hash(u, p, d);
                    if (coin as f64 / u64::MAX as f64) < density {
                        let noise = ((coin >> 32) as f64 / u32::MAX as f64 - 0.5) * 0.04;
                        b.push(&[u, p, d], self.rating(u, p, d) + noise)?;
                    }
                }
            }
        }
        // Trim the coordinate space to the observed box.
        Ok(b.build()?.restrict(&[users, products, days])?)
    }
}

/// SplitMix64-style deterministic per-cell hash.
fn cell_hash(u: usize, p: usize, d: usize) -> u64 {
    let mut z = (u as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((p as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((d as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let world = World::new(60, 50, 30, &mut rng)?;

    // Snapshot schedule: users/products/days all grow step by step.
    let schedule = [
        (36usize, 30usize, 18usize),
        (42, 35, 21),
        (48, 40, 24),
        (54, 45, 27),
        (60, 50, 30),
    ];
    let density = 0.25;

    let cfg = DecompConfig::default().with_rank(4).with_max_iters(25);
    let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);

    println!("-- streaming ingestion ------------------------------------------------");
    println!("step  population (UxPxD)   ratings  processed  fit     time");
    let mut full_recompute_total = 0.0f64;
    let mut streaming_total = 0.0f64;
    for (u, p, d) in schedule {
        let snapshot = world.observe(u, p, d, density)?;
        let report = session.ingest(&snapshot)?;
        streaming_total += report.elapsed.as_secs_f64();

        // What a static pipeline would pay: full re-decomposition.
        let t = Instant::now();
        let _ = dismastd_core::als::cp_als(&snapshot, &cfg)?;
        full_recompute_total += t.elapsed().as_secs_f64();

        println!(
            "{:>4}  {:>3} x {:>3} x {:>3}     {:>7}  {:>9}  {:.4}  {:?}",
            report.step,
            u,
            p,
            d,
            report.snapshot_nnz,
            report.processed_nnz,
            report.fit,
            report.elapsed,
        );
    }

    // Hold-out evaluation: unobserved (user, product, final-day) triples,
    // including users/products that only joined in the last snapshots.
    println!("\n-- rating prediction on held-out entries ------------------------------");
    let mut se = 0.0;
    let mut n = 0usize;
    let mut worst: (f64, [usize; 3]) = (0.0, [0, 0, 0]);
    let mut eval_rng = ChaCha8Rng::seed_from_u64(1234);
    while n < 500 {
        let u = eval_rng.gen_range(0..60);
        let p = eval_rng.gen_range(0..50);
        let d = eval_rng.gen_range(0..30);
        // The paper's Eq. 1 loss treats unobserved cells as zeros, so the
        // model estimates `density * rating`; divide by the observation rate
        // to de-bias the prediction (valid because the mask is uniform).
        let predicted = session.predict(&[u, p, d])? / density;
        let actual = world.rating(u, p, d);
        let err = predicted - actual;
        se += err * err;
        if err.abs() > worst.0 {
            worst = (err.abs(), [u, p, d]);
        }
        n += 1;
    }
    let rmse = (se / n as f64).sqrt();
    let spread = {
        // Scale reference: RMS of the true ratings themselves.
        let mut s = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(4321);
        for _ in 0..500 {
            let r = world.rating(
                rng.gen_range(0..60),
                rng.gen_range(0..50),
                rng.gen_range(0..30),
            );
            s += r * r;
        }
        (s / 500.0).sqrt()
    };
    println!("held-out RMSE over {n} ratings: {rmse:.4} (rating RMS scale {spread:.4})");
    println!("largest error {:.4} at {:?}", worst.0, worst.1);

    println!("\n-- streaming vs re-compute --------------------------------------------");
    println!("total time, streaming DTD updates : {streaming_total:.3}s");
    println!("total time, re-decompose each step: {full_recompute_total:.3}s");
    if streaming_total > 0.0 {
        println!(
            "speedup from reusing the previous decomposition: {:.1}x",
            full_recompute_total / streaming_total
        );
    }

    Ok(())
}

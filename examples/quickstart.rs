//! Quickstart: decompose a multi-aspect streaming tensor in a few lines.
//!
//! ```text
//! cargo run -p dismastd-examples --bin quickstart
//! ```
//!
//! Builds a small synthetic tensor, cuts it into the paper's 75% → 100%
//! snapshot schedule, and feeds it to a `StreamingSession`.  The session
//! cold-starts with static CP-ALS on the first snapshot and then applies
//! DTD to the complement only — watch the `processed` column stay a small
//! fraction of the snapshot size.

use dismastd_core::{DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::{uniform_tensor, StreamSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A synthetic third-order tensor (stand-in for your data).
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let full = uniform_tensor(&[120, 100, 60], 20_000, &mut rng)
        .expect("generator parameters are feasible");

    // 2. The multi-aspect streaming schedule from the paper's Fig. 5:
    //    snapshots at 75%, 80%, …, 100% of every mode.
    let stream = StreamSequence::cut(&full, &StreamSequence::paper_fractions())
        .expect("paper fractions are valid");

    // 3. A streaming session: rank-10 CP, forgetting factor 0.8 (paper
    //    defaults), run serially.
    let cfg = DecompConfig::default();
    let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);

    println!("step  shape              nnz     processed  iters  fit      time/iter");
    for snapshot in stream.iter() {
        let report = session.ingest(snapshot).expect("snapshots are nested");
        println!(
            "{:>4}  {:<17} {:>7} {:>10}  {:>5}  {:.4}  {:>9.2?}{}",
            report.step,
            format!("{:?}", report.snapshot_shape),
            report.snapshot_nnz,
            report.processed_nnz,
            report.iterations,
            report.fit,
            report.time_per_iter,
            if report.cold_start {
                "  (cold start)"
            } else {
                ""
            },
        );
    }

    // 4. The latest decomposition is a Kruskal tensor: inspect or predict.
    let factors = session.factors().expect("snapshots were ingested");
    println!(
        "\nfinal decomposition: order-{} rank-{} Kruskal tensor over {:?}",
        factors.order(),
        factors.rank(),
        factors.shape()
    );
    let prediction = session
        .predict(&[3, 5, 7])
        .expect("index within the final shape");
    println!("predicted value at [3, 5, 7]: {prediction:.4}");
}

//! Quickstart: decompose a multi-aspect streaming tensor in a few lines.
//!
//! ```text
//! cargo run -p dismastd-examples --bin quickstart
//! ```
//!
//! Builds a small synthetic tensor, cuts it into the paper's 75% → 100%
//! snapshot schedule, and feeds it to a `StreamingSession`.  The session
//! cold-starts with static CP-ALS on the first snapshot and then applies
//! DTD to the complement only — watch the `processed` column stay a small
//! fraction of the snapshot size.
//!
//! Set `DISMASTD_SMOKE=1` to run a miniature version of the same pipeline
//! (used by `scripts/check.sh` as an end-to-end smoke test).

use dismastd_core::{DecompConfig, ExecutionMode, StreamingSession};
use dismastd_data::{uniform_tensor, StreamSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var_os("DISMASTD_SMOKE").is_some();

    // 1. A synthetic third-order tensor (stand-in for your data).
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let (shape, nnz): (&[usize], usize) = if smoke {
        (&[24, 20, 16], 1_500)
    } else {
        (&[120, 100, 60], 20_000)
    };
    let full = uniform_tensor(shape, nnz, &mut rng)?;

    // 2. The multi-aspect streaming schedule from the paper's Fig. 5:
    //    snapshots at 75%, 80%, …, 100% of every mode.
    let stream = StreamSequence::cut(&full, &StreamSequence::paper_fractions())?;

    // 3. A streaming session: rank-10 CP, forgetting factor 0.8 (paper
    //    defaults), run serially.
    let cfg = DecompConfig::default();
    let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);
    // Opt in to per-phase metrics: every report now carries a snapshot of
    // where the step spent its time.
    session.set_collect_metrics(true);

    let mut last_metrics = None;
    println!("step  shape              nnz     processed  iters  fit      time/iter");
    for snapshot in stream.iter() {
        let report = session.ingest(snapshot)?;
        last_metrics = report.metrics.clone();
        println!(
            "{:>4}  {:<17} {:>7} {:>10}  {:>5}  {:.4}  {:>9.2?}{}",
            report.step,
            format!("{:?}", report.snapshot_shape),
            report.snapshot_nnz,
            report.processed_nnz,
            report.iterations,
            report.fit,
            report.time_per_iter,
            if report.cold_start {
                "  (cold start)"
            } else {
                ""
            },
        );
    }

    // 4. The latest decomposition is a Kruskal tensor: inspect or predict.
    let factors = session.factors().ok_or("no snapshots were ingested")?;
    println!(
        "\nfinal decomposition: order-{} rank-{} Kruskal tensor over {:?}",
        factors.order(),
        factors.rank(),
        factors.shape()
    );
    let prediction = session.predict(&[3, 5, 7])?;
    println!("predicted value at [3, 5, 7]: {prediction:.4}");

    // 5. Where did the last step spend its time?
    if let Some(metrics) = last_metrics {
        println!("\nper-phase breakdown of the final step:");
        print!("{}", metrics.to_text());
    }

    Ok(())
}

//! Offline stand-in for `rand_chacha`: a real ChaCha8 block cipher core
//! driving the vendored [`rand::RngCore`] trait.
//!
//! Deterministic per seed (the property every test in this workspace relies
//! on), but output streams are not bit-compatible with upstream
//! `rand_chacha` — no test compares against recorded upstream values.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded with a 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 ⇒ exhausted.
    word: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0u32; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let va: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn block_boundary_is_seamless() {
        // 16 words per block; crossing the boundary must keep producing
        // fresh values.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let vals: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::BTreeSet<u32> = vals.iter().copied().collect();
        assert!(distinct.len() > 60, "suspiciously repetitive output");
    }

    #[test]
    fn uniformish_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

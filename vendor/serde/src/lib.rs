//! Offline stand-in for `serde`.
//!
//! The real serde visits values through `Serializer`/`Deserializer` traits;
//! this vendored substitute collapses the data model to a single JSON-like
//! [`Value`] tree, which is all the workspace needs (its only format is
//! `serde_json`).  The derive macros (re-exported from the vendored
//! `serde_derive`) generate [`Serialize`]/[`Deserialize`] impls against this
//! model for named structs and for enums with unit or newtype variants.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped value tree — the entire data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `u64` (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::I64(i) => Some(i),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when the tree has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field in an object's pairs (derive-macro helper).
///
/// # Errors
/// Returns [`DeError`] when the field is missing.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::new("expected number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
                let mut it = items.iter();
                Ok(($(
                    $t::from_value(it.next().ok_or_else(|| DeError::new("tuple too short"))?)?,
                )+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's {secs, nanos} encoding.
        Value::Object(vec![
            ("secs".into(), Value::U64(self.as_secs())),
            ("nanos".into(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::new("expected duration object"))?;
        let secs = field(obj, "secs")?
            .as_u64()
            .ok_or_else(|| DeError::new("duration secs"))?;
        let nanos = field(obj, "nanos")?
            .as_u64()
            .ok_or_else(|| DeError::new("duration nanos"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&none.to_value()).unwrap(), none);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        assert_eq!(BTreeMap::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn duration_round_trip() {
        let d = Duration::new(3, 456);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}

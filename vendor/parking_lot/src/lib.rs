//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! locks with parking_lot's non-poisoning API shape (`lock()` returns the
//! guard directly).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual-exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

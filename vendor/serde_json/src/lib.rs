//! Offline stand-in for `serde_json`: prints and parses the vendored
//! `serde::Value` tree as JSON text.
//!
//! Supports everything the workspace round-trips through it (numbers,
//! strings with escapes, arrays, objects, booleans, null).  Non-finite
//! floats serialise as `null`, matching upstream.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON error (message only).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
/// Infallible in this stand-in; the `Result` mirrors upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any `Deserialize` type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a ".0" so the value re-parses as a float-looking
                    // number; upstream serde_json prints integral floats
                    // the same way.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else {
            // Integer literal too large for 64 bits — fall back to float.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1.0f64, -2.5, 0.0];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
    }

    #[test]
    fn nested_object_round_trips() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), vec![1u64, 2]);
        m.insert("beta".to_string(), vec![]);
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, Vec<u64>>>(&s).unwrap(), m);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v: Vec<String> = from_str("  [ \"x\" , \"\\u0041\" ]\n").unwrap();
        assert_eq!(v, vec!["x".to_string(), "A".to_string()]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(from_str::<f64>("-2.5E-2").unwrap(), -0.025);
    }
}

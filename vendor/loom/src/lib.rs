//! Offline stand-in for the `loom` concurrency model checker.
//!
//! The real loom exhaustively enumerates thread interleavings of its own
//! shadow `sync` primitives, which requires the system under test to use
//! `loom::sync` in place of `std::sync`.  The DisMASTD runtime coordinates
//! real OS threads over crossbeam channels, which loom cannot shadow, so
//! this stand-in keeps loom's *harness contract* — `loom::model(f)` runs
//! `f` under many schedules, and `--cfg loom` gates the instrumentation —
//! while exploring schedules by **seeded perturbation** instead of
//! exhaustive enumeration:
//!
//! * [`model`] runs the closure once per schedule seed (`LOOM_ITERS`
//!   seeds, default 32);
//! * every [`explore::pause`] call site in the instrumented code
//!   deterministically proceeds, yields, or micro-sleeps based on a
//!   splitmix64 hash of `(seed, point, arrival index)`.
//!
//! Coverage is probabilistic rather than exhaustive, but the schedule
//! decisions are a pure function of the seed, so a failing seed replays
//! bit-identically — the property the audit actually needs.

use std::sync::Mutex;

/// Schedule-perturbation state and hooks, consulted by instrumented code.
pub mod explore {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Duration;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);
    static ARRIVALS: AtomicU64 = AtomicU64::new(0);

    /// Arms the perturbation hooks for one model iteration.
    pub fn begin_iteration(seed: u64) {
        SCHEDULE_SEED.store(seed, Ordering::SeqCst);
        ARRIVALS.store(0, Ordering::SeqCst);
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// Disarms the hooks; subsequent [`pause`] calls are free no-ops.
    pub fn end_iteration() {
        ACTIVE.store(false, Ordering::SeqCst);
    }

    /// The current iteration's schedule seed (for failure reports).
    pub fn current_seed() -> u64 {
        SCHEDULE_SEED.load(Ordering::SeqCst)
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// A schedule-perturbation point.  Outside a [`crate::model`] run this
    /// is a no-op; inside one, the `(seed, point, arrival)` hash decides
    /// whether this thread proceeds immediately, yields, or sleeps for up
    /// to a few hundred microseconds — enough to reorder token sends,
    /// abort fan-outs, and blocking receives against each other.
    pub fn pause(point: u32) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        let arrival = ARRIVALS.fetch_add(1, Ordering::Relaxed);
        let seed = SCHEDULE_SEED.load(Ordering::Relaxed);
        let h = splitmix64(seed ^ (u64::from(point) << 32) ^ arrival);
        match h % 4 {
            0 => {}
            1 => std::thread::yield_now(),
            2 => std::thread::sleep(Duration::from_micros(20 + (h >> 8) % 80)),
            _ => std::thread::sleep(Duration::from_micros(100 + (h >> 8) % 300)),
        }
    }
}

/// Serialises model runs: the schedule state is global, and overlapping
/// runs (cargo's parallel test threads) would perturb each other's
/// schedules and break seed replay.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per schedule seed.  `LOOM_ITERS` overrides the default
/// 32 iterations; `LOOM_SEED` pins a single seed for replaying a failure.
///
/// # Panics
/// Propagates the first panic out of `f`, annotated (via stderr) with the
/// seed that produced the failing schedule.
pub fn model<F>(f: F)
where
    F: Fn(),
{
    let guard = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let read = |var: &str| std::env::var(var).ok().and_then(|v| v.parse::<u64>().ok());
    let seeds: Vec<u64> = match read("LOOM_SEED") {
        Some(seed) => vec![seed],
        None => (0..read("LOOM_ITERS").unwrap_or(32)).collect(),
    };
    for seed in seeds {
        explore::begin_iteration(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        explore::end_iteration();
        if let Err(panic) = outcome {
            eprintln!("loom: schedule seed {seed} failed; replay with LOOM_SEED={seed}");
            drop(guard);
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_runs_every_seed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let runs = AtomicU64::new(0);
        model(|| {
            runs.fetch_add(1, Ordering::SeqCst);
            explore::pause(1);
            explore::pause(2);
        });
        assert_eq!(runs.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn pause_outside_model_is_a_no_op() {
        explore::pause(7); // must not block or panic
    }

    #[test]
    fn schedule_decisions_are_seed_deterministic() {
        // Two runs under the same seed must make identical choices; the
        // hash is pure, so it suffices to check it directly.
        let h = |seed: u64, point: u32, arrival: u64| {
            // Mirror of pause()'s decision input.
            let mut x = seed ^ (u64::from(point) << 32) ^ arrival;
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (x ^ (x >> 31)) % 4
        };
        for seed in 0..8 {
            for point in 0..4 {
                assert_eq!(h(seed, point, 3), h(seed, point, 3));
            }
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range`, and `gen_bool`.  Streams are deterministic per seed but are
//! NOT bit-compatible with upstream `rand` — all tests in this repository
//! compare values produced within one process, never against recorded
//! upstream sequences.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a 64-bit generator plus byte filling.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (same construction upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next_u64().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — seed expander and the engine behind [`rngs::SmallRng`].
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range, matching upstream behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply range reduction (Lemire) — unbiased
                // enough for test workloads, and branch-free.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
        // Silence unused-type warnings for the helper alias.
        const _: fn() = || { let _ = std::mem::size_of::<$u>(); };
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (SplitMix64-based here).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Fixed(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: u64 = rng.gen_range(0..=5);
            assert!(z <= 5);
        }
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = Fixed(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = rngs::SmallRng::seed_from_u64(42);
        let mut b = rngs::SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple and
//! `Vec` strategies, `prop::collection::{vec, btree_set}`, [`Just`],
//! [`ProptestConfig`], and the `proptest!`/`prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! **not shrunk** — the harness simply runs N random cases per test with a
//! deterministic per-test seed and lets `assert!` report the first failure.

use rand::{Rng, RngCore, SampleRange};
use std::ops::Range;

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising plenty of structure.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so every test gets a stable, distinct
    /// stream across runs.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`, `btree_set`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Collection length spec: an exact `usize` or a `Range<usize>`.
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        /// Strategy for `Vec`s with random length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// Vector of elements from `elem`, length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into().0,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s with up to `size.end - 1` elements.
        pub struct BTreeSetStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// Set drawn by inserting random elements (duplicates collapse,
        /// so the final size may come in under the draw).
        pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                elem,
                size: size.into().0,
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = rng.gen_range(self.size.clone());
                let mut set = BTreeSet::new();
                for _ in 0..target {
                    set.insert(self.elem.generate(rng));
                }
                set
            }
        }
    }
}

/// Runs a block of property tests.  Differences from upstream: no
/// shrinking, and the per-test RNG is seeded from the test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..10, 1..5)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in small_vec()) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn flat_map_and_tuple_pattern(
            (n, items) in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..5, n..(n + 1)))
            })
        ) {
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn btree_set_dedups(s in prop::collection::btree_set(0u64..4, 0..24)) {
            prop_assert!(s.len() <= 4);
        }
    }

    #[test]
    fn vec_of_ranges_is_a_strategy() {
        let strat: Vec<std::ops::Range<usize>> = vec![0..2, 0..3, 0..4];
        let mut rng = TestRng::for_test("vec_of_ranges");
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), 3);
            assert!(v[0] < 2 && v[1] < 3 && v[2] < 4);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u64..5).prop_map(|x| x * 10);
        let mut rng = TestRng::for_test("prop_map");
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 10, 0);
            assert!(v < 50);
        }
    }
}

//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}` for MPSC message passing, which `std::sync::mpsc` covers.
//! `std`'s `Receiver` is `!Sync` (single consumer), but the cluster
//! runtime moves each receiver into exactly one worker thread, so the
//! narrower type suffices.

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// Receiving half (single consumer).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let h1 = std::thread::spawn(move || tx.send(1).unwrap());
        let h2 = std::thread::spawn(move || tx2.send(2).unwrap());
        h1.join().unwrap();
        h2.join().unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}

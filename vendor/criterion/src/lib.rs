//! Offline stand-in for `criterion`.
//!
//! Keeps the subset of the criterion 0.5 API this workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros) but with a much lighter
//! measurement protocol: one calibration pass sizes the iteration count,
//! then a fixed number of timed samples produce a median ns/iter.
//!
//! Every run writes a JSON summary to `bench_results/<bench-name>.json`
//! under the repository root (nearest ancestor with a `.git`), so results
//! land in one place regardless of the working directory cargo picks.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group supplies the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark, as it lands in the JSON summary.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/bench/param`).
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Elements (or bytes) per second when a throughput was declared.
    pub throughput_per_sec: Option<f64>,
}

/// Benchmark driver; collects [`BenchRecord`]s as benches run.
pub struct Criterion {
    records: Vec<BenchRecord>,
    sample_size: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            records: Vec::new(),
            // 10 samples of ~20 ms keeps a full bench binary in seconds
            // while flattening scheduler noise enough for ratio claims.
            sample_size: 10,
            target_sample: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), None, sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            name: name.to_string(),
            throughput: None,
            criterion: self,
        }
    }

    /// Consumes the driver, returning everything measured.
    pub fn into_records(self) -> Vec<BenchRecord> {
        self.records
    }

    fn run_one<F>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: one iteration to size the sample loop.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns = b.elapsed.as_nanos().max(1);
        let iters = (self.target_sample.as_nanos() / per_iter_ns).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];

        let throughput_per_sec = throughput.map(|t| {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            per_iter / (median * 1e-9)
        });

        println!("{id:<48} time: [{}]", format_ns(median));
        self.records.push(BenchRecord {
            id,
            ns_per_iter: median,
            iters_per_sample: iters,
            samples: sample_size,
            throughput_per_sec,
        });
    }
}

/// Group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion
            .run_one(full, self.throughput, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (bookkeeping only in this stand-in).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Escapes a string for embedding in JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locates `<repo root>/bench_results`, falling back to `./bench_results`.
fn summary_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join(".git").exists() {
            return dir.join("bench_results");
        }
        if !dir.pop() {
            return PathBuf::from("bench_results");
        }
    }
}

/// Derives the summary file stem from the bench binary name, dropping
/// cargo's trailing `-<16 hex>` disambiguator.
fn bench_stem() -> String {
    let argv0 = std::env::args().next().unwrap_or_else(|| "bench".into());
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    if let Some((head, tail)) = stem.rsplit_once('-') {
        if tail.len() == 16 && tail.chars().all(|c| c.is_ascii_hexdigit()) {
            return head.to_string();
        }
    }
    stem
}

/// Writes all records as `bench_results/<bench>.json`.  Called by
/// `criterion_main!` after every group has run.
pub fn write_summary(records: &[BenchRecord]) {
    let dir = summary_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    // Host context up front: thread-scaling rows (e.g. `mttkrp/threads`)
    // are only interpretable next to the core budget they ran under — a
    // 1-core container legitimately shows no scaling.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut body = format!("{{\n  \"host_cores\": {cores},\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_per_iter\": {:.3}, \
             \"iters_per_sample\": {}, \"samples\": {}",
            json_escape(&r.id),
            r.ns_per_iter,
            r.iters_per_sample,
            r.samples,
        ));
        if let Some(tp) = r.throughput_per_sec {
            body.push_str(&format!(", \"throughput_per_sec\": {tp:.3}"));
        }
        body.push('}');
    }
    body.push_str("\n  ]\n}\n");
    let path = dir.join(format!("{}.json", bench_stem()));
    if std::fs::write(&path, body).is_ok() {
        println!("summary written to {}", path.display());
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() -> Vec<$crate::BenchRecord> {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.into_records()
        }
    };
}

/// Declares `main`, running every group and writing the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut all: Vec<$crate::BenchRecord> = Vec::new();
            $( all.extend($group()); )+
            $crate::write_summary(&all);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(40).id, "40");
    }

    #[test]
    fn measurement_produces_sane_numbers() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.finish();
        let records = c.into_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "t/spin");
        assert!(records[0].ns_per_iter > 0.0);
        assert!(records[0].throughput_per_sec.unwrap() > 0.0);
    }

    #[test]
    fn stem_strips_cargo_hash() {
        // Indirect check of the rsplit logic via a local copy.
        let stem = "mttkrp-0123456789abcdef";
        let (head, tail) = stem.rsplit_once('-').unwrap();
        assert_eq!(head, "mttkrp");
        assert!(tail.len() == 16 && tail.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

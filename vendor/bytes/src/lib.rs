//! Offline stand-in for `bytes`: a cheaply clonable, immutable byte
//! buffer backed by `Arc<[u8]>` (static slices avoid the allocation).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wraps a static slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Copies a slice into a shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_ref().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_ref().is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(a) => a,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            inner: Inner::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_shared_compare_equal() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`) derive macros targeting the vendored
//! `serde` crate's `Value` data model.  Supported input shapes — exactly
//! what this workspace uses:
//!
//! * non-generic structs with named fields
//! * non-generic enums whose variants are unit or newtype
//!
//! Generated code is built as a source string and re-parsed, which keeps
//! the macro free of dependencies.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive input.
enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// true ⇒ newtype variant `Name(T)`, false ⇒ unit variant `Name`.
    newtype: bool,
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive: generic types are not supported (type `{name}`)");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("vendored serde_derive: `{name}` must have a braced body"),
    };

    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_struct_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_enum_variants(body),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}`"),
    }
}

/// Extracts field names from a named-struct body.  Commas inside angle
/// brackets (e.g. `BTreeMap<String, f64>`) are not separators, so the
/// scan tracks `<`/`>` depth.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("vendored serde_derive: expected field name, got {other}"),
        };
        fields.push(fname);
        // Skip to the comma terminating this field, at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("vendored serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let newtype = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                true
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("vendored serde_derive: struct variants unsupported (variant `{vname}`)")
            }
            _ => false,
        };
        variants.push(Variant {
            name: vname,
            newtype,
        });
        // Consume trailing comma if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

/// Derives `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    if v.newtype {
                        format!(
                            "{name}::{vn}(inner) => serde::Value::Object(vec![(\"{vn}\"\
                             .to_string(), serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),")
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(obj, \"{f}\")?)?,")
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             serde::DeError::new(\"expected object for `{name}`\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),",
                        vn = v.name
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(serde::DeError::new(format!(\n\
                                     \"unknown variant `{{other}}` for `{name}`\"))),\n\
                             }},\n\
                             serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (key, inner) = &fields[0];\n\
                                 let _ = inner;\n\
                                 match key.as_str() {{\n\
                                     {newtype_arms}\n\
                                     other => Err(serde::DeError::new(format!(\n\
                                         \"unknown variant `{{other}}` for `{name}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(serde::DeError::new(\n\
                                 \"expected string or single-key object for `{name}`\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}

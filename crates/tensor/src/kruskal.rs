//! Kruskal tensors — the CP-decomposed form `⟦A_1, …, A_N⟧` (Table II).
//!
//! All norms and inner products go through `R x R` Gram intermediates
//! (`grand_sum(⊛_k A_kᵀ B_k)`), never through a dense reconstruction, which
//! is exactly the "maintain and reuse the intermediate results" discipline of
//! Sec. IV-B4.

use crate::coo::SparseTensor;
use crate::dense::DenseTensor;
use crate::error::{Result, TensorError};
use crate::matrix::Matrix;
use crate::ops::grand_sum_hadamard;
use serde::{Deserialize, Serialize};

/// A CP / Kruskal tensor: the sum of `R` rank-one outer products encoded as
/// `N` factor matrices with a common column count `R`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KruskalTensor {
    factors: Vec<Matrix>,
}

impl KruskalTensor {
    /// Wraps factor matrices into a Kruskal tensor.
    ///
    /// # Errors
    /// Returns an error if fewer than one factor is supplied or the column
    /// counts (ranks) differ.
    pub fn new(factors: Vec<Matrix>) -> Result<Self> {
        let first_rank = factors.first().ok_or(TensorError::EmptyShape)?.cols();
        for f in &factors {
            if f.cols() != first_rank {
                return Err(TensorError::ShapeMismatch {
                    op: "KruskalTensor::new",
                    left: vec![first_rank],
                    right: vec![f.cols()],
                });
            }
        }
        Ok(KruskalTensor { factors })
    }

    /// Tensor order (number of factor matrices).
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Decomposition rank `R`.
    pub fn rank(&self) -> usize {
        self.factors[0].cols()
    }

    /// Shape of the represented tensor (`rows` of each factor).
    pub fn shape(&self) -> Vec<usize> {
        self.factors.iter().map(Matrix::rows).collect()
    }

    /// Borrow the factor matrices.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// Borrow one factor.
    pub fn factor(&self, n: usize) -> &Matrix {
        &self.factors[n]
    }

    /// Consumes the Kruskal tensor, returning its factors.
    pub fn into_factors(self) -> Vec<Matrix> {
        self.factors
    }

    /// Squared Frobenius norm via the Gram identity:
    /// `‖⟦A⟧‖² = 1ᵀ(⊛_k A_kᵀA_k)1`.
    pub fn norm_sq(&self) -> f64 {
        let grams: Vec<Matrix> = self.factors.iter().map(Matrix::gram).collect();
        let refs: Vec<&Matrix> = grams.iter().collect();
        // lint:allow(panic_path): invariant — every gram is R×R by construction
        grand_sum_hadamard(&refs).expect("grams share the RxR shape")
    }

    /// Inner product with another Kruskal tensor of the same shape:
    /// `⟨⟦A⟧,⟦B⟧⟩ = 1ᵀ(⊛_k A_kᵀB_k)1`.
    ///
    /// # Errors
    /// Returns an error when orders or shapes differ.
    pub fn inner(&self, other: &KruskalTensor) -> Result<f64> {
        if self.order() != other.order() {
            return Err(TensorError::ShapeMismatch {
                op: "KruskalTensor::inner",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut cross = Vec::with_capacity(self.order());
        for (a, b) in self.factors.iter().zip(&other.factors) {
            cross.push(a.cross_gram(b)?);
        }
        let refs: Vec<&Matrix> = cross.iter().collect();
        grand_sum_hadamard(&refs)
    }

    /// Inner product with a sparse tensor:
    /// `⟨X, ⟦A⟧⟩ = Σ_nnz x · Σ_f Π_k A_k[i_k, f]` — `O(nnz·N·R)`.
    ///
    /// # Errors
    /// Returns an error when the tensor shape exceeds the factor rows.
    pub fn inner_sparse(&self, x: &SparseTensor) -> Result<f64> {
        if x.order() != self.order() {
            return Err(TensorError::ShapeMismatch {
                op: "KruskalTensor::inner_sparse",
                left: self.shape(),
                right: x.shape().to_vec(),
            });
        }
        for (k, f) in self.factors.iter().enumerate() {
            if f.rows() < x.shape()[k] {
                return Err(TensorError::ShapeMismatch {
                    op: "KruskalTensor::inner_sparse rows",
                    left: vec![x.shape()[k]],
                    right: vec![f.rows()],
                });
            }
        }
        let r = self.rank();
        let mut prod = vec![0.0f64; r];
        let mut total = 0.0;
        for (idx, v) in x.iter() {
            prod.iter_mut().for_each(|p| *p = v);
            for (k, &i) in idx.iter().enumerate() {
                let row = self.factors[k].row(i);
                for (p, &a) in prod.iter_mut().zip(row) {
                    *p *= a;
                }
            }
            total += prod.iter().sum::<f64>();
        }
        Ok(total)
    }

    /// Full-tensor squared residual `‖X − ⟦A⟧‖²` against a sparse tensor
    /// whose structural zeros count as zeros (the paper's Eq. 1 loss):
    /// `‖X‖² + ‖⟦A⟧‖² − 2⟨X,⟦A⟧⟩`.
    ///
    /// # Errors
    /// Propagates shape errors from [`Self::inner_sparse`].
    pub fn residual_norm_sq(&self, x: &SparseTensor) -> Result<f64> {
        let val = x.norm_sq() + self.norm_sq() - 2.0 * self.inner_sparse(x)?;
        // Guard against tiny negative values from floating-point cancellation.
        Ok(val.max(0.0))
    }

    /// CP *fit* `1 − ‖X − ⟦A⟧‖ / ‖X‖` (1 is perfect).
    ///
    /// # Errors
    /// Propagates shape errors; returns `InvalidArgument` for a zero tensor.
    pub fn fit(&self, x: &SparseTensor) -> Result<f64> {
        let xnorm = x.norm_sq().sqrt();
        if xnorm == 0.0 {
            return Err(TensorError::InvalidArgument(
                "fit undefined for a zero tensor".into(),
            ));
        }
        Ok(1.0 - self.residual_norm_sq(x)?.sqrt() / xnorm)
    }

    /// Normalises every factor column to unit Euclidean norm, returning the
    /// absorbed component weights `λ_f = Π_k ‖A_k[:, f]‖`.
    ///
    /// The standard CP presentation `X ≈ Σ_f λ_f a_f ∘ b_f ∘ …`: after this
    /// call the represented tensor is *unchanged up to the returned
    /// weights*, and `λ` ranks the components by magnitude (useful for
    /// interpreting latent components, e.g. trend strength).  Columns with
    /// zero norm keep their (zero) entries and contribute `λ_f = 0`.
    pub fn normalize_columns(&mut self) -> Vec<f64> {
        let r = self.rank();
        let mut weights = vec![1.0f64; r];
        for factor in &mut self.factors {
            for f in 0..r {
                let norm = (0..factor.rows())
                    .map(|i| factor.get(i, f).powi(2))
                    .sum::<f64>()
                    .sqrt();
                weights[f] *= norm;
                if norm > 0.0 {
                    for i in 0..factor.rows() {
                        let v = factor.get(i, f) / norm;
                        factor.set(i, f, v);
                    }
                }
            }
        }
        weights
    }

    /// Reconstructs the represented tensor densely.  Oracle/testing only —
    /// cost is `Π_k I_k · R`.
    pub fn to_dense(&self) -> Result<DenseTensor> {
        let shape = self.shape();
        let mut out = DenseTensor::zeros(shape.clone())?;
        let r = self.rank();
        let mut idx = vec![0usize; self.order()];
        loop {
            let mut v = 0.0;
            for f in 0..r {
                let mut p = 1.0;
                for (k, &i) in idx.iter().enumerate() {
                    p *= self.factors[k].get(i, f);
                }
                v += p;
            }
            out.set(&idx, v);
            // Odometer increment over the shape.
            let mut k = self.order();
            loop {
                if k == 0 {
                    return Ok(out);
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < shape[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::SparseTensorBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_kruskal(seed: u64) -> KruskalTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KruskalTensor::new(vec![
            Matrix::random(3, 2, &mut rng),
            Matrix::random(4, 2, &mut rng),
            Matrix::random(2, 2, &mut rng),
        ])
        .unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(KruskalTensor::new(vec![]).is_err());
        let bad = vec![Matrix::zeros(2, 2), Matrix::zeros(2, 3)];
        assert!(KruskalTensor::new(bad).is_err());
        let k = small_kruskal(1);
        assert_eq!(k.order(), 3);
        assert_eq!(k.rank(), 2);
        assert_eq!(k.shape(), vec![3, 4, 2]);
    }

    #[test]
    fn norm_matches_dense_reconstruction() {
        let k = small_kruskal(2);
        let dense = k.to_dense().unwrap();
        assert!((k.norm_sq() - dense.norm_sq()).abs() < 1e-10);
    }

    #[test]
    fn inner_matches_dense() {
        let a = small_kruskal(3);
        let b = small_kruskal(4);
        let da = a.to_dense().unwrap();
        let db = b.to_dense().unwrap();
        let direct: f64 = da
            .as_slice()
            .iter()
            .zip(db.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert!((a.inner(&b).unwrap() - direct).abs() < 1e-10);
        // Inner with self equals the squared norm.
        assert!((a.inner(&a).unwrap() - a.norm_sq()).abs() < 1e-10);
    }

    #[test]
    fn inner_sparse_matches_dense() {
        let k = small_kruskal(5);
        let mut b = SparseTensorBuilder::new(vec![3, 4, 2]);
        b.push(&[0, 0, 0], 1.0).unwrap();
        b.push(&[2, 3, 1], -2.0).unwrap();
        b.push(&[1, 2, 0], 0.5).unwrap();
        let x = b.build().unwrap();
        let dk = k.to_dense().unwrap();
        let mut direct = 0.0;
        for (idx, v) in x.iter() {
            direct += v * dk.get(idx);
        }
        assert!((k.inner_sparse(&x).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn residual_matches_dense_difference() {
        let k = small_kruskal(6);
        let mut b = SparseTensorBuilder::new(vec![3, 4, 2]);
        b.push(&[1, 1, 1], 2.0).unwrap();
        b.push(&[0, 3, 0], -1.0).unwrap();
        let x = b.build().unwrap();
        let dx = crate::dense::DenseTensor::from_sparse(&x).unwrap();
        let dk = k.to_dense().unwrap();
        let direct = dx.sub(&dk).unwrap().norm_sq();
        assert!((k.residual_norm_sq(&x).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn fit_is_one_for_exact_representation() {
        // Build X as the densification of a rank-1 Kruskal, then check fit≈1.
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5]]);
        let k = KruskalTensor::new(vec![a, b]).unwrap();
        let dense = k.to_dense().unwrap();
        let mut builder = SparseTensorBuilder::new(vec![2, 2]);
        for (idx, v) in dense.iter_all() {
            if v != 0.0 {
                builder.push(&idx, v).unwrap();
            }
        }
        let x = builder.build().unwrap();
        assert!((k.fit(&x).unwrap() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fit_rejects_zero_tensor() {
        let k = small_kruskal(7);
        let x = SparseTensor::empty(vec![3, 4, 2]).unwrap();
        assert!(k.fit(&x).is_err());
    }

    #[test]
    fn inner_sparse_validates_shapes() {
        let k = small_kruskal(8);
        let x = SparseTensor::empty(vec![3, 4]).unwrap();
        assert!(k.inner_sparse(&x).is_err());
        let too_big = SparseTensor::empty(vec![10, 4, 2]).unwrap();
        assert!(k.inner_sparse(&too_big).is_err());
    }

    #[test]
    fn oversized_factors_accept_smaller_tensor() {
        // Factors represent the grown snapshot; a tensor over a sub-box must
        // still be accepted (rows ≥ shape).
        let k = small_kruskal(9); // shape [3,4,2]
        let mut b = SparseTensorBuilder::new(vec![2, 2, 2]);
        b.push(&[1, 1, 1], 1.0).unwrap();
        let x = b.build().unwrap();
        assert!(k.inner_sparse(&x).is_ok());
    }

    #[test]
    fn normalize_columns_preserves_tensor_up_to_weights() {
        let mut k = small_kruskal(11);
        let before = k.to_dense().unwrap();
        let weights = k.normalize_columns();
        assert_eq!(weights.len(), k.rank());
        // All columns unit norm now.
        for factor in k.factors() {
            for f in 0..k.rank() {
                let norm: f64 = (0..factor.rows())
                    .map(|i| factor.get(i, f).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert!((norm - 1.0).abs() < 1e-12, "column norm {norm}");
            }
        }
        // Reconstruct with weights re-applied: scale one factor's columns.
        let mut factors = k.into_factors();
        for f in 0..weights.len() {
            for i in 0..factors[0].rows() {
                let v = factors[0].get(i, f) * weights[f];
                factors[0].set(i, f, v);
            }
        }
        let rebuilt = KruskalTensor::new(factors).unwrap().to_dense().unwrap();
        let diff: f64 = before
            .as_slice()
            .iter()
            .zip(rebuilt.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10, "max diff {diff}");
    }

    #[test]
    fn normalize_columns_handles_zero_column() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]);
        let b = Matrix::from_rows(&[&[3.0, 0.0]]);
        let mut k = KruskalTensor::new(vec![a, b]).unwrap();
        let weights = k.normalize_columns();
        assert!(weights[0] > 0.0);
        assert_eq!(weights[1], 0.0);
        // The zero column stays zero (no NaNs).
        assert!(k
            .factors()
            .iter()
            .all(|f| f.as_slice().iter().all(|v| v.is_finite())));
    }

    #[test]
    fn into_factors_round_trip() {
        let k = small_kruskal(10);
        let shape = k.shape();
        let factors = k.into_factors();
        let k2 = KruskalTensor::new(factors).unwrap();
        assert_eq!(k2.shape(), shape);
    }
}

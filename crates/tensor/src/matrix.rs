//! Dense row-major matrix.
//!
//! Factor matrices in CP decomposition are tall-and-skinny (`I_n x R` with
//! small `R`), and every hot kernel in the paper (MTTKRP, Gram products,
//! Hadamard products, row-wise updates) walks rows contiguously.  A flat
//! row-major `Vec<f64>` maximises cache locality for that access pattern and
//! keeps row slices available as `&[f64]` without bounds checks in inner
//! loops.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
///
/// The workhorse type for CP factor matrices and all `R x R` intermediates
/// (Gram matrices, Hadamard products, normal-equation systems).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::from_vec",
                left: vec![rows, cols],
                right: vec![data.len()],
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices (test-friendly constructor).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Fills a matrix with uniform random entries in `[0, 1)` drawn from `rng`.
    ///
    /// Used to initialise the new-row factor blocks `A_n^(1)` (Alg. 1 line 2).
    pub fn random(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen::<f64>()).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams over `other` rows, friendly to the
        // row-major layout (no striding in the innermost loop).
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (`cols x cols`, symmetric).
    ///
    /// This is the `A_kᵀ A_k` product that DisMASTD caches on every worker
    /// (Sec. IV-B2); it is accumulated row by row which is exactly the
    /// row-wise distributed form of Sec. IV-B3.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        accumulate_gram(&mut out, self);
        out
    }

    /// Cross-Gram `selfᵀ * other` for matrices with equal row counts.
    ///
    /// Used for the `Ã_kᵀ A_k^(0)` products in the Eq. 5 numerators.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the row counts differ.
    pub fn cross_gram(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "cross_gram",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            let a = self.row(i);
            let b = other.row(i);
            for (p, &av) in a.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[p * other.cols..(p + 1) * other.cols];
                for (o, &bv) in out_row.iter_mut().zip(b) {
                    *o += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise (Hadamard) product `self * other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "hadamard",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place Hadamard product `self *= other`.
    pub fn hadamard_assign(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "hadamard_assign",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
        Ok(())
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise sum `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self * s` for a scalar `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scalar multiplication.
    pub fn scale_assign(&mut self, s: f64) {
        self.data.iter_mut().for_each(|a| *a *= s);
    }

    /// Squared Frobenius norm `‖self‖_F²`.
    pub fn frob_norm_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// Frobenius norm `‖self‖_F`.
    pub fn frob_norm(&self) -> f64 {
        self.frob_norm_sq().sqrt()
    }

    /// Sum of all entries (the "grand sum" used by the Kruskal inner-product
    /// identity `⟨⟦A⟧,⟦B⟧⟩ = 1ᵀ(⊛ A_kᵀB_k)1`).
    pub fn grand_sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// DTD maintains each factor as the stack `[A^(0); A^(1)]` of old-index
    /// and new-index row blocks; this produces the combined matrix.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols && !self.is_empty() && !other.is_empty() {
            return Err(TensorError::ShapeMismatch {
                op: "vstack",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        let cols = if self.rows > 0 { self.cols } else { other.cols };
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols,
            data,
        })
    }

    /// Copies rows `[start, end)` into a new matrix.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] if the range is invalid.
    pub fn row_block(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, end],
                shape: vec![self.rows, self.cols],
            });
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Maximum absolute difference between two equally shaped matrices.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                left: vec![self.rows, self.cols],
                right: vec![other.rows, other.cols],
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

/// Accumulates `m += a' * a` into an existing `cols x cols` matrix.
///
/// Workers call this on their local row blocks and then all-reduce the
/// partial Grams (Sec. IV-B3: `AᵀB = Σ_p A_{P_p}ᵀ B_{P_p}`).
pub fn accumulate_gram(m: &mut Matrix, a: &Matrix) {
    debug_assert_eq!(m.rows, a.cols);
    debug_assert_eq!(m.cols, a.cols);
    let c = a.cols;
    for i in 0..a.rows {
        let row = a.row(i);
        for (p, &av) in row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut m.data[p * c..(p + 1) * c];
            for (o, &bv) in out_row.iter_mut().zip(row) {
                *o += av * bv;
            }
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.grand_sum(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = sample();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.row_mut(1)[0] = -1.0;
        assert_eq!(m.get(1, 0), -1.0);
        m.set(2, 1, 9.0);
        assert_eq!(m.row(2), &[5.0, 9.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 5.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m).unwrap();
        assert_eq!(g, expected);
        // Gram must be symmetric.
        assert_eq!(g.get(0, 1), g.get(1, 0));
    }

    #[test]
    fn cross_gram_matches_explicit() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let g = a.cross_gram(&b).unwrap();
        assert_eq!(g, a.transpose().matmul(&b).unwrap());
    }

    #[test]
    fn cross_gram_requires_equal_rows() {
        let a = sample();
        let b = Matrix::zeros(2, 2);
        assert!(a.cross_gram(&b).is_err());
    }

    #[test]
    fn hadamard_and_assign() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, -1.0]]);
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h, Matrix::from_rows(&[&[2.0, 1.0], &[3.0, -4.0]]));
        let mut c = a.clone();
        c.hadamard_assign(&b).unwrap();
        assert_eq!(c, h);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
        let mut c = a.clone();
        c.add_assign(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[4.0, 7.0]]));
        c.scale_assign(0.5);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 3.5]]));
    }

    #[test]
    fn norms_and_grand_sum() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frob_norm_sq(), 25.0);
        assert_eq!(m.frob_norm(), 5.0);
        assert_eq!(m.grand_sum(), 7.0);
    }

    #[test]
    fn vstack_blocks() {
        let top = Matrix::from_rows(&[&[1.0, 2.0]]);
        let bottom = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = top.vstack(&bottom).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn vstack_with_empty() {
        let top = Matrix::zeros(0, 0);
        let bottom = Matrix::from_rows(&[&[1.0, 2.0]]);
        let s = top.vstack(&bottom).unwrap();
        assert_eq!(s.shape(), (1, 2));
    }

    #[test]
    fn row_block_extracts_range() {
        let m = sample();
        let b = m.row_block(1, 3).unwrap();
        assert_eq!(b, Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        assert!(m.row_block(2, 1).is_err());
        assert!(m.row_block(0, 4).is_err());
    }

    #[test]
    fn accumulate_gram_partial_sums_equal_full_gram() {
        // Distributed identity of Sec. IV-B3: sum of block Grams equals the
        // Gram of the stacked matrix.
        let m = sample();
        let top = m.row_block(0, 1).unwrap();
        let bottom = m.row_block(1, 3).unwrap();
        let mut acc = Matrix::zeros(2, 2);
        accumulate_gram(&mut acc, &top);
        accumulate_gram(&mut acc, &bottom);
        assert_eq!(acc, m.gram());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        let a = Matrix::random(4, 3, &mut r1);
        let b = Matrix::random(4, 3, &mut r2);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn max_abs_diff_detects_largest_gap() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, -2.0]]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 4.0);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], &[1.0, 2.0]);
    }
}

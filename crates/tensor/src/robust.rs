//! Conditioned solves with tiered escalation.
//!
//! Streaming DTD solves the same `R x R` normal equations thousands of
//! times, and any single ill-conditioned denominator (collinear factor
//! columns, an empty slice, an aggressive forgetting factor) poisons every
//! subsequent step.  [`RobustSolver`] wraps the dense solvers in
//! [`crate::linalg`] with a three-tier escalation ladder:
//!
//! 1. **Cholesky** — the fast path; accepted when the diagonal-ratio
//!    condition estimate stays under [`SolvePolicy::condition_limit`].
//! 2. **Pivoted LU** — for indefinite-but-regular systems.
//! 3. **Adaptive Tikhonov ridge** — `G + λI` with λ grown geometrically
//!    from `ridge_initial` until the regularised system factorises with an
//!    acceptable condition estimate.  Because the DTD denominators are
//!    Hadamard products of Gram matrices (positive semidefinite), a large
//!    enough λ always succeeds.
//!
//! The *decision* (tier + λ) is separated from the *application* so that a
//! distributed driver can decide once on rank 0, broadcast the
//! [`SolveDecision`], and have every rank apply the identical
//! regularisation — keeping factors bit-identical across ranks and equal to
//! the serial path.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::linalg::{
    cholesky, cholesky_condition_estimate, lu_condition_estimate, lu_decompose, require_square,
    Factorized,
};
use crate::matrix::Matrix;

/// Which solver tier a decision selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveTier {
    /// Plain Cholesky on the original matrix.
    Cholesky,
    /// Partially pivoted LU on the original matrix.
    Lu,
    /// Cholesky on the ridge-shifted matrix `G + λI`.
    Ridge,
}

impl SolveTier {
    fn as_f64(self) -> f64 {
        match self {
            SolveTier::Cholesky => 0.0,
            SolveTier::Lu => 1.0,
            SolveTier::Ridge => 2.0,
        }
    }

    fn from_f64(v: f64) -> Result<SolveTier> {
        match v as i64 {
            0 => Ok(SolveTier::Cholesky),
            1 => Ok(SolveTier::Lu),
            2 => Ok(SolveTier::Ridge),
            _ => Err(TensorError::InvalidArgument(format!(
                "unknown solve tier code {v}"
            ))),
        }
    }
}

/// The outcome of a conditioning assessment: which tier to use and, for the
/// ridge tier, the exact λ every participant must apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveDecision {
    /// Selected solver tier.
    pub tier: SolveTier,
    /// Ridge shift applied to the diagonal (0 unless `tier == Ridge`).
    pub lambda: f64,
    /// Diagonal-ratio condition estimate of the accepted factorisation.
    pub cond_est: f64,
}

impl SolveDecision {
    /// Number of f64 slots used by [`SolveDecision::encode`].
    pub const ENCODED_LEN: usize = 3;

    /// Packs the decision into f64 slots for a numeric broadcast payload.
    pub fn encode(&self, out: &mut [f64]) {
        out[0] = self.tier.as_f64();
        out[1] = self.lambda;
        out[2] = self.cond_est;
    }

    /// Inverse of [`SolveDecision::encode`].
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] on an unknown tier code.
    pub fn decode(slots: &[f64]) -> Result<SolveDecision> {
        Ok(SolveDecision {
            tier: SolveTier::from_f64(slots[0])?,
            lambda: slots[1],
            cond_est: slots[2],
        })
    }
}

/// Tunables for the escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolvePolicy {
    /// Condition-estimate ceiling above which a tier is rejected.
    pub condition_limit: f64,
    /// First ridge shift, as a multiple of `max(|tr(G)|/n, 1)`.
    pub ridge_initial: f64,
    /// Geometric growth factor between ridge attempts.
    pub ridge_growth: f64,
    /// Maximum ridge attempts before giving up.
    pub max_ridge_steps: u32,
}

impl Default for SolvePolicy {
    fn default() -> Self {
        SolvePolicy {
            condition_limit: 1e12,
            ridge_initial: 1e-10,
            ridge_growth: 10.0,
            max_ridge_steps: 12,
        }
    }
}

/// Per-run tally of which tiers fired, kept by the drivers and surfaced in
/// `StepReport`/`DtdOutput`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NumericsReport {
    /// Solves served by plain Cholesky.
    pub cholesky_solves: u64,
    /// Solves that escalated to pivoted LU.
    pub lu_solves: u64,
    /// Solves that escalated to the ridge tier.
    pub ridge_solves: u64,
    /// Solves whose result came back non-finite and were re-run with a
    /// forced ridge escalation.
    pub post_escalations: u64,
    /// Largest λ applied by any ridge solve.
    pub max_lambda: f64,
    /// Largest condition estimate accepted by any solve.
    pub max_cond_est: f64,
}

impl NumericsReport {
    /// Records a decision into the tally.
    pub fn record(&mut self, decision: &SolveDecision) {
        match decision.tier {
            SolveTier::Cholesky => self.cholesky_solves += 1,
            SolveTier::Lu => self.lu_solves += 1,
            SolveTier::Ridge => self.ridge_solves += 1,
        }
        if decision.lambda > self.max_lambda {
            self.max_lambda = decision.lambda;
        }
        if decision.cond_est.is_finite() && decision.cond_est > self.max_cond_est {
            self.max_cond_est = decision.cond_est;
        }
    }

    /// Merges another report (e.g. a retried attempt) into this one.
    pub fn absorb(&mut self, other: &NumericsReport) {
        self.cholesky_solves += other.cholesky_solves;
        self.lu_solves += other.lu_solves;
        self.ridge_solves += other.ridge_solves;
        self.post_escalations += other.post_escalations;
        self.max_lambda = self.max_lambda.max(other.max_lambda);
        self.max_cond_est = self.max_cond_est.max(other.max_cond_est);
    }

    /// True when any solve left the plain Cholesky fast path.
    pub fn escalated(&self) -> bool {
        self.lu_solves > 0 || self.ridge_solves > 0 || self.post_escalations > 0
    }
}

/// Conditioned solver implementing the Cholesky → LU → ridge ladder.
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustSolver {
    policy: SolvePolicy,
}

impl RobustSolver {
    /// Creates a solver with the given policy.
    pub fn new(policy: SolvePolicy) -> Self {
        RobustSolver { policy }
    }

    /// The policy this solver escalates under.
    pub fn policy(&self) -> &SolvePolicy {
        &self.policy
    }

    /// Assesses conditioning of `m` and picks the cheapest acceptable tier.
    ///
    /// Pure function of `m` and the policy — every rank deciding over a
    /// replicated matrix reaches the same answer, and a broadcast decision
    /// reproduces the decider's factorisation exactly.
    ///
    /// # Errors
    /// Returns [`TensorError::NonFiniteValue`] (naming the entry) when `m`
    /// contains NaN/Inf, and [`TensorError::Singular`] when even the
    /// largest permitted ridge fails to factorise.
    pub fn decide(&self, m: &Matrix) -> Result<SolveDecision> {
        let n = require_square(m)?;
        for i in 0..n {
            for j in 0..n {
                let v = m.get(i, j);
                if !v.is_finite() {
                    return Err(TensorError::NonFiniteValue {
                        index: vec![i, j],
                        value: v,
                    });
                }
            }
        }
        if let Ok(l) = cholesky(m) {
            let cond = cholesky_condition_estimate(&l);
            if cond <= self.policy.condition_limit {
                return Ok(SolveDecision {
                    tier: SolveTier::Cholesky,
                    lambda: 0.0,
                    cond_est: cond,
                });
            }
        }
        if let Ok((lu, _)) = lu_decompose(m) {
            let cond = lu_condition_estimate(&lu);
            if cond <= self.policy.condition_limit {
                return Ok(SolveDecision {
                    tier: SolveTier::Lu,
                    lambda: 0.0,
                    cond_est: cond,
                });
            }
        }
        // Ridge tier: grow λ geometrically until G + λI factorises with an
        // acceptable condition estimate.  Scale the floor by the trace so
        // the shift is meaningful relative to the matrix's magnitude; the
        // max(…, 1) keeps the all-zero matrix (empty-slice snapshot) viable.
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let scale = (trace.abs() / n.max(1) as f64).max(1.0);
        let mut lambda = self.policy.ridge_initial * scale;
        let mut last_cond = f64::INFINITY;
        for _ in 0..self.policy.max_ridge_steps {
            let shifted = add_ridge(m, lambda);
            if let Ok(l) = cholesky(&shifted) {
                let cond = cholesky_condition_estimate(&l);
                if cond <= self.policy.condition_limit {
                    return Ok(SolveDecision {
                        tier: SolveTier::Ridge,
                        lambda,
                        cond_est: cond,
                    });
                }
                last_cond = cond;
            }
            lambda *= self.policy.ridge_growth;
        }
        // One final relaxation: if the last shift factorised at all, use it
        // even above the condition limit — a damped solve beats no solve.
        let shifted = add_ridge(m, lambda);
        if let Ok(l) = cholesky(&shifted) {
            return Ok(SolveDecision {
                tier: SolveTier::Ridge,
                lambda,
                cond_est: cholesky_condition_estimate(&l).min(last_cond),
            });
        }
        Err(TensorError::Singular {
            solver: "robust-ridge",
        })
    }

    /// Re-factorises `m` exactly as a decision mandates.
    ///
    /// Deterministic: ranks applying the same broadcast decision to the
    /// same replicated matrix produce bit-identical factors.
    ///
    /// # Errors
    /// Propagates factorisation failure — possible only when the decision
    /// was made for a different matrix.
    pub fn factorize(&self, m: &Matrix, decision: &SolveDecision) -> Result<Factorized> {
        match decision.tier {
            SolveTier::Cholesky => cholesky(m).map(Factorized::Cholesky),
            SolveTier::Lu => lu_decompose(m).map(|(lu, perm)| Factorized::Lu(lu, perm)),
            SolveTier::Ridge => cholesky(&add_ridge(m, decision.lambda)).map(Factorized::Cholesky),
        }
    }

    /// Solves `X · M = B` row-wise through the escalation ladder, recording
    /// the fired tier in `report`.
    ///
    /// If the chosen tier produces any non-finite output entry, the solve is
    /// re-run once with a forced ridge escalation (recorded as a
    /// `post_escalation`).
    ///
    /// # Errors
    /// Shape mismatch between `B` and `M`, a non-finite entry inside `M`,
    /// or total factorisation failure.
    pub fn solve_right(
        &self,
        b: &Matrix,
        m: &Matrix,
        report: &mut NumericsReport,
    ) -> Result<Matrix> {
        let decision = self.decide(m)?;
        let out = self.apply(b, m, &decision)?;
        report.record(&decision);
        if matrix_is_finite(&out) {
            return Ok(out);
        }
        // Post-solve escalation: the accepted tier still produced NaN/Inf
        // (catastrophic cancellation past what the estimate saw).  Force the
        // ridge ladder from one step above the failed λ.
        report.post_escalations += 1;
        let forced = RobustSolver::new(SolvePolicy {
            condition_limit: f64::INFINITY,
            ridge_initial: self
                .policy
                .ridge_initial
                .max(decision.lambda * self.policy.ridge_growth),
            ..self.policy
        });
        let n = require_square(m)?;
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let scale = (trace.abs() / n.max(1) as f64).max(1.0);
        let mut lambda = forced.policy.ridge_initial * scale;
        for _ in 0..=self.policy.max_ridge_steps {
            let decision = SolveDecision {
                tier: SolveTier::Ridge,
                lambda,
                cond_est: f64::INFINITY,
            };
            if let Ok(out) = self.apply(b, m, &decision) {
                if matrix_is_finite(&out) {
                    report.record(&decision);
                    return Ok(out);
                }
            }
            lambda *= self.policy.ridge_growth;
        }
        Err(TensorError::Singular {
            solver: "robust-post-escalation",
        })
    }

    /// Applies a (possibly broadcast) decision: factorise per the mandated
    /// tier and solve `X · M = B` row-wise.
    ///
    /// # Errors
    /// Shape mismatch, or factorisation failure under the mandated tier.
    pub fn apply(&self, b: &Matrix, m: &Matrix, decision: &SolveDecision) -> Result<Matrix> {
        if b.cols() != m.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "robust_solve_right",
                left: vec![b.rows(), b.cols()],
                right: vec![m.rows(), m.cols()],
            });
        }
        let fact = self.factorize(m, decision)?;
        let mut out = b.clone();
        for i in 0..out.rows() {
            fact.solve_in_place(out.row_mut(i))?;
        }
        Ok(out)
    }
}

fn add_ridge(m: &Matrix, lambda: f64) -> Matrix {
    let mut shifted = m.clone();
    let n = shifted.rows().min(shifted.cols());
    for i in 0..n {
        shifted.set(i, i, shifted.get(i, i) + lambda);
    }
    shifted
}

fn matrix_is_finite(m: &Matrix) -> bool {
    m.as_slice().iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn solver() -> RobustSolver {
        RobustSolver::new(SolvePolicy::default())
    }

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]])
    }

    #[test]
    fn well_conditioned_uses_cholesky_and_matches_reference() {
        let m = spd3();
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, -1.0, 2.0]]);
        let mut report = NumericsReport::default();
        let x = solver().solve_right(&b, &m, &mut report).unwrap();
        let x_ref = crate::linalg::solve_right(&b, &m).unwrap();
        assert!(x.max_abs_diff(&x_ref).unwrap() < 1e-12);
        assert_eq!(report.cholesky_solves, 1);
        assert!(!report.escalated());
    }

    #[test]
    fn indefinite_escalates_to_lu() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let decision = solver().decide(&m).unwrap();
        assert_eq!(decision.tier, SolveTier::Lu);
        assert_eq!(decision.lambda, 0.0);
    }

    #[test]
    fn rank_deficient_escalates_to_ridge() {
        // Rank-1 PSD: Cholesky and LU both fail, ridge succeeds.
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 2.0]]);
        let mut report = NumericsReport::default();
        let decision = solver().decide(&m).unwrap();
        assert_eq!(decision.tier, SolveTier::Ridge);
        assert!(decision.lambda > 0.0);
        let x = solver().solve_right(&b, &m, &mut report).unwrap();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(report.ridge_solves, 1);
        assert!(report.max_lambda > 0.0);
    }

    #[test]
    fn zero_matrix_solves_via_ridge() {
        // The empty-slice snapshot produces an all-zero denominator.
        let m = Matrix::zeros(3, 3);
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut report = NumericsReport::default();
        let x = solver().solve_right(&b, &m, &mut report).unwrap();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(report.ridge_solves, 1);
    }

    #[test]
    fn non_finite_matrix_entry_is_named() {
        let mut m = spd3();
        m.set(1, 2, f64::NAN);
        let err = solver().decide(&m).unwrap_err();
        match err {
            TensorError::NonFiniteValue { index, value } => {
                assert_eq!(index, vec![1, 2]);
                assert!(value.is_nan());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn decision_roundtrips_through_encode() {
        for decision in [
            SolveDecision {
                tier: SolveTier::Cholesky,
                lambda: 0.0,
                cond_est: 12.5,
            },
            SolveDecision {
                tier: SolveTier::Lu,
                lambda: 0.0,
                cond_est: 1e9,
            },
            SolveDecision {
                tier: SolveTier::Ridge,
                lambda: 3.7e-6,
                cond_est: 4.2e11,
            },
        ] {
            let mut slots = [0.0; SolveDecision::ENCODED_LEN];
            decision.encode(&mut slots);
            assert_eq!(SolveDecision::decode(&slots).unwrap(), decision);
        }
        assert!(SolveDecision::decode(&[9.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn factorize_is_deterministic_across_calls() {
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-13]]);
        let s = solver();
        let decision = s.decide(&m).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 2.0]]);
        let x1 = s.apply(&b, &m, &decision).unwrap();
        let x2 = s.apply(&b, &m, &decision).unwrap();
        // Bit-identical: same decision + same matrix => same factors.
        assert_eq!(x1.as_slice(), x2.as_slice());
    }

    #[test]
    fn report_absorb_accumulates() {
        let mut a = NumericsReport {
            cholesky_solves: 2,
            ridge_solves: 1,
            max_lambda: 1e-8,
            max_cond_est: 1e3,
            ..NumericsReport::default()
        };
        let b = NumericsReport {
            lu_solves: 3,
            post_escalations: 1,
            max_lambda: 1e-6,
            max_cond_est: 10.0,
            ..NumericsReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.cholesky_solves, 2);
        assert_eq!(a.lu_solves, 3);
        assert_eq!(a.ridge_solves, 1);
        assert_eq!(a.post_escalations, 1);
        assert_eq!(a.max_lambda, 1e-6);
        assert_eq!(a.max_cond_est, 1e3);
        assert!(a.escalated());
    }

    /// Builds an SPD matrix `Vᵀ D V` with eigenvalue spread `spread` (so the
    /// true condition number is exactly `spread`) from a random rotation.
    fn graded_spd(n: usize, spread: f64, angles: &[f64]) -> Matrix {
        // Start from a diagonal with geometric grading 1 .. 1/spread.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            let t = if n > 1 {
                i as f64 / (n - 1) as f64
            } else {
                0.0
            };
            m.set(i, i, spread.powf(-t));
        }
        // Apply Givens rotations to mix the eigenvectors.
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let theta = angles[k % angles.len()];
                k += 1;
                let (c, s) = (theta.cos(), theta.sin());
                // m = Gᵀ m G for the (i, j) rotation.
                for col in 0..n {
                    let a = m.get(i, col);
                    let b = m.get(j, col);
                    m.set(i, col, c * a - s * b);
                    m.set(j, col, s * a + c * b);
                }
                for row in 0..n {
                    let a = m.get(row, i);
                    let b = m.get(row, j);
                    m.set(row, i, c * a - s * b);
                    m.set(row, j, s * a + c * b);
                }
            }
        }
        // Symmetrise against rounding drift.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m.get(i, j) + m.get(j, i));
                m.set(i, j, avg);
                m.set(j, i, avg);
            }
        }
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// SPD systems with condition numbers up to ~1e14: the robust solver
        /// never panics and never returns non-finite entries.
        #[test]
        fn near_singular_spd_never_panics_never_nan(
            n in 2usize..6,
            log_spread in 0.0f64..14.0,
            angles in prop::collection::vec(0.0f64..std::f64::consts::PI, 1..16),
            rhs in prop::collection::vec(-10.0f64..10.0, 6),
        ) {
            let m = graded_spd(n, 10f64.powf(log_spread), &angles);
            let mut b = Matrix::zeros(1, n);
            for j in 0..n {
                b.set(0, j, rhs[j]);
            }
            let mut report = NumericsReport::default();
            let x = solver().solve_right(&b, &m, &mut report).unwrap();
            prop_assert!(x.as_slice().iter().all(|v| v.is_finite()));
        }

        /// Well-conditioned SPD systems (condition <= 1e6) match the plain
        /// reference solve tightly and never escalate.
        #[test]
        fn well_conditioned_matches_reference(
            n in 2usize..6,
            log_spread in 0.0f64..6.0,
            angles in prop::collection::vec(0.0f64..std::f64::consts::PI, 1..16),
            rhs in prop::collection::vec(-10.0f64..10.0, 6),
        ) {
            let m = graded_spd(n, 10f64.powf(log_spread), &angles);
            let mut b = Matrix::zeros(1, n);
            for j in 0..n {
                b.set(0, j, rhs[j]);
            }
            let mut report = NumericsReport::default();
            let x = solver().solve_right(&b, &m, &mut report).unwrap();
            let x_ref = crate::linalg::solve_right(&b, &m).unwrap();
            prop_assert!(x.max_abs_diff(&x_ref).unwrap() < 1e-6);
            prop_assert_eq!(report.cholesky_solves, 1);
            prop_assert!(!report.escalated());
        }
    }
}

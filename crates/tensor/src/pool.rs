//! Intra-worker work-stealing thread pool for the MTTKRP kernels.
//!
//! The distributed driver models one rank per OS thread, so on a
//! many-core box running few workers most cores idle through the compute
//! phases.  [`ThreadPool`] closes that gap: a small pool of persistent
//! threads that execute *chunked* kernel jobs ([`ThreadPool::run`])
//! submitted by its owning thread.  Design constraints, in order:
//!
//! 1. **Bitwise determinism** — the pool never changes *what* is
//!    computed, only *who* computes it.  Jobs are an indexed set of
//!    chunks; callers guarantee chunks touch disjoint output (the layout
//!    kernels chunk by run ranges, which are row-disjoint by
//!    construction), so any interleaving of chunk execution produces
//!    bit-identical output.  Chunk *claiming* is a single shared atomic
//!    cursor — work-stealing without any per-thread deques to rebalance.
//! 2. **Clock hygiene (L5)** — idle workers park on a `Condvar`; there is
//!    no `thread::sleep` polling and no clock read anywhere in the pool.
//! 3. **Observability** — when the submitting thread is collecting
//!    metrics, each worker installs a child registry for the duration of
//!    the job and the caller [`absorb`](dismastd_obs::absorb)s the child
//!    snapshots before `run` returns, so `pool/chunks` counters (and any
//!    spans recorded inside chunks) reconcile with the caller's snapshot
//!    instead of being silently dropped.
//!
//! Pool size comes from [`ThreadPolicy`]: an explicit `Fixed(n)`, or
//! `Auto` (the default), which honours the `DISMASTD_THREADS` environment
//! variable and falls back to `std::thread::available_parallelism`.
//! Threading is confined to this module by the xtask determinism lint
//! (`thread::spawn` elsewhere in the deterministic crates is a build-gate
//! failure).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

/// How many threads an intra-worker pool should use.
///
/// `Auto` resolves the `DISMASTD_THREADS` environment variable (a
/// positive integer) and falls back to the machine's available
/// parallelism; `Fixed(n)` pins the count and *ignores* the environment,
/// so explicit configuration (and tests pinning determinism across
/// counts) cannot be overridden from outside.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadPolicy {
    /// `DISMASTD_THREADS` if set, else `available_parallelism`.
    #[default]
    Auto,
    /// Exactly this many threads (clamped to at least 1).
    Fixed(usize),
}

impl ThreadPolicy {
    /// Resolves the policy to a concrete thread count (>= 1).  `Auto`
    /// reads the environment on every call, so tests that vary
    /// `DISMASTD_THREADS` see the change immediately.
    pub fn resolve(self) -> usize {
        match self {
            ThreadPolicy::Fixed(n) => n.max(1),
            ThreadPolicy::Auto => env_threads().unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        }
    }

    /// Resolves the policy for one of `world` co-resident workers: the
    /// machine budget is split evenly so `world` ranks on one box do not
    /// oversubscribe it (`>= 1` per rank).
    pub fn resolve_for_world(self, world: usize) -> usize {
        (self.resolve() / world.max(1)).max(1)
    }
}

fn env_threads() -> Option<usize> {
    std::env::var("DISMASTD_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// One submitted job: a chunk task plus the chunk count and whether the
/// submitting thread was collecting metrics.
///
/// The task reference is lifetime-erased to `'static`; this is sound
/// because [`ThreadPool::run`] does not return until every engaged worker
/// has disengaged and the job slot is cleared, so no worker can observe
/// the reference after the borrow it was transmuted from ends.
#[derive(Clone, Copy)]
struct JobHandle {
    task: &'static (dyn Fn(usize) + Sync),
    n_chunks: usize,
    collect: bool,
}

struct PoolState {
    job: Option<JobHandle>,
    /// Bumped per submitted job so sleeping workers can tell a new job
    /// from a spurious wakeup.
    epoch: u64,
    /// Workers currently inside a job (claimed it under the lock).
    engaged: usize,
    /// Child snapshots handed back by workers at job end.
    snapshots: Vec<dismastd_obs::MetricsSnapshot>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a job (or shutdown).
    work: Condvar,
    /// The submitter parks here waiting for engaged workers to drain.
    done: Condvar,
    /// Next unclaimed chunk of the current job.
    cursor: AtomicUsize,
}

fn lock(shared: &Shared) -> MutexGuard<'_, PoolState> {
    // A panic inside a chunk task poisons the lock; the state itself is
    // plain data and stays consistent, so recover and continue.
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small work-stealing pool; see the module docs.
///
/// `ThreadPool::new(1)` spawns no threads at all — every job runs inline
/// on the submitting thread through the identical chunk loop, so a
/// single-threaded pool is exactly the serial execution.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool of `threads` total execution lanes: the submitting
    /// thread plus `threads - 1` spawned workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                engaged: 0,
                snapshots: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Creates a pool sized by the policy (see [`ThreadPolicy::resolve`]).
    pub fn from_policy(policy: ThreadPolicy) -> Self {
        ThreadPool::new(policy.resolve())
    }

    /// Total execution lanes, including the submitting thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(c)` for every chunk `c in 0..n_chunks`, blocking
    /// until all chunks have completed.  The submitting thread
    /// participates, so the pool is never idle-while-waiting.
    ///
    /// Chunks must write disjoint output (callers chunk by row-disjoint
    /// run ranges); under that contract the result is bitwise identical
    /// for every thread count, including 1.
    pub fn run(&self, n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        if self.workers.is_empty() || n_chunks == 1 {
            // Serial fast path: same loop, no synchronisation.
            for c in 0..n_chunks {
                task(c);
                dismastd_obs::counter_add("pool/chunks", 1);
            }
            return;
        }
        let collect = dismastd_obs::installed();
        // Lifetime erasure — sound per the `JobHandle` contract: this
        // function blocks below until `engaged == 0` and then clears the
        // job slot, so no worker holds the reference once `run` returns.
        let task: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        {
            let mut st = lock(&self.shared);
            st.job = Some(JobHandle {
                task,
                n_chunks,
                collect,
            });
            st.epoch += 1;
            self.shared.cursor.store(0, Ordering::SeqCst);
            self.shared.work.notify_all();
        }
        // The submitter steals chunks like any worker.
        loop {
            let c = self.shared.cursor.fetch_add(1, Ordering::SeqCst);
            if c >= n_chunks {
                break;
            }
            task(c);
            dismastd_obs::counter_add("pool/chunks", 1);
        }
        // Wait out engaged workers, retire the job, collect child
        // snapshots into this thread's registry.
        let snapshots = {
            let mut st = lock(&self.shared);
            while st.engaged > 0 {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
            std::mem::take(&mut st.snapshots)
        };
        for snap in &snapshots {
            dismastd_obs::absorb(snap);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            // A worker that panicked (chunk task bug) already tore down;
            // surfacing the panic here would abort the unwind that is
            // likely already in progress on the submitter.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        // Park until a job this worker has not seen (or shutdown).
        let job = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    if let Some(job) = st.job {
                        st.engaged += 1;
                        break job;
                    }
                    // Woke after the submitter retired the job: nothing
                    // to do for this epoch.
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Child registry so recordings on this thread are not dropped;
        // the submitter absorbs the snapshot before `run` returns.
        let collector = job.collect.then(dismastd_obs::begin);
        loop {
            let c = shared.cursor.fetch_add(1, Ordering::SeqCst);
            if c >= job.n_chunks {
                break;
            }
            (job.task)(c);
            dismastd_obs::counter_add("pool/chunks", 1);
        }
        let snap = collector.map(dismastd_obs::Collector::finish);
        let mut st = lock(shared);
        if let Some(snap) = snap {
            if !snap.is_empty() {
                st.snapshots.push(snap);
            }
        }
        st.engaged -= 1;
        if st.engaged == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn policy_resolves_fixed_and_clamps_zero() {
        assert_eq!(ThreadPolicy::Fixed(3).resolve(), 3);
        assert_eq!(ThreadPolicy::Fixed(0).resolve(), 1);
        assert!(ThreadPolicy::Auto.resolve() >= 1);
        assert_eq!(ThreadPolicy::default(), ThreadPolicy::Auto);
    }

    #[test]
    fn policy_splits_the_budget_across_a_world() {
        assert_eq!(ThreadPolicy::Fixed(8).resolve_for_world(4), 2);
        assert_eq!(ThreadPolicy::Fixed(8).resolve_for_world(3), 2);
        assert_eq!(ThreadPolicy::Fixed(2).resolve_for_world(4), 1);
        assert_eq!(ThreadPolicy::Fixed(8).resolve_for_world(0), 8);
    }

    #[test]
    fn policy_serde_round_trips() {
        for p in [ThreadPolicy::Auto, ThreadPolicy::Fixed(4)] {
            let json = serde_json::to_string(&p).expect("serialize");
            let back: ThreadPolicy = serde_json::from_str(&json).expect("parse");
            assert_eq!(back, p);
        }
    }

    fn run_sum(pool: &ThreadPool, n_chunks: usize) -> u64 {
        let total = AtomicU64::new(0);
        pool.run(n_chunks, &|c| {
            total.fetch_add(c as u64 + 1, Ordering::Relaxed);
        });
        total.load(Ordering::Relaxed)
    }

    #[test]
    fn every_chunk_runs_exactly_once_for_every_pool_size() {
        let expected = |n: usize| (n * (n + 1) / 2) as u64;
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.threads(), threads);
            for n_chunks in [0, 1, 2, 7, 64] {
                assert_eq!(
                    run_sum(&pool, n_chunks),
                    expected(n_chunks),
                    "threads={threads} n_chunks={n_chunks}"
                );
            }
        }
    }

    #[test]
    fn a_pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            assert_eq!(run_sum(&pool, 16), 136);
        }
    }

    #[test]
    fn disjoint_chunk_writes_land_like_serial() {
        let pool = ThreadPool::new(4);
        let n = 1000usize;
        let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(n, &|c| {
            slots[c].store(c as u64 * 3 + 1, Ordering::Relaxed);
        });
        for (c, s) in slots.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), c as u64 * 3 + 1);
        }
    }

    #[test]
    fn pooled_chunk_counters_reconcile_with_the_caller_snapshot() {
        let pool = ThreadPool::new(4);
        let collector = dismastd_obs::begin();
        run_sum(&pool, 32);
        let snap = collector.finish();
        assert_eq!(
            snap.counter_value("pool/chunks"),
            32,
            "every chunk must be accounted, wherever it ran"
        );
    }

    #[test]
    fn uncollected_jobs_record_nothing() {
        let pool = ThreadPool::new(3);
        run_sum(&pool, 8);
        let snap = dismastd_obs::begin().finish();
        assert!(snap.is_empty());
    }
}

//! Small dense solvers for the `R x R` normal-equation systems.
//!
//! Every ALS/DTD factor update solves `A_n · D = N` for `A_n`, where `D` is
//! an `R x R` Hadamard product of Gram matrices — symmetric and (generically)
//! positive definite, with `R` small (the paper uses `R = 10`).  Cholesky is
//! the right tool; we fall back to partially pivoted LU and, as a last
//! resort, to ridge regularisation, mirroring what practical CP solvers
//! (SPLATT, Tensor Toolbox) do when factors become collinear.

use crate::error::{Result, TensorError};
use crate::matrix::Matrix;

/// Cholesky factorisation `M = L Lᵀ` of a symmetric positive definite matrix.
///
/// Returns the lower-triangular factor `L`, or an error when a non-positive
/// pivot is encountered (matrix not SPD).
pub fn cholesky(m: &Matrix) -> Result<Matrix> {
    let n = require_square(m)?;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = m.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(TensorError::Singular { solver: "cholesky" });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `L y = b` for lower-triangular `L` (forward substitution), in place.
fn forward_sub(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * b[k];
        }
        b[i] = sum / l.get(i, i);
    }
}

/// Solves `Lᵀ x = y` for lower-triangular `L` (backward substitution), in place.
fn backward_sub_transposed(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * b[k];
        }
        b[i] = sum / l.get(i, i);
    }
}

/// LU factorisation with partial pivoting.
///
/// Returns `(lu, perm)` where `lu` packs `L` (unit diagonal, below) and `U`
/// (on and above the diagonal) and `perm` is the row permutation.
pub fn lu_decompose(m: &Matrix) -> Result<(Matrix, Vec<usize>)> {
    let n = require_square(m)?;
    let mut lu = m.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Partial pivoting: pick the largest remaining entry in this column.
        let (pivot_row, pivot_val) =
            (col..n)
                .map(|r| (r, lu.get(r, col).abs()))
                .fold(
                    (col, 0.0),
                    |best, cur| if cur.1 > best.1 { cur } else { best },
                );
        if pivot_val < 1e-300 || !pivot_val.is_finite() {
            return Err(TensorError::Singular { solver: "lu" });
        }
        if pivot_row != col {
            for j in 0..n {
                let a = lu.get(col, j);
                let b = lu.get(pivot_row, j);
                lu.set(col, j, b);
                lu.set(pivot_row, j, a);
            }
            perm.swap(col, pivot_row);
        }
        let inv_pivot = 1.0 / lu.get(col, col);
        for r in col + 1..n {
            let factor = lu.get(r, col) * inv_pivot;
            lu.set(r, col, factor);
            for j in col + 1..n {
                let v = lu.get(r, j) - factor * lu.get(col, j);
                lu.set(r, j, v);
            }
        }
    }
    Ok((lu, perm))
}

/// Solves `M x = b` given a packed LU factorisation from [`lu_decompose`].
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] when `b` or `perm` disagree with
/// the factorisation's dimension, and [`TensorError::NonFinitePivot`] when
/// a diagonal pivot is zero or non-finite (a caller-corrupted or
/// hand-built factorisation — [`lu_decompose`] never produces one).
pub fn lu_solve(lu: &Matrix, perm: &[usize], b: &[f64]) -> Result<Vec<f64>> {
    let n = require_square(lu)?;
    if b.len() != n || perm.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "lu_solve",
            left: vec![n, n],
            right: vec![perm.len(), b.len()],
        });
    }
    if perm.iter().any(|&p| p >= n) {
        return Err(TensorError::InvalidArgument(format!(
            "lu_solve: permutation entry out of range for dimension {n}"
        )));
    }
    for i in 0..n {
        let pivot = lu.get(i, i);
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(TensorError::NonFinitePivot { solver: "lu_solve" });
        }
    }
    let mut x: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
    // Forward: L y = Pb (unit diagonal).
    for i in 0..n {
        let mut sum = x[i];
        for k in 0..i {
            sum -= lu.get(i, k) * x[k];
        }
        x[i] = sum;
    }
    // Backward: U x = y.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in i + 1..n {
            sum -= lu.get(i, k) * x[k];
        }
        x[i] = sum / lu.get(i, i);
    }
    Ok(x)
}

/// Cheap condition-number estimate from a Cholesky factor `L`:
/// `(max_i L_ii / min_i L_ii)²`.  A lower bound on the true 2-norm
/// condition number of `L Lᵀ`, adequate for tier-escalation decisions.
pub fn cholesky_condition_estimate(l: &Matrix) -> f64 {
    let r = diag_ratio(l, |v| v);
    r * r
}

/// Cheap condition-number estimate from a packed LU factorisation:
/// `max_i |U_ii| / min_i |U_ii|` (a lower bound on the condition of `M`).
pub fn lu_condition_estimate(lu: &Matrix) -> f64 {
    diag_ratio(lu, f64::abs)
}

fn diag_ratio(m: &Matrix, f: impl Fn(f64) -> f64) -> f64 {
    let n = m.rows().min(m.cols());
    if n == 0 {
        return 1.0;
    }
    let mut max = 0.0f64;
    let mut min = f64::INFINITY;
    for i in 0..n {
        let d = f(m.get(i, i));
        if !d.is_finite() {
            return f64::INFINITY;
        }
        max = max.max(d);
        min = min.min(d);
    }
    if min <= 0.0 {
        return f64::INFINITY;
    }
    max / min
}

/// Pre-factorised symmetric system used to apply `·D⁻¹` to many rows.
///
/// The ALS update applies the same `R x R` inverse to every row of the
/// MTTKRP result; factorising once and back-substituting per row is the
/// `O(R³ + I R²)` decomposition the paper's complexity analysis assumes.
pub enum Factorized {
    /// SPD path.
    Cholesky(Matrix),
    /// General fallback.
    Lu(Matrix, Vec<usize>),
}

impl Factorized {
    /// Factorises `m`, preferring Cholesky, falling back to LU, and finally
    /// to a ridge-regularised Cholesky (`m + eps·tr(m)/n · I`).
    ///
    /// # Errors
    /// Returns [`TensorError::Singular`] only if all three attempts fail.
    pub fn new(m: &Matrix) -> Result<Factorized> {
        if let Ok(l) = cholesky(m) {
            return Ok(Factorized::Cholesky(l));
        }
        if let Ok((lu, perm)) = lu_decompose(m) {
            return Ok(Factorized::Lu(lu, perm));
        }
        let n = require_square(m)?;
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let ridge = (trace.abs() / n as f64).max(1.0) * 1e-9;
        let mut reg = m.clone();
        for i in 0..n {
            reg.set(i, i, reg.get(i, i) + ridge);
        }
        cholesky(&reg).map(Factorized::Cholesky)
    }

    /// Solves `M x = b` in place.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when `b.len()` disagrees with
    /// the factorised dimension, and [`TensorError::NonFinitePivot`] when a
    /// diagonal pivot is zero or non-finite (possible only for hand-built
    /// `Factorized` values — the constructors never produce one).
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "solve_in_place",
                left: vec![n, n],
                right: vec![b.len()],
            });
        }
        match self {
            Factorized::Cholesky(l) => {
                for i in 0..n {
                    let pivot = l.get(i, i);
                    if pivot == 0.0 || !pivot.is_finite() {
                        return Err(TensorError::NonFinitePivot {
                            solver: "cholesky_solve",
                        });
                    }
                }
                forward_sub(l, b);
                backward_sub_transposed(l, b);
                Ok(())
            }
            Factorized::Lu(lu, perm) => {
                let x = lu_solve(lu, perm, b)?;
                b.copy_from_slice(&x);
                Ok(())
            }
        }
    }

    /// Dimension of the factorised system.
    pub fn dim(&self) -> usize {
        match self {
            Factorized::Cholesky(l) => l.rows(),
            Factorized::Lu(lu, _) => lu.rows(),
        }
    }
}

/// Solves `X · M = B` row-wise for symmetric `M` (the ALS "division").
///
/// Because `M` is symmetric, `X M = B  ⇔  M Xᵀ = Bᵀ`, i.e. each row of `X`
/// solves `M x = b` with `b` the matching row of `B`.
///
/// # Errors
/// Propagates factorisation failure, or a shape mismatch when
/// `B.cols() != M.rows()`.
pub fn solve_right(b: &Matrix, m: &Matrix) -> Result<Matrix> {
    if b.cols() != m.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "solve_right",
            left: vec![b.rows(), b.cols()],
            right: vec![m.rows(), m.cols()],
        });
    }
    let fact = Factorized::new(m)?;
    let mut out = b.clone();
    for i in 0..out.rows() {
        fact.solve_in_place(out.row_mut(i))?;
    }
    Ok(out)
}

/// Explicit inverse of a small square matrix (used only where the paper's
/// analysis literally inverts the denominator; prefer [`solve_right`]).
pub fn invert(m: &Matrix) -> Result<Matrix> {
    let n = require_square(m)?;
    let fact = Factorized::new(m)?;
    let mut inv = Matrix::identity(n);
    // Solve M x = e_i column by column, writing columns of the inverse.
    let mut col = vec![0.0; n];
    for j in 0..n {
        col.iter_mut().for_each(|x| *x = 0.0);
        col[j] = 1.0;
        fact.solve_in_place(&mut col)?;
        for i in 0..n {
            inv.set(i, j, col[i]);
        }
    }
    Ok(inv)
}

pub(crate) fn require_square(m: &Matrix) -> Result<usize> {
    if m.rows() != m.cols() {
        return Err(TensorError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    Ok(m.rows())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // Diagonally dominant symmetric => SPD.
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]])
    }

    #[test]
    fn cholesky_reconstructs() {
        let m = spd3();
        let l = cholesky(&m).unwrap();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(m.max_abs_diff(&rec).unwrap() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&m),
            Err(TensorError::Singular { solver: "cholesky" })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(cholesky(&m), Err(TensorError::NotSquare { .. })));
    }

    #[test]
    fn lu_solves_general_system() {
        // Asymmetric, needs pivoting (zero leading pivot).
        let m = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, 1.0], &[2.0, 0.0, 3.0]]);
        let (lu, perm) = lu_decompose(&m).unwrap();
        let x = lu_solve(&lu, &perm, &[5.0, 6.0, 13.0]).unwrap();
        // Verify M x = b.
        for (i, &bi) in [5.0, 6.0, 13.0].iter().enumerate() {
            let got: f64 = (0..3).map(|j| m.get(i, j) * x[j]).sum();
            assert!((got - bi).abs() < 1e-10, "row {i}: {got} vs {bi}");
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(lu_decompose(&m).is_err());
    }

    #[test]
    fn factorized_prefers_cholesky_then_lu() {
        assert!(matches!(
            Factorized::new(&spd3()).unwrap(),
            Factorized::Cholesky(_)
        ));
        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            Factorized::new(&indefinite).unwrap(),
            Factorized::Lu(..)
        ));
    }

    #[test]
    fn factorized_ridge_fallback_on_singular_spd_like() {
        // Positive semidefinite rank-1 matrix: Cholesky fails, LU fails,
        // ridge succeeds and gives a usable (approximate) solve.
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let f = Factorized::new(&m).unwrap();
        assert_eq!(f.dim(), 2);
        let mut b = vec![2.0, 2.0];
        f.solve_in_place(&mut b).unwrap();
        // Solution of the regularised system stays finite.
        assert!(b.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn solve_in_place_rejects_wrong_length() {
        let f = Factorized::new(&spd3()).unwrap();
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            f.solve_in_place(&mut b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn lu_solve_rejects_wrong_length_and_bad_perm() {
        let m = spd3();
        let (lu, perm) = lu_decompose(&m).unwrap();
        assert!(matches!(
            lu_solve(&lu, &perm, &[1.0, 2.0]),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            lu_solve(&lu, &[0, 1, 7], &[1.0, 2.0, 3.0]),
            Err(TensorError::InvalidArgument(_))
        ));
    }

    #[test]
    fn solve_rejects_non_finite_pivots() {
        // Hand-built corrupted factorisations.
        let mut l = cholesky(&spd3()).unwrap();
        l.set(1, 1, f64::NAN);
        let f = Factorized::Cholesky(l);
        let mut b = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            f.solve_in_place(&mut b),
            Err(TensorError::NonFinitePivot { .. })
        ));

        let (mut lu, perm) = lu_decompose(&spd3()).unwrap();
        lu.set(2, 2, f64::INFINITY);
        assert!(matches!(
            lu_solve(&lu, &perm, &[1.0, 2.0, 3.0]),
            Err(TensorError::NonFinitePivot { solver: "lu_solve" })
        ));
    }

    #[test]
    fn condition_estimates_track_scaling() {
        // Well-conditioned: estimate close to 1.
        let well = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let l = cholesky(&well).unwrap();
        assert!(cholesky_condition_estimate(&l) < 2.0);

        // Badly scaled diagonal: estimate explodes.
        let bad = Matrix::from_rows(&[&[1e12, 0.0], &[0.0, 1e-2]]);
        let l = cholesky(&bad).unwrap();
        assert!(cholesky_condition_estimate(&l) > 1e13);

        let (lu, _) = lu_decompose(&bad).unwrap();
        assert!(lu_condition_estimate(&lu) > 1e13);
    }

    #[test]
    fn solve_right_matches_explicit_inverse() {
        let m = spd3();
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]);
        let x = solve_right(&b, &m).unwrap();
        let x_ref = b.matmul(&invert(&m).unwrap()).unwrap();
        assert!(x.max_abs_diff(&x_ref).unwrap() < 1e-10);
        // And X * M == B.
        let back = x.matmul(&m).unwrap();
        assert!(back.max_abs_diff(&b).unwrap() < 1e-10);
    }

    #[test]
    fn solve_right_shape_check() {
        let m = spd3();
        let b = Matrix::zeros(2, 2);
        assert!(solve_right(&b, &m).is_err());
    }

    #[test]
    fn invert_times_original_is_identity() {
        let m = spd3();
        let inv = invert(&m).unwrap();
        let prod = m.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn invert_1x1() {
        let m = Matrix::from_rows(&[&[4.0]]);
        let inv = invert(&m).unwrap();
        assert!((inv.get(0, 0) - 0.25).abs() < 1e-15);
    }
}

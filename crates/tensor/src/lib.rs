// Triangular and multi-buffer numeric loops read clearer with explicit
// indices; suppress the iterator-style lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! # dismastd-tensor
//!
//! Sparse-tensor and dense linear-algebra substrate for the DisMASTD
//! reproduction (Yang et al., *DisMASTD: An Efficient Distributed
//! Multi-Aspect Streaming Tensor Decomposition*, ICDE 2021).
//!
//! The crate provides everything below the decomposition algorithms:
//!
//! * [`Matrix`] — dense row-major matrices (CP factors, `R x R` Grams) and
//!   the row-wise kernels the paper distributes;
//! * [`linalg`] — Cholesky/LU solvers for the `R x R` normal equations;
//! * [`SparseTensor`] — arbitrary-order COO tensors with the snapshot
//!   split/complement operations of the multi-aspect streaming model;
//! * [`mttkrp`](crate::mttkrp::mttkrp) — the Matricized Tensor Times
//!   Khatri-Rao Product, the paper's bottleneck operator;
//! * [`KruskalTensor`] — the decomposed form with Gram-identity norms and
//!   inner products (the reused intermediates of Sec. IV-B4);
//! * [`DenseTensor`] — a brute-force oracle for testing.

pub mod adaptive;
pub mod coo;
pub mod dense;
pub mod error;
pub mod kruskal;
pub mod layout;
pub mod linalg;
pub mod matrix;
pub mod mttkrp;
pub mod ops;
pub mod pool;
pub mod robust;

pub use adaptive::{AdaptivePolicy, CellKernel, LayoutChoice};
pub use coo::{QuarantineCounts, SparseTensor, SparseTensorBuilder, ValidationMode};
pub use dense::DenseTensor;
pub use error::{Result, TensorError};
pub use kruskal::KruskalTensor;
pub use layout::MttkrpPlan;
pub use matrix::Matrix;
pub use pool::{ThreadPolicy, ThreadPool};
pub use robust::{NumericsReport, RobustSolver, SolveDecision, SolvePolicy, SolveTier};

#[cfg(test)]
mod proptests {
    use crate::coo::SparseTensorBuilder;
    use crate::dense::DenseTensor;
    use crate::matrix::Matrix;
    use crate::mttkrp::mttkrp;
    use crate::ops::{grand_sum_hadamard, khatri_rao, khatri_rao_skip};
    use proptest::prelude::*;

    /// Strategy: a small shape, a list of (index, value) entries, a rank.
    fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(1usize..5, 2..4)
    }

    fn tensor_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<(Vec<usize>, f64)>)> {
        shape_strategy().prop_flat_map(|shape| {
            let idx = shape.iter().map(|&s| 0usize..s).collect::<Vec<_>>();
            let entry = (idx, -2.0f64..2.0);
            (Just(shape), prop::collection::vec(entry, 0..20))
        })
    }

    proptest! {
        #[test]
        fn builder_never_stores_zeros_or_duplicates(
            (shape, entries) in tensor_strategy()
        ) {
            let mut b = SparseTensorBuilder::new(shape);
            for (idx, v) in &entries {
                b.push(idx, *v).unwrap();
            }
            let t = b.build().unwrap();
            // no zeros
            prop_assert!(t.values().iter().all(|&v| v != 0.0));
            // sorted + unique
            for e in 1..t.nnz() {
                prop_assert!(t.index(e - 1) < t.index(e));
            }
        }

        #[test]
        fn split_preserves_entries((shape, entries) in tensor_strategy()) {
            let mut b = SparseTensorBuilder::new(shape.clone());
            for (idx, v) in &entries {
                b.push(idx, *v).unwrap();
            }
            let t = b.build().unwrap();
            // Split at roughly half the box.
            let old: Vec<usize> = shape.iter().map(|&s| s / 2).collect();
            let (inside, outside) = t.split_at(&old).unwrap();
            prop_assert_eq!(inside.nnz() + outside.nnz(), t.nnz());
            let total: f64 = inside.norm_sq() + outside.norm_sq();
            prop_assert!((total - t.norm_sq()).abs() < 1e-9);
        }

        #[test]
        fn mttkrp_matches_oracle_on_random_tensors(
            (shape, entries) in tensor_strategy(),
            seed in 0u64..1000,
        ) {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut b = SparseTensorBuilder::new(shape.clone());
            for (idx, v) in &entries {
                b.push(idx, *v).unwrap();
            }
            let t = b.build().unwrap();
            let factors: Vec<Matrix> = shape
                .iter()
                .map(|&s| Matrix::random(s, 2, &mut rng))
                .collect();
            for mode in 0..shape.len() {
                let fast = mttkrp(&t, &factors, mode).unwrap();
                let oracle = DenseTensor::from_sparse(&t)
                    .unwrap()
                    .unfold(mode)
                    .unwrap()
                    .matmul(&khatri_rao_skip(&factors, mode).unwrap())
                    .unwrap();
                prop_assert!(fast.max_abs_diff(&oracle).unwrap() < 1e-9);
            }
        }

        #[test]
        fn khatri_rao_column_structure(
            ar in prop::collection::vec(-2.0f64..2.0, 4),
            br in prop::collection::vec(-2.0f64..2.0, 6),
        ) {
            // a: 2x2, b: 3x2; check (a⊙b)[iJ+j, r] = a[i,r] b[j,r].
            let a = Matrix::from_vec(2, 2, ar).unwrap();
            let b = Matrix::from_vec(3, 2, br).unwrap();
            let kr = khatri_rao(&a, &b).unwrap();
            for i in 0..2 {
                for j in 0..3 {
                    for r in 0..2 {
                        let expect = a.get(i, r) * b.get(j, r);
                        prop_assert!((kr.get(i * 3 + j, r) - expect).abs() < 1e-12);
                    }
                }
            }
        }

        #[test]
        fn gram_grand_sum_identity(
            data in prop::collection::vec(-2.0f64..2.0, 12),
        ) {
            // grand_sum(AᵀA ⊛ AᵀA) == ‖AᵀA‖²_F for any A (sanity of the
            // Hadamard grand-sum kernel).
            let a = Matrix::from_vec(4, 3, data).unwrap();
            let g = a.gram();
            let lazy = grand_sum_hadamard(&[&g, &g]).unwrap();
            prop_assert!((lazy - g.frob_norm_sq()).abs() < 1e-9);
        }

        #[test]
        fn solve_right_solves(
            diag in prop::collection::vec(0.5f64..3.0, 3),
            brow in prop::collection::vec(-2.0f64..2.0, 6),
        ) {
            // Random SPD (diagonally dominant) system, verify X·M == B.
            let mut m = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    m.set(i, j, if i == j { diag[i] + 2.0 } else { 0.3 });
                }
            }
            let b = Matrix::from_vec(2, 3, brow).unwrap();
            let x = crate::linalg::solve_right(&b, &m).unwrap();
            let back = x.matmul(&m).unwrap();
            prop_assert!(back.max_abs_diff(&b).unwrap() < 1e-8);
        }
    }
}

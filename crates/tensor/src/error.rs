//! Error types for the tensor substrate.

use std::fmt;

/// Errors produced by tensor and linear-algebra operations.
///
/// All fallible operations in this crate return [`Result<T, TensorError>`];
/// the variants carry enough context to diagnose the failing call without a
/// backtrace.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two operands had incompatible shapes (e.g. mat-mul inner dimensions).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
    },
    /// An index was out of bounds for the given shape.
    IndexOutOfBounds {
        /// The offending index tuple.
        index: Vec<usize>,
        /// The shape it was checked against.
        shape: Vec<usize>,
    },
    /// A mode argument exceeded the tensor order.
    InvalidMode {
        /// The requested mode.
        mode: usize,
        /// The tensor order.
        order: usize,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Observed number of rows.
        rows: usize,
        /// Observed number of columns.
        cols: usize,
    },
    /// A linear system could not be solved (singular / not positive definite
    /// even after ridge regularisation).
    Singular {
        /// Description of the solver that gave up.
        solver: &'static str,
    },
    /// A solver hit a NaN/Inf pivot — the factorisation (or a caller-built
    /// factor) contains non-finite entries and substitution would only
    /// spread them.
    NonFinitePivot {
        /// Description of the solver that detected the pivot.
        solver: &'static str,
    },
    /// A non-finite (NaN/Inf) value was found where only finite data is
    /// permitted — e.g. an ingested nonzero under strict validation, or an
    /// entry of a normal-equation denominator.
    NonFiniteValue {
        /// Coordinate of the offending value (tensor index, or `[row, col]`
        /// for a matrix).
        index: Vec<usize>,
        /// The offending value.
        value: f64,
    },
    /// Two entries share one coordinate where strict validation forbids
    /// duplicates.
    DuplicateIndex {
        /// The duplicated coordinate.
        index: Vec<usize>,
    },
    /// A streaming step kept diverging (non-finite or rising loss) and the
    /// watchdog's restart budget ran out.
    Diverged {
        /// Rollback-and-restart attempts performed before giving up.
        restarts: usize,
        /// What the watchdog observed on the final attempt.
        detail: String,
    },
    /// A tensor was constructed with an empty shape or a zero-length mode
    /// where that is not permitted.
    EmptyShape,
    /// A quantity exceeded the `u32` index space of the compressed MTTKRP
    /// layout (`MttkrpPlan` stores entry positions and factor-row indices
    /// as `u32`).  Building a plan for such a tensor would silently
    /// truncate coordinates, so the build refuses instead; callers fall
    /// back to the COO kernel, which indexes with `usize`.
    PlanOverflow {
        /// Which quantity overflowed (`"nnz"` or `"shape dimension"`).
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Generic invalid-argument error.
    InvalidArgument(String),
    /// The distributed cluster failed mid-operation (worker crash, receive
    /// timeout, collective mismatch).  Carries the rendered
    /// `ClusterError` from the cluster crate plus, when attributable, the
    /// rank at fault; the recovery and supervision drivers in the core
    /// crate match on this variant to trigger restore-and-replay, and the
    /// heal ladder keys its per-rank respawn budgets on `rank`.
    ClusterFault {
        /// The worker at fault — the crashed rank, or the peer a timeout
        /// was waiting on.  `None` when the failure has no single culprit
        /// (e.g. a payload type mismatch).
        rank: Option<usize>,
        /// Rendered description of the underlying cluster error.
        detail: String,
    },
}

impl TensorError {
    /// Builds a [`TensorError::ShapeMismatch`] from borrowed shapes.
    ///
    /// The hot kernels funnel every shape rejection through this one
    /// out-of-line constructor so their steady-state bodies stay
    /// allocation-free: the owned shape copies exist only here, behind a
    /// `#[cold]` boundary that is reached solely on rejected input.
    #[cold]
    #[inline(never)]
    pub fn shape_mismatch(op: &'static str, left: &[usize], right: &[usize]) -> Self {
        TensorError::ShapeMismatch {
            op,
            left: left.to_vec(), // lint:allow(alloc_hygiene): cold error constructor, not steady state
            right: right.to_vec(), // lint:allow(alloc_hygiene): cold error constructor, not steady state
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, left, right } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidMode { mode, order } => {
                write!(f, "mode {mode} invalid for order-{order} tensor")
            }
            TensorError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            TensorError::Singular { solver } => {
                write!(f, "{solver}: matrix is singular or not positive definite")
            }
            TensorError::NonFinitePivot { solver } => {
                write!(f, "{solver}: non-finite pivot encountered")
            }
            TensorError::NonFiniteValue { index, value } => {
                write!(f, "non-finite value {value} at index {index:?}")
            }
            TensorError::DuplicateIndex { index } => {
                write!(f, "duplicate entry at index {index:?}")
            }
            TensorError::Diverged { restarts, detail } => {
                write!(
                    f,
                    "decomposition diverged after {restarts} restart(s): {detail}"
                )
            }
            TensorError::EmptyShape => write!(f, "tensor shape must be non-empty"),
            TensorError::PlanOverflow { what, value } => {
                write!(
                    f,
                    "MTTKRP plan overflow: {what} = {value} exceeds the u32 layout \
                     index space; use the COO kernel for this tensor"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::ClusterFault { detail, .. } => write!(f, "cluster fault: {detail}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<TensorError> = vec![
            TensorError::ShapeMismatch {
                op: "matmul",
                left: vec![2, 3],
                right: vec![4, 5],
            },
            TensorError::IndexOutOfBounds {
                index: vec![9],
                shape: vec![3],
            },
            TensorError::InvalidMode { mode: 3, order: 3 },
            TensorError::NotSquare { rows: 2, cols: 3 },
            TensorError::Singular { solver: "cholesky" },
            TensorError::NonFinitePivot { solver: "lu_solve" },
            TensorError::NonFiniteValue {
                index: vec![1, 2],
                value: f64::NAN,
            },
            TensorError::DuplicateIndex { index: vec![0, 0] },
            TensorError::Diverged {
                restarts: 2,
                detail: "loss became NaN at iteration 3".into(),
            },
            TensorError::EmptyShape,
            TensorError::PlanOverflow {
                what: "nnz",
                value: u64::MAX,
            },
            TensorError::InvalidArgument("nope".into()),
            TensorError::ClusterFault {
                rank: Some(2),
                detail: "worker 2 crashed: boom".into(),
            },
        ];
        for v in variants {
            // Every variant must render something non-empty and not panic.
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::EmptyShape);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TensorError::EmptyShape, TensorError::EmptyShape);
        assert_ne!(
            TensorError::EmptyShape,
            TensorError::InvalidMode { mode: 0, order: 0 }
        );
    }
}

//! Cached mode-ordered MTTKRP execution plans (CSF-lite).
//!
//! The COO kernel in [`crate::mttkrp`] walks the nonzeros in lexicographic
//! order and scatters an `R`-vector into `out[idx[mode], :]` per entry —
//! for every mode except the first that is a random-access write stream
//! over the output. [`MttkrpPlan`] trades one preprocessing pass for a
//! compressed per-mode layout:
//!
//! * entries are permuted into **output-row order** for every mode
//!   (stable counting sort, so same-row entries keep their lexicographic
//!   order — accumulation order per row is unchanged);
//! * consecutive entries sharing an output row form a **run**; the kernel
//!   accumulates a register-resident `R`-vector across the run and writes
//!   each output row exactly once;
//! * the `order−1` factor-row indices of every entry are flattened into a
//!   contiguous `u32` column table, so the inner loop streams `vals`/`cols`
//!   linearly instead of re-deriving coordinates.
//!
//! The plan depends only on the sparsity pattern — not on factor values or
//! row counts — so one plan serves every iteration, mode, and factor
//! snapshot (including grown factor matrices with extra rows). The
//! distributed driver builds one plan per grid cell at partitioning time
//! and reuses it across a whole stream step; [`fingerprint`] gives the
//! content key used to carry plans across steps.

use crate::coo::SparseTensor;
use crate::error::{Result, TensorError};
use crate::matrix::Matrix;
use crate::pool::ThreadPool;
use std::sync::{Mutex, PoisonError};

/// Compressed execution layout for one mode: entries sorted by output row
/// with run boundaries.
#[derive(Debug, Clone, Default)]
struct ModePlan {
    /// Output row of each run (strictly increasing).
    rows: Vec<u32>,
    /// `run_ptr[i]..run_ptr[i+1]` is run `i`'s entry range in `vals`/`cols`.
    run_ptr: Vec<u32>,
    /// Entry values, permuted into output-row order.
    vals: Vec<f64>,
    /// Per entry, the `order−1` factor-row indices of the other modes in
    /// ascending mode order.
    cols: Vec<u32>,
}

/// Reusable all-modes MTTKRP plan for one sparse tensor.
#[derive(Debug, Clone)]
pub struct MttkrpPlan {
    shape: Vec<usize>,
    nnz: usize,
    modes: Vec<ModePlan>,
}

impl MttkrpPlan {
    /// Builds the per-mode layouts with one stable counting sort per mode.
    ///
    /// # Errors
    /// Returns [`TensorError::PlanOverflow`] when the tensor's nnz or any
    /// shape dimension exceeds the layout's `u32` index space — building
    /// would silently truncate coordinates through the `as u32` casts.
    /// Callers fall back to the COO kernel, which indexes with `usize`.
    pub fn build(tensor: &SparseTensor) -> Result<Self> {
        check_plan_bounds(tensor)?;
        let _span = dismastd_obs::span("kernel/plan_build");
        let order = tensor.order();
        let modes = (0..order).map(|m| build_mode(tensor, m)).collect();
        Ok(MttkrpPlan {
            shape: tensor.shape().to_vec(),
            nnz: tensor.nnz(),
            modes,
        })
    }

    /// Like [`build`](MttkrpPlan::build), with the per-mode counting sorts
    /// executed on `pool` (one chunk per mode).  Each mode's layout is a
    /// pure function of the tensor and lands in its own slot, so the
    /// result is identical to the serial build for every pool size.
    ///
    /// # Errors
    /// Same as [`build`](MttkrpPlan::build).
    pub fn build_with(tensor: &SparseTensor, pool: &ThreadPool) -> Result<Self> {
        check_plan_bounds(tensor)?;
        let _span = dismastd_obs::span("kernel/plan_build");
        let order = tensor.order();
        let slots: Vec<Mutex<ModePlan>> = (0..order)
            .map(|_| Mutex::new(ModePlan::default()))
            .collect();
        pool.run(order, &|m| {
            let built = build_mode(tensor, m);
            *slots[m].lock().unwrap_or_else(PoisonError::into_inner) = built;
        });
        let modes = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        Ok(MttkrpPlan {
            shape: tensor.shape().to_vec(),
            nnz: tensor.nnz(),
            modes,
        })
    }

    /// Shape of the tensor the plan was built from.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Nonzeros covered by the plan.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Heap bytes held by the layout tables (capacity accounting).
    pub fn layout_bytes(&self) -> usize {
        self.modes
            .iter()
            .map(|m| {
                m.rows.capacity() * 4
                    + m.run_ptr.capacity() * 4
                    + m.vals.capacity() * 8
                    + m.cols.capacity() * 4
            })
            .sum()
    }

    /// Computes the mode-`mode` MTTKRP into a fresh zeroed matrix of
    /// `factors[mode].rows()` rows.
    ///
    /// # Errors
    /// Returns a shape error if `factors` disagree with the plan.
    pub fn mttkrp(&self, factors: &[Matrix], mode: usize) -> Result<Matrix> {
        let r = self.check_factors(factors, mode)?;
        let mut out = Matrix::zeros(factors[mode].rows(), r);
        self.mttkrp_into(factors, mode, &mut out)?;
        Ok(out)
    }

    /// Accumulates the mode-`mode` MTTKRP into `out` (`out +=`), adding one
    /// run total per touched output row.
    ///
    /// On a zeroed `out` the result is bitwise identical to
    /// [`crate::mttkrp::mttkrp_into`]: the stable permutation preserves the
    /// per-row accumulation order and the factor product is formed in the
    /// same ascending mode order.
    ///
    /// # Errors
    /// Returns a shape error if `factors` or `out` disagree with the plan.
    pub fn mttkrp_into(&self, factors: &[Matrix], mode: usize, out: &mut Matrix) -> Result<()> {
        let r = self.check_factors(factors, mode)?;
        if out.shape() != (factors[mode].rows(), r) {
            return Err(TensorError::shape_mismatch(
                "MttkrpPlan::mttkrp_into output",
                &[factors[mode].rows(), r],
                &[out.rows(), out.cols()],
            ));
        }
        let _span = dismastd_obs::span_with("kernel/mttkrp_plan", mode as u64);
        let order = self.order();
        let km = order - 1;
        let mp = &self.modes[mode];
        accumulate_runs(mp, factors, mode, km, r, 0..mp.rows.len(), |row, acc| {
            let dst = out.row_mut(row);
            for (d, &a) in dst.iter_mut().zip(acc) {
                *d += a;
            }
        });
        Ok(())
    }

    /// Accumulates the mode-`mode` MTTKRP into `out` on `pool`, chunking
    /// the run list into entry-balanced ranges.
    ///
    /// Runs are row-disjoint by construction and chunks partition the run
    /// list, so each chunk owns its output rows outright and the per-row
    /// left-to-right accumulation order is untouched — the result is
    /// bitwise identical to [`mttkrp_into`](Self::mttkrp_into) for every
    /// pool size (a single-lane pool takes the serial path directly).
    ///
    /// # Errors
    /// Returns a shape error if `factors` or `out` disagree with the plan.
    pub fn mttkrp_into_pooled(
        &self,
        factors: &[Matrix],
        mode: usize,
        out: &mut Matrix,
        pool: &ThreadPool,
    ) -> Result<()> {
        let n_runs = self.modes.get(mode).map_or(0, |mp| mp.rows.len());
        if pool.threads() <= 1 || n_runs < 2 {
            return self.mttkrp_into(factors, mode, out);
        }
        let r = self.check_factors(factors, mode)?;
        if out.shape() != (factors[mode].rows(), r) {
            return Err(TensorError::shape_mismatch(
                "MttkrpPlan::mttkrp_into output",
                &[factors[mode].rows(), r],
                &[out.rows(), out.cols()],
            ));
        }
        let _span = dismastd_obs::span_with("kernel/mttkrp_plan", mode as u64);
        let order = self.order();
        let km = order - 1;
        let mp = &self.modes[mode];
        let n_chunks = (pool.threads() * CHUNKS_PER_THREAD).min(n_runs);
        let bounds = chunk_runs(mp, n_chunks);
        let stride = out.cols();
        let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
        pool.run(n_chunks, &|c| {
            let ptr = out_ptr;
            accumulate_runs(
                mp,
                factors,
                mode,
                km,
                r,
                bounds[c]..bounds[c + 1],
                |row, acc| {
                    // Safety: runs are row-disjoint and chunks partition the
                    // run list, so no two chunks touch the same output row;
                    // `row < out.rows()` is guaranteed by `check_factors`.
                    let dst = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(row * stride), r) };
                    for (d, &a) in dst.iter_mut().zip(acc) {
                        *d += a;
                    }
                },
            );
        });
        Ok(())
    }

    /// Validates `factors` against the plan, returning the rank.
    fn check_factors(&self, factors: &[Matrix], mode: usize) -> Result<usize> {
        if factors.len() != self.order() {
            return Err(TensorError::shape_mismatch(
                "MttkrpPlan factors",
                &[self.order()],
                &[factors.len()],
            ));
        }
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let r = factors[0].cols();
        for (k, f) in factors.iter().enumerate() {
            if f.cols() != r {
                return Err(TensorError::shape_mismatch(
                    "MttkrpPlan factor ranks",
                    &[r],
                    &[f.cols()],
                ));
            }
            if f.rows() < self.shape[k] {
                return Err(TensorError::shape_mismatch(
                    "MttkrpPlan factor rows",
                    &[self.shape[k]],
                    &[f.rows()],
                ));
            }
        }
        Ok(r)
    }
}

/// Chunks claimed per pool lane in [`MttkrpPlan::mttkrp_into_pooled`]:
/// more chunks than lanes so a skewed run distribution still balances via
/// work stealing, few enough that chunk overhead stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

/// Raw output pointer for the pooled kernel.  Chunks write disjoint rows
/// (runs are row-disjoint and chunks partition the run list), so sharing
/// the pointer across pool threads is race-free.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Rejects tensors whose layout tables would truncate through the `u32`
/// casts in [`build_mode`].  Must run before any per-mode allocation: an
/// oversized dimension would otherwise attempt a multi-gigabyte counting
/// buffer before the first cast even executes.
fn check_plan_bounds(tensor: &SparseTensor) -> Result<()> {
    if tensor.nnz() as u64 > u64::from(u32::MAX) {
        return Err(TensorError::PlanOverflow {
            what: "nnz",
            value: tensor.nnz() as u64,
        });
    }
    for &s in tensor.shape() {
        if s as u64 > u64::from(u32::MAX) {
            return Err(TensorError::PlanOverflow {
                what: "shape dimension",
                value: s as u64,
            });
        }
    }
    Ok(())
}

/// Runs the per-run accumulation loop over `runs`, handing each finished
/// `R`-vector to `write` with its output row.
///
/// This is the single arithmetic body shared by the serial and pooled
/// kernels: per-entry work is fused into one pass over the R lanes and
/// the factor product is formed left-to-right in ascending mode order, so
/// every partial is bit-identical to the COO kernel's multi-pass version
/// no matter which execution path (or chunk) drives the loop.
fn accumulate_runs(
    mp: &ModePlan,
    factors: &[Matrix],
    mode: usize,
    km: usize,
    r: usize,
    runs: std::ops::Range<usize>,
    mut write: impl FnMut(usize, &[f64]),
) {
    // Off-mode factor `j` in ascending mode order, skipping `mode` —
    // indexed directly so callers need not collect a filtered borrow list.
    let off = |j: usize| &factors[j + usize::from(j >= mode)];
    // Bounded per-call scratch (R lanes + N-1 row borrows), reused across
    // every run this call handles.
    // lint:allow(alloc_hygiene): one bounded scratch pair per kernel call, amortised over all runs
    let mut acc = vec![0.0f64; r];
    // lint:allow(alloc_hygiene): one bounded scratch pair per kernel call, amortised over all runs
    let mut rows_scratch: Vec<&[f64]> = Vec::with_capacity(km);
    for run in runs {
        let lo = mp.run_ptr[run] as usize;
        let hi = mp.run_ptr[run + 1] as usize;
        acc.fill(0.0);
        match km {
            1 => {
                let f0 = off(0);
                for e in lo..hi {
                    let v = mp.vals[e];
                    let a = f0.row(mp.cols[e] as usize);
                    for (s, &av) in acc.iter_mut().zip(a) {
                        *s += v * av;
                    }
                }
            }
            2 => {
                let (f0, f1) = (off(0), off(1));
                for e in lo..hi {
                    let v = mp.vals[e];
                    let a = f0.row(mp.cols[2 * e] as usize);
                    let b = f1.row(mp.cols[2 * e + 1] as usize);
                    for ((s, &av), &bv) in acc.iter_mut().zip(a).zip(b) {
                        *s += v * av * bv;
                    }
                }
            }
            3 => {
                let (f0, f1, f2) = (off(0), off(1), off(2));
                for e in lo..hi {
                    let v = mp.vals[e];
                    let a = f0.row(mp.cols[3 * e] as usize);
                    let b = f1.row(mp.cols[3 * e + 1] as usize);
                    let c = f2.row(mp.cols[3 * e + 2] as usize);
                    for (((s, &av), &bv), &cv) in acc.iter_mut().zip(a).zip(b).zip(c) {
                        *s += v * av * bv * cv;
                    }
                }
            }
            _ => {
                for e in lo..hi {
                    let v = mp.vals[e];
                    rows_scratch.clear();
                    for (j, &col) in mp.cols[e * km..e * km + km].iter().enumerate() {
                        rows_scratch.push(off(j).row(col as usize));
                    }
                    for (c, s) in acc.iter_mut().enumerate() {
                        let mut p = v;
                        for row in &rows_scratch {
                            p *= row[c];
                        }
                        *s += p;
                    }
                }
            }
        }
        write(mp.rows[run] as usize, &acc);
    }
}

/// Entry-balanced chunk boundaries over the run list: boundary `c` lands
/// at the first run whose end passes entry `c·nnz/n_chunks`, so a few
/// heavy runs do not pile into one chunk.  Purely a function of the
/// layout — the same boundaries for every pool size and execution order.
fn chunk_runs(mp: &ModePlan, n_chunks: usize) -> Vec<usize> {
    let n_runs = mp.rows.len();
    let total = u64::from(mp.run_ptr[n_runs]);
    // lint:allow(alloc_hygiene): O(chunks) boundary table, one per pooled call
    let mut bounds = Vec::with_capacity(n_chunks + 1);
    bounds.push(0usize);
    for c in 1..n_chunks {
        let target = (total * c as u64 / n_chunks as u64) as u32;
        let pos = mp.run_ptr[1..=n_runs].partition_point(|&p| p <= target);
        let prev = bounds[c - 1];
        bounds.push(pos.max(prev).min(n_runs));
    }
    bounds.push(n_runs);
    bounds
}

/// Stable counting sort of the entries by their mode-`mode` coordinate,
/// flattened into the run/column tables.
fn build_mode(tensor: &SparseTensor, mode: usize) -> ModePlan {
    let order = tensor.order();
    let km = order - 1;
    let nnz = tensor.nnz();
    let n_rows = tensor.shape()[mode];

    let mut counts = vec![0u32; n_rows];
    for e in 0..nnz {
        counts[tensor.index(e)[mode]] += 1;
    }
    // Exclusive prefix sum → scatter offsets.
    let mut offsets = vec![0u32; n_rows + 1];
    for i in 0..n_rows {
        offsets[i + 1] = offsets[i] + counts[i];
    }
    let mut cursor = offsets[..n_rows].to_vec();
    let mut vals = vec![0.0f64; nnz];
    let mut cols = vec![0u32; nnz * km];
    for e in 0..nnz {
        let idx = tensor.index(e);
        let pos = cursor[idx[mode]] as usize;
        cursor[idx[mode]] += 1;
        vals[pos] = tensor.value(e);
        let mut c = pos * km;
        for (k, &i) in idx.iter().enumerate() {
            if k == mode {
                continue;
            }
            cols[c] = i as u32;
            c += 1;
        }
    }
    // Compress non-empty rows into runs.
    let populated = counts.iter().filter(|&&c| c > 0).count();
    let mut rows = Vec::with_capacity(populated);
    let mut run_ptr = Vec::with_capacity(populated + 1);
    run_ptr.push(0);
    for (row, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        rows.push(row as u32);
        run_ptr.push(offsets[row + 1]);
    }
    ModePlan {
        rows,
        run_ptr,
        vals,
        cols,
    }
}

/// Content fingerprint of a sparse tensor (FNV-1a over shape, indices, and
/// value bits).  Two tensors with equal fingerprints are treated as
/// identical by the distributed plan cache, so an unchanged grid cell
/// reuses its plan across stream steps.
pub fn fingerprint(tensor: &SparseTensor) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        // FNV-1a over the 8 bytes of x.
        for shift in (0..64).step_by(8) {
            h ^= (x >> shift) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(tensor.order() as u64);
    for &s in tensor.shape() {
        mix(s as u64);
    }
    for &i in tensor.indices_flat() {
        mix(i as u64);
    }
    for &v in tensor.values() {
        mix(v.to_bits());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::SparseTensorBuilder;
    use crate::mttkrp::{mttkrp, mttkrp_into};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: &[usize], nnz: usize, rng: &mut impl Rng) -> SparseTensor {
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_naive_bitwise_all_modes() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let shape = [6, 5, 4];
        let t = random_tensor(&shape, 60, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect();
        let plan = MttkrpPlan::build(&t).unwrap();
        for mode in 0..3 {
            let naive = mttkrp(&t, &factors, mode).unwrap();
            let fast = plan.mttkrp(&factors, mode).unwrap();
            assert_eq!(
                fast.max_abs_diff(&naive).unwrap(),
                0.0,
                "mode {mode} not bitwise identical"
            );
        }
    }

    #[test]
    fn accumulates_like_naive_on_zeroed_buffers() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let shape = [5, 4, 3, 2];
        let t = random_tensor(&shape, 40, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 2, &mut rng))
            .collect();
        let plan = MttkrpPlan::build(&t).unwrap();
        for mode in 0..4 {
            let mut a = Matrix::zeros(shape[mode], 2);
            let mut b = Matrix::zeros(shape[mode], 2);
            mttkrp_into(&t, &factors, mode, &mut a).unwrap();
            plan.mttkrp_into(&factors, mode, &mut b).unwrap();
            assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0, "mode {mode}");
        }
    }

    #[test]
    fn oversized_factors_use_global_rows() {
        // Plans outlive snapshot growth: the same plan works after the
        // factors gain rows (global row space), exactly like the COO kernel.
        let mut b = SparseTensorBuilder::new(vec![2, 2]);
        b.push(&[1, 1], 2.0).unwrap();
        let t = b.build().unwrap();
        let plan = MttkrpPlan::build(&t).unwrap();
        let factors = vec![
            Matrix::random(4, 2, &mut ChaCha8Rng::seed_from_u64(1)),
            Matrix::random(5, 2, &mut ChaCha8Rng::seed_from_u64(2)),
        ];
        let fast = plan.mttkrp(&factors, 0).unwrap();
        let naive = mttkrp(&t, &factors, 0).unwrap();
        assert_eq!(fast.rows(), 4);
        assert_eq!(fast.max_abs_diff(&naive).unwrap(), 0.0);
    }

    #[test]
    fn empty_tensor_plan_is_a_noop() {
        let t = SparseTensor::empty(vec![3, 4]).unwrap();
        let plan = MttkrpPlan::build(&t).unwrap();
        assert_eq!(plan.nnz(), 0);
        let factors = vec![Matrix::zeros(3, 2), Matrix::zeros(4, 2)];
        let out = plan.mttkrp(&factors, 1).unwrap();
        assert_eq!(out.frob_norm_sq(), 0.0);
    }

    #[test]
    fn validation_errors() {
        let t = SparseTensor::empty(vec![3, 3]).unwrap();
        let plan = MttkrpPlan::build(&t).unwrap();
        let good = vec![Matrix::zeros(3, 2), Matrix::zeros(3, 2)];
        assert!(plan.mttkrp(&good, 2).is_err()); // bad mode
        let short = vec![Matrix::zeros(2, 2), Matrix::zeros(3, 2)];
        assert!(plan.mttkrp(&short, 0).is_err()); // too few rows
        let ragged = vec![Matrix::zeros(3, 2), Matrix::zeros(3, 3)];
        assert!(plan.mttkrp(&ragged, 0).is_err()); // rank mismatch
        assert!(plan.mttkrp(&good[..1], 0).is_err()); // wrong count
        let mut bad_out = Matrix::zeros(2, 2);
        assert!(plan.mttkrp_into(&good, 0, &mut bad_out).is_err());
    }

    #[test]
    fn fingerprint_separates_contents() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = random_tensor(&[4, 4, 4], 20, &mut rng);
        let b = random_tensor(&[4, 4, 4], 20, &mut rng);
        assert_eq!(fingerprint(&a), fingerprint(&a));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // Same pattern, one value changed.
        let mut builder = SparseTensorBuilder::new(a.shape().to_vec());
        for (e, (idx, v)) in a.iter().enumerate() {
            builder.push(idx, if e == 0 { v + 1.0 } else { v }).unwrap();
        }
        let c = builder.build().unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // Shape participates even with equal nonzeros.
        let empty33 = SparseTensor::empty(vec![3, 3]).unwrap();
        let empty34 = SparseTensor::empty(vec![3, 4]).unwrap();
        assert_ne!(fingerprint(&empty33), fingerprint(&empty34));
    }

    #[test]
    fn plan_build_rejects_u32_overflow_shapes() {
        // Shape-only mock: `empty` allocates nothing per dimension, so the
        // guard is exercised without materialising 4B real entries.  The
        // check must fire before any per-mode work — `build_mode` would
        // otherwise attempt a 16 GiB counting buffer for this dimension.
        let huge = u32::MAX as usize + 1;
        let t = SparseTensor::empty(vec![huge, 2, 2]).unwrap();
        match MttkrpPlan::build(&t) {
            Err(TensorError::PlanOverflow { what, value }) => {
                assert_eq!(what, "shape dimension");
                assert_eq!(value, huge as u64);
            }
            other => panic!("expected PlanOverflow, got {other:?}"),
        }
        // The pooled build takes the same guard.
        let pool = ThreadPool::new(2);
        assert!(matches!(
            MttkrpPlan::build_with(&t, &pool),
            Err(TensorError::PlanOverflow { .. })
        ));
    }

    #[test]
    fn pooled_mttkrp_matches_serial_on_a_larger_tensor() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let shape = [40, 30, 20];
        let t = random_tensor(&shape, 2000, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 5, &mut rng))
            .collect();
        let plan = MttkrpPlan::build(&t).unwrap();
        for mode in 0..3 {
            let mut serial = Matrix::zeros(shape[mode], 5);
            plan.mttkrp_into(&factors, mode, &mut serial).unwrap();
            for threads in [2usize, 4] {
                let pool = ThreadPool::new(threads);
                let mut out = Matrix::zeros(shape[mode], 5);
                plan.mttkrp_into_pooled(&factors, mode, &mut out, &pool)
                    .unwrap();
                assert_eq!(
                    out.max_abs_diff(&serial).unwrap(),
                    0.0,
                    "mode {mode} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn layout_bytes_reports_heap_use() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let t = random_tensor(&[6, 6, 6], 50, &mut rng);
        let plan = MttkrpPlan::build(&t).unwrap();
        // 3 modes × (vals 8B + cols 2×4B) per entry is the floor.
        assert!(plan.layout_bytes() >= t.nnz() * 3 * 16);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::SparseTensorBuilder;
    use crate::mttkrp::mttkrp;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::ops::Range;

    /// Random MTTKRP problem: shape of order 3–5, entries, per-mode extra
    /// factor rows (grown snapshot), a target mode, and a factor seed.
    type Problem = (Vec<usize>, Vec<(Vec<usize>, f64)>, Vec<usize>, usize, u64);

    fn problem_strategy() -> impl Strategy<Value = Problem> {
        prop::collection::vec(1usize..5, 3..6).prop_flat_map(|shape| {
            let order = shape.len();
            let idx: Vec<Range<usize>> = shape.iter().map(|&s| 0..s).collect();
            (
                Just(shape),
                prop::collection::vec((idx, -2.0f64..2.0), 0..30),
                prop::collection::vec(0usize..3, order..order + 1),
                0usize..order,
                0u64..10_000,
            )
        })
    }

    fn build_problem(
        shape: &[usize],
        entries: &[(Vec<usize>, f64)],
        extra: &[usize],
        rank: usize,
        seed: u64,
    ) -> (SparseTensor, Vec<Matrix>) {
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for (idx, v) in entries {
            b.push(idx, *v).unwrap();
        }
        let t = b.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let factors: Vec<Matrix> = shape
            .iter()
            .zip(extra)
            .map(|(&s, &e)| Matrix::random(s + e, rank, &mut rng))
            .collect();
        (t, factors)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The layout kernel is bitwise identical to the COO kernel for
        /// random tensors of orders 3–5, any mode, and oversized factors.
        #[test]
        fn layout_matches_naive_exactly(
            (shape, entries, extra, mode, seed) in problem_strategy()
        ) {
            let (t, factors) = build_problem(&shape, &entries, &extra, 2, seed);
            let plan = MttkrpPlan::build(&t).unwrap();
            let naive = mttkrp(&t, &factors, mode).unwrap();
            let fast = plan.mttkrp(&factors, mode).unwrap();
            prop_assert_eq!(fast.max_abs_diff(&naive).unwrap(), 0.0);
        }

        /// Pooled execution and the pooled build are bitwise identical to
        /// the serial kernel for every tested pool size, over random
        /// order-3..5 tensors, any mode, and oversized factors.
        #[test]
        fn pooled_matches_serial_for_every_thread_count(
            (shape, entries, extra, mode, seed) in problem_strategy()
        ) {
            let (t, factors) = build_problem(&shape, &entries, &extra, 2, seed);
            let plan = MttkrpPlan::build(&t).unwrap();
            let mut serial = Matrix::zeros(factors[mode].rows(), 2);
            plan.mttkrp_into(&factors, mode, &mut serial).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let pool = crate::pool::ThreadPool::new(threads);
                let par = MttkrpPlan::build_with(&t, &pool).unwrap();
                let mut out = Matrix::zeros(factors[mode].rows(), 2);
                par.mttkrp_into_pooled(&factors, mode, &mut out, &pool).unwrap();
                prop_assert_eq!(
                    out.max_abs_diff(&serial).unwrap(),
                    0.0,
                    "threads={}",
                    threads
                );
            }
        }

        /// A plan built before a snapshot grow stays exact when reused with
        /// the grown factor matrices (more global rows, same nonzeros).
        #[test]
        fn plan_reuse_after_grow_stays_exact(
            (shape, entries, extra, mode, seed) in problem_strategy()
        ) {
            let (t, factors) = build_problem(&shape, &entries, &extra, 3, seed);
            let plan = MttkrpPlan::build(&t).unwrap();
            // First use, pre-grow.
            let before = plan.mttkrp(&factors, mode).unwrap();
            prop_assert_eq!(
                before.max_abs_diff(&mttkrp(&t, &factors, mode).unwrap()).unwrap(),
                0.0
            );
            // Snapshot grows: every factor gains rows; the cell (and its
            // plan) is unchanged.
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead_beef);
            let grown: Vec<Matrix> = factors
                .iter()
                .map(|f| f.vstack(&Matrix::random(2, f.cols(), &mut rng)).unwrap())
                .collect();
            let naive = mttkrp(&t, &grown, mode).unwrap();
            let fast = plan.mttkrp(&grown, mode).unwrap();
            prop_assert_eq!(fast.max_abs_diff(&naive).unwrap(), 0.0);
            prop_assert_eq!(fast.rows(), factors[mode].rows() + 2);
        }
    }
}

//! Sparse tensors in coordinate (COO) format, for arbitrary order.
//!
//! DisMASTD stores `X \ X̃` as "all the non-zero elements with the coordinate
//! format" (Theorem 3's proof); this module is that representation.  Indices
//! are kept in one flat `Vec<usize>` with stride `order`, so iterating the
//! nonzeros touches two contiguous arrays — the access pattern MTTKRP needs.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// An `N`-th order sparse tensor in coordinate format.
///
/// Invariants (enforced by [`SparseTensorBuilder::build`]):
/// * every index tuple is within `shape`;
/// * entries are sorted lexicographically by index tuple;
/// * index tuples are unique (duplicates are summed at build time);
/// * no stored value is exactly `0.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseTensor {
    shape: Vec<usize>,
    /// Flattened index tuples, `nnz * order` long.
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Creates an empty tensor of the given shape.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyShape`] for a zero-order shape.
    pub fn empty(shape: Vec<usize>) -> Result<Self> {
        if shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        Ok(SparseTensor {
            shape,
            indices: Vec::new(),
            values: Vec::new(),
        })
    }

    /// Tensor order `N` (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Dimension sizes per mode.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of stored non-zero elements.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `true` when the tensor stores no nonzeros.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The index tuple of the `e`-th stored entry.
    #[allow(clippy::should_implement_trait)] // COO entry lookup, not ops::Index
    #[inline]
    pub fn index(&self, e: usize) -> &[usize] {
        let n = self.order();
        &self.indices[e * n..(e + 1) * n]
    }

    /// The value of the `e`-th stored entry.
    #[inline]
    pub fn value(&self, e: usize) -> f64 {
        self.values[e]
    }

    /// Iterates `(index_tuple, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        let n = self.order();
        self.indices
            .chunks_exact(n)
            .zip(self.values.iter().copied())
    }

    /// Raw flattened index buffer (stride = `order`).
    #[inline]
    pub fn indices_flat(&self) -> &[usize] {
        &self.indices
    }

    /// Raw value buffer.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Looks up the value at `idx`, returning `0.0` for structural zeros.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] if `idx` exceeds the shape.
    pub fn get(&self, idx: &[usize]) -> Result<f64> {
        self.check_index(idx)?;
        let n = self.order();
        let found = binary_search_tuples(&self.indices, n, idx);
        Ok(match found {
            Ok(e) => self.values[e],
            Err(_) => 0.0,
        })
    }

    /// Squared Frobenius norm — sum of squares of the stored values.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Histogram of nonzeros per slice along `mode`
    /// (`a_i^(n) = nnz(X[.., i, ..])` in Algorithms 2-3).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidMode`] for an out-of-range mode.
    pub fn slice_nnz(&self, mode: usize) -> Result<Vec<u64>> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let mut hist = vec![0u64; self.shape[mode]];
        let n = self.order();
        for tuple in self.indices.chunks_exact(n) {
            hist[tuple[mode]] += 1;
        }
        Ok(hist)
    }

    /// Block signature of an index tuple relative to an old bounding box:
    /// bit `k` is set iff `idx[k] >= old_shape[k]` (the `(s_1,…,s_N)` tuple of
    /// the paper's sub-tensor division, packed as a bitmask).
    pub fn block_of(idx: &[usize], old_shape: &[usize]) -> usize {
        idx.iter()
            .zip(old_shape)
            .enumerate()
            .fold(
                0usize,
                |acc, (k, (&i, &old))| {
                    if i >= old {
                        acc | (1 << k)
                    } else {
                        acc
                    }
                },
            )
    }

    /// Splits this tensor into `(inside, complement)` relative to an old
    /// snapshot's shape: `inside = X^{0…0}` (all indices within `old_shape`)
    /// and `complement = X \ X̃` (everything else).
    ///
    /// # Errors
    /// Returns an error if `old_shape` has a different order or exceeds the
    /// current shape in any mode.
    pub fn split_at(&self, old_shape: &[usize]) -> Result<(SparseTensor, SparseTensor)> {
        if old_shape.len() != self.order() {
            return Err(TensorError::ShapeMismatch {
                op: "split_at",
                left: self.shape.clone(),
                right: old_shape.to_vec(),
            });
        }
        if old_shape.iter().zip(&self.shape).any(|(o, s)| o > s) {
            return Err(TensorError::InvalidArgument(format!(
                "old shape {old_shape:?} exceeds current shape {:?}",
                self.shape
            )));
        }
        let n = self.order();
        let mut inside = SparseTensor::empty(old_shape.to_vec())?;
        let mut outside = SparseTensor::empty(self.shape.clone())?;
        for (tuple, v) in self.iter() {
            if Self::block_of(tuple, old_shape) == 0 {
                inside.indices.extend_from_slice(tuple);
                inside.values.push(v);
            } else {
                outside.indices.extend_from_slice(tuple);
                outside.values.push(v);
            }
        }
        let _ = n;
        Ok((inside, outside))
    }

    /// Returns the sub-tensor of entries whose every index is `< bounds[k]`,
    /// reshaped to `bounds` — i.e. the old snapshot `X̃ = X^{0,…,0}`.
    pub fn restrict(&self, bounds: &[usize]) -> Result<SparseTensor> {
        Ok(self.split_at(bounds)?.0)
    }

    /// Relative complement `X \ X̃` for a previous snapshot shape.
    pub fn complement(&self, old_shape: &[usize]) -> Result<SparseTensor> {
        Ok(self.split_at(old_shape)?.1)
    }

    /// Decomposes the tensor into the `2^N` sub-tensors of the paper's
    /// Fig. 2: each entry is classified by its block signature
    /// `(s_1,…,s_N)` (bit `k` set iff `idx[k] >= old_shape[k]`), packed as
    /// a bitmask.  Returns one `(signature, sub-tensor)` pair per
    /// **non-empty** block, in ascending signature order; every sub-tensor
    /// keeps this tensor's shape and global coordinates.
    ///
    /// Block `0` is the old snapshot `X^{0…0}`; the rest union to the
    /// relative complement `X \ X̃`.
    ///
    /// # Errors
    /// Returns an error if `old_shape` has the wrong order, exceeds the
    /// current shape, or the order exceeds the bitmask width.
    pub fn split_blocks(&self, old_shape: &[usize]) -> Result<Vec<(usize, SparseTensor)>> {
        if old_shape.len() != self.order() {
            return Err(TensorError::ShapeMismatch {
                op: "split_blocks",
                left: self.shape.clone(),
                right: old_shape.to_vec(),
            });
        }
        if old_shape.iter().zip(&self.shape).any(|(o, s)| o > s) {
            return Err(TensorError::InvalidArgument(format!(
                "old shape {old_shape:?} exceeds current shape {:?}",
                self.shape
            )));
        }
        if self.order() >= usize::BITS as usize {
            return Err(TensorError::InvalidArgument(
                "tensor order exceeds block-signature width".into(),
            ));
        }
        let mut blocks: std::collections::BTreeMap<usize, SparseTensor> =
            std::collections::BTreeMap::new();
        for (tuple, v) in self.iter() {
            let sig = Self::block_of(tuple, old_shape);
            let entry = blocks.entry(sig).or_insert_with(|| SparseTensor {
                shape: self.shape.clone(),
                indices: Vec::new(),
                values: Vec::new(),
            });
            entry.indices.extend_from_slice(tuple);
            entry.values.push(v);
        }
        Ok(blocks.into_iter().collect())
    }

    /// Sum of all values (useful for sanity checks and tests).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    fn check_index(&self, idx: &[usize]) -> Result<()> {
        if idx.len() != self.order() || idx.iter().zip(&self.shape).any(|(i, s)| i >= s) {
            return Err(TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                shape: self.shape.clone(),
            });
        }
        Ok(())
    }
}

/// How [`SparseTensorBuilder`] treats suspect entries (non-finite values,
/// out-of-bounds indices, duplicate coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ValidationMode {
    /// Reject with a typed error naming the offending coordinate.
    Strict,
    /// Silently drop the offending entry and count it (first write wins for
    /// duplicates).
    Quarantine,
    /// Legacy semantics: non-finite values are stored as-is and duplicates
    /// are merged by summation.  Out-of-bounds indices still error — they
    /// violate the shape contract, not just data hygiene.
    #[default]
    Off,
}

/// Tally of entries dropped under [`ValidationMode::Quarantine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QuarantineCounts {
    /// NaN/Inf values dropped.
    pub non_finite: u64,
    /// Out-of-bounds indices dropped.
    pub out_of_bounds: u64,
    /// Duplicate coordinates dropped (first write wins).
    pub duplicates: u64,
}

impl QuarantineCounts {
    /// Total entries quarantined.
    pub fn total(&self) -> u64 {
        self.non_finite + self.out_of_bounds + self.duplicates
    }
}

/// Binary search over flattened index tuples, comparing lexicographically.
fn binary_search_tuples(
    flat: &[usize],
    stride: usize,
    needle: &[usize],
) -> std::result::Result<usize, usize> {
    let len = flat.len() / stride.max(1);
    let mut lo = 0usize;
    let mut hi = len;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let tuple = &flat[mid * stride..(mid + 1) * stride];
        match tuple.cmp(needle) {
            Ordering::Less => lo = mid + 1,
            Ordering::Greater => hi = mid,
            Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Incremental constructor for [`SparseTensor`].
///
/// Accepts entries in any order; `build` sorts, merges duplicates (by
/// summation, the usual COO semantics) and drops entries that cancel to zero.
///
/// ```
/// use dismastd_tensor::SparseTensorBuilder;
/// let mut b = SparseTensorBuilder::new(vec![4, 4, 4]);
/// b.push(&[3, 0, 1], 2.5).unwrap();
/// b.push(&[0, 1, 2], 1.0).unwrap();
/// b.push(&[3, 0, 1], 0.5).unwrap(); // merges with the first entry
/// let t = b.build().unwrap();
/// assert_eq!(t.nnz(), 2);
/// assert_eq!(t.get(&[3, 0, 1]).unwrap(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SparseTensorBuilder {
    shape: Vec<usize>,
    entries: Vec<(Vec<usize>, f64)>,
    mode: ValidationMode,
    counts: QuarantineCounts,
}

impl SparseTensorBuilder {
    /// Starts a builder for the given shape.
    pub fn new(shape: Vec<usize>) -> Self {
        SparseTensorBuilder {
            shape,
            entries: Vec::new(),
            mode: ValidationMode::Off,
            counts: QuarantineCounts::default(),
        }
    }

    /// Pre-allocates space for `n` entries.
    pub fn with_capacity(shape: Vec<usize>, n: usize) -> Self {
        SparseTensorBuilder {
            shape,
            entries: Vec::with_capacity(n),
            mode: ValidationMode::Off,
            counts: QuarantineCounts::default(),
        }
    }

    /// Selects how suspect entries are treated (default:
    /// [`ValidationMode::Off`], the legacy merge-by-sum semantics).
    #[must_use]
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Queues one entry.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] for indices outside the
    /// shape (quarantined instead under [`ValidationMode::Quarantine`]), and
    /// [`TensorError::NonFiniteValue`] for a NaN/Inf value under
    /// [`ValidationMode::Strict`].
    pub fn push(&mut self, idx: &[usize], value: f64) -> Result<&mut Self> {
        if idx.len() != self.shape.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                shape: self.shape.clone(),
            });
        }
        if idx.iter().zip(&self.shape).any(|(i, s)| i >= s) {
            if self.mode == ValidationMode::Quarantine {
                self.counts.out_of_bounds += 1;
                return Ok(self);
            }
            return Err(TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                shape: self.shape.clone(),
            });
        }
        if !value.is_finite() {
            match self.mode {
                ValidationMode::Strict => {
                    return Err(TensorError::NonFiniteValue {
                        index: idx.to_vec(),
                        value,
                    });
                }
                ValidationMode::Quarantine => {
                    self.counts.non_finite += 1;
                    return Ok(self);
                }
                ValidationMode::Off => {}
            }
        }
        self.entries.push((idx.to_vec(), value));
        Ok(self)
    }

    /// Number of queued (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalises the tensor: sorts, resolves duplicates per the validation
    /// mode, drops zeros.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyShape`] for a zero-order shape, and
    /// [`TensorError::DuplicateIndex`] for a duplicated coordinate under
    /// [`ValidationMode::Strict`].
    pub fn build(self) -> Result<SparseTensor> {
        self.build_with_report().map(|(t, _)| t)
    }

    /// Like [`SparseTensorBuilder::build`], additionally returning the tally
    /// of entries quarantined during `push` and duplicate resolution.
    ///
    /// # Errors
    /// Same conditions as [`SparseTensorBuilder::build`].
    pub fn build_with_report(mut self) -> Result<(SparseTensor, QuarantineCounts)> {
        if self.shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        self.entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let order = self.shape.len();
        let mode = self.mode;
        let mut counts = self.counts;
        let mut indices = Vec::with_capacity(self.entries.len() * order);
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<&[usize]> = None;
        for (idx, v) in &self.entries {
            if last == Some(idx.as_slice()) {
                match mode {
                    ValidationMode::Strict => {
                        return Err(TensorError::DuplicateIndex { index: idx.clone() });
                    }
                    ValidationMode::Quarantine => {
                        // First write wins; later duplicates are quarantined.
                        counts.duplicates += 1;
                    }
                    ValidationMode::Off => {
                        // Legacy COO semantics: merge by summation.
                        if let Some(acc) = values.last_mut() {
                            *acc += v;
                        }
                    }
                }
            } else {
                indices.extend_from_slice(idx);
                values.push(*v);
                last = Some(idx.as_slice());
            }
        }
        // Compact out exact zeros (cancellation or explicit zero pushes).
        let mut out_indices = Vec::with_capacity(indices.len());
        let mut out_values = Vec::with_capacity(values.len());
        for (e, &v) in values.iter().enumerate() {
            if v != 0.0 {
                out_indices.extend_from_slice(&indices[e * order..(e + 1) * order]);
                out_values.push(v);
            }
        }
        Ok((
            SparseTensor {
                shape: self.shape,
                indices: out_indices,
                values: out_values,
            },
            counts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseTensor {
        let mut b = SparseTensorBuilder::new(vec![2, 3, 4]);
        b.push(&[0, 0, 0], 1.0).unwrap();
        b.push(&[1, 2, 3], 2.0).unwrap();
        b.push(&[0, 1, 2], -3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_sorts_and_stores() {
        let t = small();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.index(0), &[0, 0, 0]);
        assert_eq!(t.index(1), &[0, 1, 2]);
        assert_eq!(t.index(2), &[1, 2, 3]);
        assert_eq!(t.value(1), -3.0);
    }

    #[test]
    fn builder_merges_duplicates_and_drops_zero() {
        let mut b = SparseTensorBuilder::new(vec![2, 2]);
        b.push(&[0, 0], 1.5).unwrap();
        b.push(&[0, 0], 0.5).unwrap();
        b.push(&[1, 1], 2.0).unwrap();
        b.push(&[1, 1], -2.0).unwrap(); // cancels out
        b.push(&[0, 1], 0.0).unwrap(); // explicit zero dropped
        let t = b.build().unwrap();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.get(&[0, 0]).unwrap(), 2.0);
        assert_eq!(t.get(&[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn builder_rejects_out_of_bounds() {
        let mut b = SparseTensorBuilder::new(vec![2, 2]);
        assert!(b.push(&[2, 0], 1.0).is_err());
        assert!(b.push(&[0], 1.0).is_err());
    }

    #[test]
    fn strict_mode_rejects_non_finite_and_duplicates() {
        let mut b = SparseTensorBuilder::new(vec![2, 2]).with_validation(ValidationMode::Strict);
        let err = b.push(&[0, 1], f64::NAN).unwrap_err();
        assert!(
            matches!(err, TensorError::NonFiniteValue { ref index, .. } if index == &vec![0, 1])
        );
        assert!(b.push(&[1, 0], f64::INFINITY).is_err());

        let mut b = SparseTensorBuilder::new(vec![2, 2]).with_validation(ValidationMode::Strict);
        b.push(&[0, 0], 1.0).unwrap();
        b.push(&[0, 0], 2.0).unwrap();
        assert!(matches!(
            b.build(),
            Err(TensorError::DuplicateIndex { ref index }) if index == &vec![0, 0]
        ));
    }

    #[test]
    fn quarantine_mode_drops_and_counts() {
        let mut b =
            SparseTensorBuilder::new(vec![2, 2]).with_validation(ValidationMode::Quarantine);
        b.push(&[0, 0], 1.0).unwrap();
        b.push(&[0, 1], f64::NAN).unwrap(); // dropped
        b.push(&[5, 0], 3.0).unwrap(); // out of bounds, dropped
        b.push(&[0, 0], 9.0).unwrap(); // duplicate, first write wins
        b.push(&[1, 1], 4.0).unwrap();
        let (t, counts) = b.build_with_report().unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[1, 1]).unwrap(), 4.0);
        assert_eq!(counts.non_finite, 1);
        assert_eq!(counts.out_of_bounds, 1);
        assert_eq!(counts.duplicates, 1);
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn quarantine_still_rejects_wrong_arity() {
        let mut b =
            SparseTensorBuilder::new(vec![2, 2]).with_validation(ValidationMode::Quarantine);
        assert!(b.push(&[0], 1.0).is_err());
    }

    #[test]
    fn off_mode_keeps_legacy_semantics() {
        let mut b = SparseTensorBuilder::new(vec![2, 2]);
        b.push(&[0, 0], 1.0).unwrap();
        b.push(&[0, 0], 2.0).unwrap(); // merged by summation
        b.push(&[1, 1], f64::NAN).unwrap(); // stored as-is
        let (t, counts) = b.build_with_report().unwrap();
        assert_eq!(t.get(&[0, 0]).unwrap(), 3.0);
        assert!(t.get(&[1, 1]).unwrap().is_nan());
        assert_eq!(counts.total(), 0);
    }

    #[test]
    fn empty_shape_rejected() {
        assert!(SparseTensor::empty(vec![]).is_err());
        assert!(SparseTensorBuilder::new(vec![]).build().is_err());
    }

    #[test]
    fn get_structural_zero_and_oob() {
        let t = small();
        assert_eq!(t.get(&[1, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 2.0);
        assert!(t.get(&[2, 0, 0]).is_err());
    }

    #[test]
    fn slice_nnz_histograms() {
        let t = small();
        assert_eq!(t.slice_nnz(0).unwrap(), vec![2, 1]);
        assert_eq!(t.slice_nnz(1).unwrap(), vec![1, 1, 1]);
        assert_eq!(t.slice_nnz(2).unwrap(), vec![1, 0, 1, 1]);
        assert!(t.slice_nnz(3).is_err());
    }

    #[test]
    fn norm_and_sums() {
        let t = small();
        assert_eq!(t.norm_sq(), 1.0 + 4.0 + 9.0);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn block_signature() {
        let old = [2, 2, 2];
        assert_eq!(SparseTensor::block_of(&[0, 1, 0], &old), 0b000);
        assert_eq!(SparseTensor::block_of(&[2, 1, 0], &old), 0b001);
        assert_eq!(SparseTensor::block_of(&[0, 3, 0], &old), 0b010);
        assert_eq!(SparseTensor::block_of(&[2, 3, 5], &old), 0b111);
    }

    #[test]
    fn split_at_partitions_entries() {
        let t = small(); // shape [2,3,4]
        let (inside, outside) = t.split_at(&[1, 2, 3]).unwrap();
        // [0,0,0] is inside; [0,1,2] inside; [1,2,3] outside.
        assert_eq!(inside.nnz(), 2);
        assert_eq!(inside.shape(), &[1, 2, 3]);
        assert_eq!(outside.nnz(), 1);
        assert_eq!(outside.shape(), &[2, 3, 4]);
        assert_eq!(outside.index(0), &[1, 2, 3]);
        // Conservation of nnz.
        assert_eq!(inside.nnz() + outside.nnz(), t.nnz());
    }

    #[test]
    fn split_at_validates_shapes() {
        let t = small();
        assert!(t.split_at(&[1, 2]).is_err());
        assert!(t.split_at(&[3, 3, 4]).is_err());
    }

    #[test]
    fn restrict_and_complement_are_split_halves() {
        let t = small();
        let old = [2, 3, 3];
        let r = t.restrict(&old).unwrap();
        let c = t.complement(&old).unwrap();
        assert_eq!(r.nnz() + c.nnz(), t.nnz());
        for (idx, _) in r.iter() {
            assert_eq!(SparseTensor::block_of(idx, &old), 0);
        }
        for (idx, _) in c.iter() {
            assert_ne!(SparseTensor::block_of(idx, &old), 0);
        }
    }

    #[test]
    fn split_blocks_partitions_by_signature() {
        let t = small(); // shape [2,3,4]; entries [0,0,0], [0,1,2], [1,2,3]
        let old = [1usize, 2, 3];
        let blocks = t.split_blocks(&old).unwrap();
        // [0,0,0] → 0b000; [0,1,2] → 0b000; [1,2,3] → 0b111.
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, 0);
        assert_eq!(blocks[0].1.nnz(), 2);
        assert_eq!(blocks[1].0, 0b111);
        assert_eq!(blocks[1].1.nnz(), 1);
        // Blocks conserve nnz and norm.
        let total_nnz: usize = blocks.iter().map(|(_, b)| b.nnz()).sum();
        assert_eq!(total_nnz, t.nnz());
        let total_norm: f64 = blocks.iter().map(|(_, b)| b.norm_sq()).sum();
        assert!((total_norm - t.norm_sq()).abs() < 1e-12);
        // Non-zero blocks union to the complement.
        let complement = t.complement(&old).unwrap();
        let outside_nnz: usize = blocks
            .iter()
            .filter(|(sig, _)| *sig != 0)
            .map(|(_, b)| b.nnz())
            .sum();
        assert_eq!(outside_nnz, complement.nnz());
    }

    #[test]
    fn split_blocks_signatures_match_block_of() {
        let t = small();
        let old = [2usize, 2, 2];
        for (sig, block) in t.split_blocks(&old).unwrap() {
            for (idx, _) in block.iter() {
                assert_eq!(SparseTensor::block_of(idx, &old), sig);
            }
        }
    }

    #[test]
    fn split_blocks_validates() {
        let t = small();
        assert!(t.split_blocks(&[1, 2]).is_err());
        assert!(t.split_blocks(&[9, 2, 2]).is_err());
        // Empty tensor: no blocks at all.
        let e = SparseTensor::empty(vec![2, 2]).unwrap();
        assert!(e.split_blocks(&[1, 1]).unwrap().is_empty());
    }

    #[test]
    fn iter_matches_accessors() {
        let t = small();
        let collected: Vec<(Vec<usize>, f64)> = t.iter().map(|(i, v)| (i.to_vec(), v)).collect();
        assert_eq!(collected.len(), t.nnz());
        for (e, (idx, v)) in collected.iter().enumerate() {
            assert_eq!(idx.as_slice(), t.index(e));
            assert_eq!(*v, t.value(e));
        }
    }

    #[test]
    fn empty_tensor_operations() {
        let t = SparseTensor::empty(vec![3, 3]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.norm_sq(), 0.0);
        assert_eq!(t.slice_nnz(0).unwrap(), vec![0, 0, 0]);
        let (a, b) = t.split_at(&[2, 2]).unwrap();
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn binary_search_is_correct_on_sorted_tuples() {
        let t = small();
        for e in 0..t.nnz() {
            let idx = t.index(e).to_vec();
            assert_eq!(t.get(&idx).unwrap(), t.value(e));
        }
    }
}

//! Adaptive per-cell MTTKRP kernel selection.
//!
//! The sorted-run layout ([`MttkrpPlan`]) amortises one counting sort per
//! mode into a streaming kernel — a clear win on dense-enough cells, pure
//! overhead on tiny or hyper-sparse ones where almost every run holds a
//! single entry (the "skip plan build" case: the COO kernel already *is*
//! the one-entry-per-run schedule, without paying the sort or the layout
//! tables).  [`AdaptivePolicy`] picks per grid cell from two statistics
//! the partitioner already tracks (see `partition::stats`): the cell's
//! nonzero count and its slice density (nnz per slice of the longest
//! mode).
//!
//! Selection is **bit-safe**: the COO and sorted-run kernels are bitwise
//! identical (pinned by the layout proptests — the stable permutation
//! preserves per-row accumulation order), so a mixed population of cell
//! kernels produces exactly the factors an all-COO or all-plan run would.
//! Cells whose coordinates overflow the plan's `u32` index space are
//! forced to COO rather than erroring, which is the documented fallback
//! for [`TensorError::PlanOverflow`](crate::TensorError::PlanOverflow).

use crate::coo::SparseTensor;
use crate::error::Result;
use crate::layout::MttkrpPlan;
use crate::matrix::Matrix;
use crate::pool::ThreadPool;

/// Which MTTKRP kernel a cell was assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutChoice {
    /// The naive COO kernel: no preprocessing, `usize` indexing, one
    /// scattered output write per entry.
    NaiveCoo,
    /// The sorted-run plan: one counting sort per mode up front, then
    /// streaming run-accumulated execution (pooled when a pool is given).
    SortedRuns,
}

/// Thresholds for the per-cell layout decision.
///
/// A cell gets a sorted-run plan only when it is big enough for the sort
/// to pay for itself (`min_plan_nnz`) *and* dense enough per slice that
/// runs actually amortise (`min_slice_density` — at density 1.0 the
/// average run holds one entry and the plan degenerates to COO with extra
/// tables).  Anything else, and anything outside the plan's `u32` index
/// space, takes the COO kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Minimum nonzeros before a plan build is worth the sort.
    pub min_plan_nnz: usize,
    /// Minimum nnz-per-slice of the longest mode before runs amortise.
    pub min_slice_density: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            min_plan_nnz: 128,
            min_slice_density: 1.0,
        }
    }
}

impl AdaptivePolicy {
    /// Decides the kernel for a cell with the given shape and nnz.
    pub fn choose(&self, shape: &[usize], nnz: usize) -> LayoutChoice {
        let max_dim = shape.iter().copied().max().unwrap_or(1).max(1);
        self.choose_measured(nnz, max_dim, nnz as f64 / max_dim as f64)
    }

    /// Decides from precomputed statistics — the entry point fed by the
    /// partitioner's `partition::stats::CellStats` (`nnz`, longest mode,
    /// slice density), so the distributed driver reuses numbers it
    /// already tracks.  Every dimension is bounded by `max_dim`, so the
    /// overflow screen on it covers the whole shape.
    pub fn choose_measured(&self, nnz: usize, max_dim: usize, slice_density: f64) -> LayoutChoice {
        if nnz < self.min_plan_nnz {
            return LayoutChoice::NaiveCoo;
        }
        if nnz as u64 > u64::from(u32::MAX) || max_dim as u64 > u64::from(u32::MAX) {
            // The plan would refuse with PlanOverflow; COO is the
            // documented fallback.
            return LayoutChoice::NaiveCoo;
        }
        if slice_density < self.min_slice_density {
            return LayoutChoice::NaiveCoo;
        }
        LayoutChoice::SortedRuns
    }
}

/// One grid cell's chosen MTTKRP kernel: either the raw COO tensor or a
/// prebuilt sorted-run plan.
#[derive(Debug, Clone)]
pub enum CellKernel {
    /// Naive COO execution over the retained tensor.
    Coo(SparseTensor),
    /// Sorted-run plan execution (the tensor itself is dropped — the plan
    /// carries everything the kernel needs).
    Plan(MttkrpPlan),
}

impl CellKernel {
    /// Builds the kernel the policy picks for `tensor`, recording the
    /// decision on the `plan/adaptive_coo` / `plan/adaptive_plan`
    /// counters.  Plan builds run on `pool`.
    ///
    /// # Errors
    /// Propagates plan-build failures (the policy itself never picks a
    /// plan for an overflowing cell, so this is defensive).
    pub fn select(
        tensor: SparseTensor,
        policy: &AdaptivePolicy,
        pool: &ThreadPool,
    ) -> Result<Self> {
        let choice = policy.choose(tensor.shape(), tensor.nnz());
        CellKernel::build(tensor, choice, pool)
    }

    /// Builds the kernel for an explicit choice (see
    /// [`select`](CellKernel::select) for the policy-driven path).
    ///
    /// # Errors
    /// Returns [`TensorError::PlanOverflow`](crate::TensorError::PlanOverflow)
    /// when `SortedRuns` is forced onto a cell outside the plan's `u32`
    /// index space.
    pub fn build(tensor: SparseTensor, choice: LayoutChoice, pool: &ThreadPool) -> Result<Self> {
        match choice {
            LayoutChoice::NaiveCoo => {
                dismastd_obs::counter_add("plan/adaptive_coo", 1);
                Ok(CellKernel::Coo(tensor))
            }
            LayoutChoice::SortedRuns => {
                let plan = MttkrpPlan::build_with(&tensor, pool)?;
                dismastd_obs::counter_add("plan/adaptive_plan", 1);
                Ok(CellKernel::Plan(plan))
            }
        }
    }

    /// The choice this kernel embodies.
    pub fn choice(&self) -> LayoutChoice {
        match self {
            CellKernel::Coo(_) => LayoutChoice::NaiveCoo,
            CellKernel::Plan(_) => LayoutChoice::SortedRuns,
        }
    }

    /// Shape of the underlying cell.
    pub fn shape(&self) -> &[usize] {
        match self {
            CellKernel::Coo(t) => t.shape(),
            CellKernel::Plan(p) => p.shape(),
        }
    }

    /// Nonzeros covered by the kernel.
    pub fn nnz(&self) -> usize {
        match self {
            CellKernel::Coo(t) => t.nnz(),
            CellKernel::Plan(p) => p.nnz(),
        }
    }

    /// Extra heap bytes the layout tables hold (zero for COO — the raw
    /// tensor is the layout).
    pub fn layout_bytes(&self) -> usize {
        match self {
            CellKernel::Coo(_) => 0,
            CellKernel::Plan(p) => p.layout_bytes(),
        }
    }

    /// Accumulates the mode-`mode` MTTKRP into `out` (`out +=`) with
    /// whichever kernel the cell carries; plan cells execute on `pool`.
    /// Both kernels are bitwise identical, so the choice never changes
    /// factor bits.
    ///
    /// # Errors
    /// Returns a shape error if `factors` or `out` disagree with the cell.
    pub fn mttkrp_into(
        &self,
        factors: &[Matrix],
        mode: usize,
        out: &mut Matrix,
        pool: &ThreadPool,
    ) -> Result<()> {
        match self {
            CellKernel::Coo(t) => crate::mttkrp::mttkrp_into(t, factors, mode, out),
            CellKernel::Plan(p) => p.mttkrp_into_pooled(factors, mode, out, pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::SparseTensorBuilder;
    use crate::matrix::Matrix;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn policy_picks_coo_for_tiny_and_hypersparse_cells() {
        let p = AdaptivePolicy::default();
        // Tiny: below the plan-build payoff threshold.
        assert_eq!(p.choose(&[100, 100, 100], 10), LayoutChoice::NaiveCoo);
        // Hyper-sparse: 200 entries over a 1000-long mode — runs of ~1.
        assert_eq!(p.choose(&[1000, 4, 4], 200), LayoutChoice::NaiveCoo);
        // Dense enough and big enough: plan.
        assert_eq!(p.choose(&[100, 100, 100], 5000), LayoutChoice::SortedRuns);
    }

    #[test]
    fn policy_never_picks_a_plan_that_would_overflow() {
        let p = AdaptivePolicy {
            min_plan_nnz: 0,
            min_slice_density: 0.0,
        };
        let huge = u32::MAX as usize + 1;
        assert_eq!(p.choose(&[huge, 2, 2], 1000), LayoutChoice::NaiveCoo);
        assert_eq!(p.choose(&[10, 10, 10], 1000), LayoutChoice::SortedRuns);
    }

    #[test]
    fn both_kernels_agree_bitwise_through_the_cell_interface() {
        let shape = [12, 10, 8];
        let t = random_tensor(&shape, 400, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect();
        let pool = ThreadPool::new(2);
        let coo = CellKernel::build(t.clone(), LayoutChoice::NaiveCoo, &pool).unwrap();
        let plan = CellKernel::build(t, LayoutChoice::SortedRuns, &pool).unwrap();
        assert_eq!(coo.choice(), LayoutChoice::NaiveCoo);
        assert_eq!(plan.choice(), LayoutChoice::SortedRuns);
        assert_eq!(coo.nnz(), plan.nnz());
        assert_eq!(coo.layout_bytes(), 0);
        assert!(plan.layout_bytes() > 0);
        for mode in 0..3 {
            let mut a = Matrix::zeros(shape[mode], 3);
            let mut b = Matrix::zeros(shape[mode], 3);
            coo.mttkrp_into(&factors, mode, &mut a, &pool).unwrap();
            plan.mttkrp_into(&factors, mode, &mut b, &pool).unwrap();
            assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0, "mode {mode}");
        }
    }

    #[test]
    fn selection_records_its_choice_on_the_counters() {
        let pool = ThreadPool::new(1);
        let collector = dismastd_obs::begin();
        let tiny = random_tensor(&[6, 5, 4], 20, 3);
        let big = random_tensor(&[10, 10, 10], 600, 4);
        let a = CellKernel::select(tiny, &AdaptivePolicy::default(), &pool).unwrap();
        let b = CellKernel::select(big, &AdaptivePolicy::default(), &pool).unwrap();
        assert_eq!(a.choice(), LayoutChoice::NaiveCoo);
        assert_eq!(b.choice(), LayoutChoice::SortedRuns);
        let snap = collector.finish();
        assert_eq!(snap.counter_value("plan/adaptive_coo"), 1);
        assert_eq!(snap.counter_value("plan/adaptive_plan"), 1);
    }
}

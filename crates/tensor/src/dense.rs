//! Small dense tensors — the *oracle* representation.
//!
//! Production code never densifies; this type exists so tests can check the
//! sparse kernels (MTTKRP, Kruskal reconstruction, losses) against brute
//! force on tiny tensors.

use crate::coo::SparseTensor;
use crate::error::{Result, TensorError};
use crate::matrix::Matrix;

/// Dense `N`-th order tensor with row-major (last-mode-fastest) layout.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// All-zero tensor of the given shape.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyShape`] for an empty shape.
    pub fn zeros(shape: Vec<usize>) -> Result<Self> {
        if shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        let len: usize = shape.iter().product();
        let strides = compute_strides(&shape);
        Ok(DenseTensor {
            shape,
            strides,
            data: vec![0.0; len],
        })
    }

    /// Densifies a sparse tensor (intended for small test tensors only).
    pub fn from_sparse(t: &SparseTensor) -> Result<Self> {
        let mut out = DenseTensor::zeros(t.shape().to_vec())?;
        for (idx, v) in t.iter() {
            let off = out.offset(idx);
            out.data[off] += v;
        }
        Ok(out)
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Dimension sizes.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Flat backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Linear offset of an index tuple.
    fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        idx.iter().zip(&self.strides).map(|(i, s)| i * s).sum()
    }

    /// Entry accessor.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Entry mutator.
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Element-wise difference.
    ///
    /// # Errors
    /// Returns a shape mismatch when shapes differ.
    pub fn sub(&self, other: &DenseTensor) -> Result<DenseTensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "DenseTensor::sub",
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(DenseTensor {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data,
        })
    }

    /// Mode-`n` unfolding `X_(n)` (Def. 2), with Kolda-Bader column ordering:
    /// column index `j = Σ_{k≠n} i_k · J_k`, `J_k = Π_{m<k, m≠n} I_m`.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidMode`] for a bad mode.
    pub fn unfold(&self, mode: usize) -> Result<Matrix> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let rows = self.shape[mode];
        let cols: usize = self
            .shape
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != mode)
            .map(|(_, &s)| s)
            .product();
        let mut out = Matrix::zeros(rows, cols);
        // Column strides J_k for the unfolding.
        let mut col_strides = vec![0usize; self.order()];
        let mut acc = 1usize;
        for k in 0..self.order() {
            if k == mode {
                continue;
            }
            col_strides[k] = acc;
            acc *= self.shape[k];
        }
        let mut idx = vec![0usize; self.order()];
        for (off, &v) in self.data.iter().enumerate() {
            unravel(off, &self.strides, &mut idx);
            let col: usize = idx
                .iter()
                .zip(&col_strides)
                .enumerate()
                .filter(|(k, _)| *k != mode)
                .map(|(_, (i, s))| i * s)
                .sum();
            out.set(idx[mode], col, v);
        }
        Ok(out)
    }

    /// Iterates `(index_tuple, value)` over every cell, including zeros.
    pub fn iter_all(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let strides = self.strides.clone();
        let order = self.order();
        self.data.iter().enumerate().map(move |(off, &v)| {
            let mut idx = vec![0usize; order];
            unravel(off, &strides, &mut idx);
            (idx, v)
        })
    }
}

fn compute_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for k in (0..shape.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * shape[k + 1];
    }
    strides
}

fn unravel(mut off: usize, strides: &[usize], out: &mut [usize]) {
    for (o, &s) in out.iter_mut().zip(strides) {
        *o = off / s;
        off %= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::SparseTensorBuilder;

    #[test]
    fn zeros_and_set_get() {
        let mut t = DenseTensor::zeros(vec![2, 3]).unwrap();
        t.set(&[1, 2], 5.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.norm_sq(), 25.0);
    }

    #[test]
    fn from_sparse_round_trip() {
        let mut b = SparseTensorBuilder::new(vec![2, 2, 2]);
        b.push(&[0, 1, 0], 3.0).unwrap();
        b.push(&[1, 1, 1], -2.0).unwrap();
        let sp = b.build().unwrap();
        let d = DenseTensor::from_sparse(&sp).unwrap();
        assert_eq!(d.get(&[0, 1, 0]), 3.0);
        assert_eq!(d.get(&[1, 1, 1]), -2.0);
        assert_eq!(d.get(&[0, 0, 0]), 0.0);
        assert_eq!(d.norm_sq(), sp.norm_sq());
    }

    #[test]
    fn unfold_shape_follows_definition() {
        // "If X is I x J x K then X_(1) is I x JK" (after Def. 2).
        let t = DenseTensor::zeros(vec![2, 3, 4]).unwrap();
        assert_eq!(t.unfold(0).unwrap().shape(), (2, 12));
        assert_eq!(t.unfold(1).unwrap().shape(), (3, 8));
        assert_eq!(t.unfold(2).unwrap().shape(), (4, 6));
        assert!(t.unfold(3).is_err());
    }

    #[test]
    fn unfold_places_fibers_correctly() {
        let mut t = DenseTensor::zeros(vec![2, 2, 2]).unwrap();
        // Fill with distinct values v = 100*i + 10*j + k.
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    t.set(&[i, j, k], (100 * i + 10 * j + k) as f64);
                }
            }
        }
        let u0 = t.unfold(0).unwrap();
        // Column of (j,k) in mode-0 unfolding is j + 2k? No: col strides are
        // J_j = 1, J_k = 2 per Kolda-Bader (earlier modes vary fastest):
        // col = j*1 + k*2.
        assert_eq!(u0.get(1, 0), 100.0); // (i=1, j=0, k=0)
        assert_eq!(u0.get(1, 1), 110.0); // j=1,k=0 -> col 1
        assert_eq!(u0.get(1, 2), 101.0); // j=0,k=1 -> col 2
        assert_eq!(u0.get(1, 3), 111.0);
    }

    #[test]
    fn unfold_norm_preserved() {
        let mut t = DenseTensor::zeros(vec![3, 2, 2]).unwrap();
        t.set(&[2, 1, 0], 2.0);
        t.set(&[0, 0, 1], -1.5);
        for mode in 0..3 {
            assert!((t.unfold(mode).unwrap().frob_norm_sq() - t.norm_sq()).abs() < 1e-12);
        }
    }

    #[test]
    fn sub_and_shape_check() {
        let mut a = DenseTensor::zeros(vec![2, 2]).unwrap();
        a.set(&[0, 0], 3.0);
        let b = DenseTensor::zeros(vec![2, 2]).unwrap();
        assert_eq!(a.sub(&b).unwrap().get(&[0, 0]), 3.0);
        let c = DenseTensor::zeros(vec![2, 3]).unwrap();
        assert!(a.sub(&c).is_err());
    }

    #[test]
    fn iter_all_covers_every_cell() {
        let t = DenseTensor::zeros(vec![2, 3]).unwrap();
        assert_eq!(t.iter_all().count(), 6);
        let idxs: Vec<Vec<usize>> = t.iter_all().map(|(i, _)| i).collect();
        assert!(idxs.contains(&vec![1, 2]));
        assert!(idxs.contains(&vec![0, 0]));
    }
}

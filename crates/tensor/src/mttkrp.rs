//! Matricized Tensor Times Khatri-Rao Product (MTTKRP).
//!
//! The bottleneck operator of CP-ALS (Sec. III-B / IV-B1):
//! `Â = X_(n) · (A_k)^{⊙ k≠n}`, computed element-wise over the nonzeros —
//! `Â[i_n, :] += x · ⊛_{k≠n} A_k[i_k, :]` — so the cost is
//! `O(nnz · N · R)` and zero entries never contribute (the paper's first
//! MTTKRP property).  Row indices are *global*, which lets distributed
//! workers run this kernel on their local nonzero sets and reduce partial
//! rows to the row owners afterwards.

use crate::coo::SparseTensor;
use crate::error::{Result, TensorError};
use crate::matrix::{axpy, Matrix};

/// Validates `factors` against `tensor` and returns the common rank `R`.
fn check_factors(tensor: &SparseTensor, factors: &[Matrix], mode: usize) -> Result<usize> {
    if factors.len() != tensor.order() {
        return Err(TensorError::shape_mismatch(
            "mttkrp factors",
            &[tensor.order()],
            &[factors.len()],
        ));
    }
    if mode >= tensor.order() {
        return Err(TensorError::InvalidMode {
            mode,
            order: tensor.order(),
        });
    }
    let r = factors[0].cols();
    for (k, f) in factors.iter().enumerate() {
        if f.cols() != r {
            return Err(TensorError::shape_mismatch(
                "mttkrp factor ranks",
                &[r],
                &[f.cols()],
            ));
        }
        if f.rows() < tensor.shape()[k] {
            return Err(TensorError::shape_mismatch(
                "mttkrp factor rows",
                &[tensor.shape()[k]],
                &[f.rows()],
            ));
        }
    }
    Ok(r)
}

/// Computes the mode-`n` MTTKRP `Â = X_(n) (A_k)^{⊙ k≠n}`.
///
/// The result has `factors[mode].rows()` rows (global row space), so callers
/// can split it into the `Â^(0)` / `Â^(1)` blocks of Eq. 3 by row range.
///
/// ```
/// use dismastd_tensor::{Matrix, SparseTensorBuilder};
/// use dismastd_tensor::mttkrp::mttkrp;
/// let mut b = SparseTensorBuilder::new(vec![2, 2, 2]);
/// b.push(&[0, 1, 1], 2.0).unwrap();
/// let x = b.build().unwrap();
/// let ones = |rows| Matrix::from_fn(rows, 3, |_, _| 1.0);
/// let factors = vec![ones(2), ones(2), ones(2)];
/// let hat = mttkrp(&x, &factors, 0).unwrap();
/// // Row 0 receives 2.0 * B[1,:] ⊛ C[1,:] = [2, 2, 2]; row 1 nothing.
/// assert_eq!(hat.row(0), &[2.0, 2.0, 2.0]);
/// assert_eq!(hat.row(1), &[0.0, 0.0, 0.0]);
/// ```
///
/// # Errors
/// Returns a shape error if `factors` disagree with the tensor or each other.
pub fn mttkrp(tensor: &SparseTensor, factors: &[Matrix], mode: usize) -> Result<Matrix> {
    let r = check_factors(tensor, factors, mode)?;
    let mut out = Matrix::zeros(factors[mode].rows(), r);
    mttkrp_into(tensor, factors, mode, &mut out)?;
    Ok(out)
}

/// Accumulates the mode-`n` MTTKRP of `tensor` into `out` (`out +=`).
///
/// Distributed workers call this with their local nonzero set and a
/// locally-zeroed buffer, then reduce the partial rows (Sec. IV-B1).
///
/// # Errors
/// Returns a shape error if `out` is not `factors[mode].rows() x R`.
pub fn mttkrp_into(
    tensor: &SparseTensor,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
) -> Result<()> {
    let r = check_factors(tensor, factors, mode)?;
    if out.shape() != (factors[mode].rows(), r) {
        return Err(TensorError::shape_mismatch(
            "mttkrp_into output",
            &[factors[mode].rows(), r],
            &[out.rows(), out.cols()],
        ));
    }
    let _span = dismastd_obs::span_with("kernel/mttkrp_naive", mode as u64);
    let order = tensor.order();
    // lint:allow(alloc_hygiene): one bounded R-lane scratch per kernel call, amortised over all nonzeros
    let mut prod = vec![0.0f64; r];
    for (idx, v) in tensor.iter() {
        // prod = v * ⊛_{k≠mode} A_k[i_k, :]
        prod.iter_mut().for_each(|p| *p = v);
        for k in 0..order {
            if k == mode {
                continue;
            }
            let row = factors[k].row(idx[k]);
            for (p, &a) in prod.iter_mut().zip(row) {
                *p *= a;
            }
        }
        axpy(1.0, &prod, out.row_mut(idx[mode]));
    }
    Ok(())
}

/// Inner product `⟨X, ⟦A_1, …, A_N⟧⟩` computed from a *precomputed* MTTKRP:
/// `Σ_i Â[i,:] · A_n[i,:]` — the reuse identity of Sec. IV-B4 (Eq. 7).
///
/// `hat` must be the mode-`n` MTTKRP of `X` with these factors; `a_n` is the
/// mode-`n` factor.  No pass over the nonzeros happens here.
///
/// # Errors
/// Returns a shape mismatch if `hat` and `a_n` differ in shape.
pub fn inner_from_mttkrp(hat: &Matrix, a_n: &Matrix) -> Result<f64> {
    if hat.shape() != a_n.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "inner_from_mttkrp",
            left: vec![hat.rows(), hat.cols()],
            right: vec![a_n.rows(), a_n.cols()],
        });
    }
    Ok(hat
        .as_slice()
        .iter()
        .zip(a_n.as_slice())
        .map(|(h, a)| h * a)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::SparseTensorBuilder;
    use crate::dense::DenseTensor;
    use crate::ops::khatri_rao_skip;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: &[usize], nnz: usize, rng: &mut impl Rng) -> SparseTensor {
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_dense_oracle_third_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let shape = [4, 3, 5];
        let t = random_tensor(&shape, 20, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 2, &mut rng))
            .collect();
        for mode in 0..3 {
            let fast = mttkrp(&t, &factors, mode).unwrap();
            let dense = DenseTensor::from_sparse(&t).unwrap();
            let unfolded = dense.unfold(mode).unwrap();
            let kr = khatri_rao_skip(&factors, mode).unwrap();
            let oracle = unfolded.matmul(&kr).unwrap();
            assert!(
                fast.max_abs_diff(&oracle).unwrap() < 1e-10,
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn matches_dense_oracle_fourth_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let shape = [3, 2, 4, 2];
        let t = random_tensor(&shape, 15, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect();
        for mode in 0..4 {
            let fast = mttkrp(&t, &factors, mode).unwrap();
            let dense = DenseTensor::from_sparse(&t).unwrap();
            let oracle = dense
                .unfold(mode)
                .unwrap()
                .matmul(&khatri_rao_skip(&factors, mode).unwrap())
                .unwrap();
            assert!(fast.max_abs_diff(&oracle).unwrap() < 1e-10);
        }
    }

    #[test]
    fn empty_tensor_gives_zero_result() {
        let t = SparseTensor::empty(vec![3, 3, 3]).unwrap();
        let factors: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(3, 2)).collect();
        let out = mttkrp(&t, &factors, 0).unwrap();
        assert_eq!(out.frob_norm_sq(), 0.0);
    }

    #[test]
    fn oversized_factors_use_global_rows() {
        // Factors may have more rows than the tensor shape (grown snapshot);
        // extra rows just never receive contributions for this tensor.
        let mut b = SparseTensorBuilder::new(vec![2, 2]);
        b.push(&[1, 1], 2.0).unwrap();
        let t = b.build().unwrap();
        let factors = vec![
            Matrix::random(4, 2, &mut ChaCha8Rng::seed_from_u64(1)),
            Matrix::random(5, 2, &mut ChaCha8Rng::seed_from_u64(2)),
        ];
        let out = mttkrp(&t, &factors, 0).unwrap();
        assert_eq!(out.rows(), 4);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(2), &[0.0, 0.0]);
        let b_row = factors[1].row(1);
        assert_eq!(out.row(1), &[2.0 * b_row[0], 2.0 * b_row[1]]);
    }

    #[test]
    fn mttkrp_into_accumulates_partials() {
        // Splitting the nonzeros across "workers" and accumulating equals the
        // single-shot MTTKRP — the distributed reduction invariant.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let shape = [5, 4, 3];
        let t = random_tensor(&shape, 30, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 2, &mut rng))
            .collect();
        let full = mttkrp(&t, &factors, 1).unwrap();

        // Split entries into two halves by parity.
        let mut b1 = SparseTensorBuilder::new(shape.to_vec());
        let mut b2 = SparseTensorBuilder::new(shape.to_vec());
        for (e, (idx, v)) in t.iter().enumerate() {
            if e % 2 == 0 {
                b1.push(idx, v).unwrap();
            } else {
                b2.push(idx, v).unwrap();
            }
        }
        let t1 = b1.build().unwrap();
        let t2 = b2.build().unwrap();
        let mut acc = Matrix::zeros(4, 2);
        mttkrp_into(&t1, &factors, 1, &mut acc).unwrap();
        mttkrp_into(&t2, &factors, 1, &mut acc).unwrap();
        assert!(acc.max_abs_diff(&full).unwrap() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let t = SparseTensor::empty(vec![3, 3]).unwrap();
        let good = vec![Matrix::zeros(3, 2), Matrix::zeros(3, 2)];
        assert!(mttkrp(&t, &good, 2).is_err()); // bad mode
        let short = vec![Matrix::zeros(2, 2), Matrix::zeros(3, 2)];
        assert!(mttkrp(&t, &short, 0).is_err()); // too few rows
        let ragged = vec![Matrix::zeros(3, 2), Matrix::zeros(3, 3)];
        assert!(mttkrp(&t, &ragged, 0).is_err()); // rank mismatch
        let wrong_count = vec![Matrix::zeros(3, 2)];
        assert!(mttkrp(&t, &wrong_count, 0).is_err());
    }

    #[test]
    fn inner_from_mttkrp_matches_direct() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let shape = [4, 3, 2];
        let t = random_tensor(&shape, 10, &mut rng);
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 3, &mut rng))
            .collect();
        // Direct: Σ_nnz x · Σ_f Π_k A_k[i_k, f].
        let mut direct = 0.0;
        for (idx, v) in t.iter() {
            for f in 0..3 {
                let mut p = v;
                for (k, &i) in idx.iter().enumerate() {
                    p *= factors[k].get(i, f);
                }
                direct += p;
            }
        }
        for mode in 0..3 {
            let hat = mttkrp(&t, &factors, mode).unwrap();
            let got = inner_from_mttkrp(&hat, &factors[mode]).unwrap();
            assert!((got - direct).abs() < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn inner_from_mttkrp_shape_check() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(inner_from_mttkrp(&a, &b).is_err());
    }
}

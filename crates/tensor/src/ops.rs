//! Multi-matrix operators used by CP decomposition.
//!
//! Implements the paper's shorthand operators (Table II):
//! `(A_k)^{⊙ k≠n}` — Khatri-Rao product over all factors except mode `n`
//! (reverse mode order), and `(A_k)^{⊛ k≠n}` — the matching Hadamard product
//! of `R x R` matrices.

use crate::error::{Result, TensorError};
use crate::matrix::Matrix;

/// Khatri-Rao (column-wise Kronecker) product `a ⊙ b`.
///
/// For `a: I x R` and `b: J x R`, the result is `IJ x R` with
/// `(a ⊙ b)[i*J + j, r] = a[i, r] * b[j, r]`.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "khatri_rao",
            left: vec![a.rows(), a.cols()],
            right: vec![b.rows(), b.cols()],
        });
    }
    let r = a.cols();
    let mut out = Matrix::zeros(a.rows() * b.rows(), r);
    for i in 0..a.rows() {
        let arow = a.row(i);
        for j in 0..b.rows() {
            let brow = b.row(j);
            let orow = out.row_mut(i * b.rows() + j);
            for c in 0..r {
                orow[c] = arow[c] * brow[c];
            }
        }
    }
    Ok(out)
}

/// Khatri-Rao product of all factors except `skip_mode`, in **reverse** mode
/// order: `A_N ⊙ … ⊙ A_{n+1} ⊙ A_{n-1} ⊙ … ⊙ A_1` (the `(A_k)^{⊙ k≠n}` of
/// Table II, matching the mode-`n` unfolding convention of Kolda & Bader).
///
/// Only used by small/oracle code paths — production MTTKRP never
/// materialises this product.
pub fn khatri_rao_skip(factors: &[Matrix], skip_mode: usize) -> Result<Matrix> {
    if skip_mode >= factors.len() {
        return Err(TensorError::InvalidMode {
            mode: skip_mode,
            order: factors.len(),
        });
    }
    let mut acc: Option<Matrix> = None;
    for (k, f) in factors.iter().enumerate().rev() {
        if k == skip_mode {
            continue;
        }
        acc = Some(match acc {
            None => f.clone(),
            Some(a) => khatri_rao(&a, f)?,
        });
    }
    acc.ok_or(TensorError::InvalidArgument(
        "khatri_rao_skip needs at least two factors".into(),
    ))
}

/// Hadamard product of a sequence of equally shaped matrices.
///
/// # Errors
/// Returns an error if the iterator is empty or shapes differ.
pub fn hadamard_all<'a>(mats: impl IntoIterator<Item = &'a Matrix>) -> Result<Matrix> {
    let mut iter = mats.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| TensorError::InvalidArgument("hadamard_all of empty sequence".into()))?;
    let mut acc = first.clone();
    for m in iter {
        acc.hadamard_assign(m)?;
    }
    Ok(acc)
}

/// Hadamard product of all matrices except index `skip` — the `(M_k)^{⊛ k≠n}`
/// operator applied to cached Gram products in the Eq. 5 denominators.
pub fn hadamard_skip(mats: &[Matrix], skip: usize) -> Result<Matrix> {
    if skip >= mats.len() {
        return Err(TensorError::InvalidMode {
            mode: skip,
            order: mats.len(),
        });
    }
    hadamard_all(
        mats.iter()
            .enumerate()
            .filter(|(k, _)| *k != skip)
            .map(|(_, m)| m),
    )
}

/// Grand sum of the Hadamard product of a list of `R x R` matrices:
/// `1ᵀ (M_1 ⊛ … ⊛ M_K) 1`.
///
/// This is the scalar kernel behind every norm/inner-product identity in
/// Sec. IV-B4 — it never materialises the product.
pub fn grand_sum_hadamard(mats: &[&Matrix]) -> Result<f64> {
    let first = mats
        .first()
        .ok_or_else(|| TensorError::InvalidArgument("grand_sum_hadamard of empty list".into()))?;
    let (rows, cols) = first.shape();
    for m in mats {
        if m.shape() != (rows, cols) {
            return Err(TensorError::ShapeMismatch {
                op: "grand_sum_hadamard",
                left: vec![rows, cols],
                right: vec![m.rows(), m.cols()],
            });
        }
    }
    let n = rows * cols;
    let mut total = 0.0;
    for idx in 0..n {
        let mut prod = 1.0;
        for m in mats {
            prod *= m.as_slice()[idx];
        }
        total += prod;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn khatri_rao_small_example() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 10.0]]);
        let kr = khatri_rao(&a, &b).unwrap();
        assert_eq!(kr.shape(), (6, 2));
        // Row (i=1, j=2) => index 1*3+2 = 5: [3*9, 4*10].
        assert_eq!(kr.row(5), &[27.0, 40.0]);
        assert_eq!(kr.row(0), &[5.0, 12.0]);
    }

    #[test]
    fn khatri_rao_rejects_col_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(khatri_rao(&a, &b).is_err());
    }

    #[test]
    fn khatri_rao_skip_order_convention() {
        // Three factors; skipping mode 0 must produce A3 ⊙ A2.
        let a1 = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let a2 = Matrix::from_rows(&[&[3.0], &[5.0]]);
        let a3 = Matrix::from_rows(&[&[7.0], &[11.0]]);
        let got = khatri_rao_skip(&[a1, a2.clone(), a3.clone()], 0).unwrap();
        let expected = khatri_rao(&a3, &a2).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn khatri_rao_skip_middle_mode() {
        let a1 = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5]]);
        let a2 = Matrix::from_rows(&[&[3.0, 2.0]]);
        let a3 = Matrix::from_rows(&[&[7.0, 4.0], &[11.0, 9.0]]);
        let got = khatri_rao_skip(&[a1.clone(), a2, a3.clone()], 1).unwrap();
        let expected = khatri_rao(&a3, &a1).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn khatri_rao_skip_invalid_mode() {
        let a = Matrix::zeros(2, 2);
        assert!(khatri_rao_skip(&[a.clone(), a], 5).is_err());
    }

    #[test]
    fn hadamard_all_multiplies_everything() {
        let a = Matrix::from_rows(&[&[2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0, 5.0]]);
        let c = Matrix::from_rows(&[&[0.5, 2.0]]);
        let h = hadamard_all([&a, &b, &c]).unwrap();
        assert_eq!(h, Matrix::from_rows(&[&[4.0, 30.0]]));
    }

    #[test]
    fn hadamard_all_empty_errors() {
        let empty: Vec<&Matrix> = vec![];
        assert!(hadamard_all(empty).is_err());
    }

    #[test]
    fn hadamard_skip_excludes_only_requested() {
        let mats = vec![
            Matrix::from_rows(&[&[2.0]]),
            Matrix::from_rows(&[&[100.0]]),
            Matrix::from_rows(&[&[3.0]]),
        ];
        let h = hadamard_skip(&mats, 1).unwrap();
        assert_eq!(h.get(0, 0), 6.0);
    }

    #[test]
    fn grand_sum_hadamard_matches_materialised() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let direct = a.hadamard(&b).unwrap().grand_sum();
        let lazy = grand_sum_hadamard(&[&a, &b]).unwrap();
        assert!((direct - lazy).abs() < 1e-12);
    }

    #[test]
    fn grand_sum_hadamard_single_matrix() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(grand_sum_hadamard(&[&a]).unwrap(), -1.0);
    }

    #[test]
    fn kruskal_inner_product_identity() {
        // ⟨⟦A,B⟧, ⟦C,D⟧⟩ == grand_sum((AᵀC) ⊛ (BᵀD)) for matrix (order-2)
        // Kruskal operators: verify against an explicit reconstruction.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, 1.5]]);
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0]]);
        let c = Matrix::from_rows(&[&[0.3, 1.0], &[2.0, 0.1]]);
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5], &[2.0, 1.0]]);
        // Explicit: X = A Bᵀ? No — Kruskal ⟦A,B⟧ = A Bᵀ for order 2.
        let x = a.matmul(&b.transpose()).unwrap();
        let y = c.matmul(&d.transpose()).unwrap();
        let direct: f64 = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(p, q)| p * q)
            .sum();
        let ac = a.cross_gram(&c).unwrap();
        let bd = b.cross_gram(&d).unwrap();
        let lazy = grand_sum_hadamard(&[&ac, &bd]).unwrap();
        assert!((direct - lazy).abs() < 1e-12);
    }
}

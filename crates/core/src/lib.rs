// Triangular and multi-buffer numeric loops read clearer with explicit
// indices; suppress the iterator-style lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! # dismastd-core
//!
//! DisMASTD — distributed multi-aspect streaming CP tensor decomposition
//! (Yang et al., ICDE 2021).
//!
//! * [`StreamingSession`] — the high-level API: feed nested snapshots, get
//!   CP factors back; cold-starts with [`als::cp_als`] and warm-updates with
//!   [`dtd::dtd`] (serial) or [`distributed::dismastd`] (simulated cluster);
//! * [`dtd()`](crate::dtd::dtd) — the Dynamic Tensor Decomposition of Alg. 1 with the
//!   Eq. 5 block update rules, for arbitrary tensor order;
//! * [`distributed`] — the distributed engine of Sec. IV-B (per-mode MTTKRP
//!   partials, row routing, cached `R x R` products, all-reduce, loss reuse)
//!   plus the DMS-MG static baseline;
//! * [`loss`] — the Eq. 4 objective assembled from maintained intermediates
//!   (Sec. IV-B4) and its brute-force oracle.
//!
//! Distributed execution is fault-tolerant: cluster failures surface as
//! `TensorError::ClusterFault`, sessions checkpoint/restore their durable
//! state ([`SessionCheckpoint`]), and
//! [`StreamingSession::ingest_with_recovery`] replays a faulted step from
//! the pre-step checkpoint under a [`RecoveryPolicy`].  Deterministic
//! chaos testing plugs in through [`ClusterOptions`] / [`FaultPlan`],
//! optionally inside the virtual-time simulator ([`SimOptions`]); the
//! cluster grows and shrinks between steps via
//! [`StreamingSession::request_join`] / `request_leave`, and
//! [`shadow::ShadowOracle`] cross-checks simulated runs step by step.

pub mod als;
pub mod config;
pub mod distributed;
pub mod dtd;
pub mod loss;
pub mod onlinecp;
pub mod rank;
pub mod session;
pub mod shadow;

pub use config::{DecompConfig, NumericsPolicy, RecoveryPolicy, WatchdogPolicy};
pub use dismastd_cluster::{
    ClusterError, ClusterOptions, CrashAndRejoin, FaultPlan, HealAction, HealPolicy,
    PartitionWindow, SimOptions, SimProbe, Supervisor, VirtualClock,
};
pub use dismastd_obs::MetricsSnapshot;
pub use dismastd_tensor::{
    AdaptivePolicy, LayoutChoice, NumericsReport, QuarantineCounts, SolvePolicy, SolveTier,
    ThreadPolicy, ValidationMode,
};
pub use distributed::{
    dismastd, dismastd_with_cache, dismastd_with_opts, dms_mg, dms_mg_with_cache, dms_mg_with_opts,
    ClusterConfig, DistOutput, PlanCache,
};
pub use dtd::{dtd, DtdOutput};
pub use onlinecp::OnlineCp;
pub use rank::{select_rank, RankSearch};
pub use session::{
    ExecutionMode, HealReport, HealTransition, MembershipChange, SessionCheckpoint, StepReport,
    StreamingSession,
};
pub use shadow::ShadowOracle;

#[cfg(test)]
mod proptests {
    use crate::config::DecompConfig;
    use crate::distributed::{dismastd, ClusterConfig};
    use crate::dtd::dtd;
    use crate::loss::naive_dtd_loss;
    use dismastd_tensor::{Matrix, SparseTensor, SparseTensorBuilder};
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A random DTD problem: old factors over an old box, and complement
    /// nonzeros strictly outside it.
    #[derive(Debug, Clone)]
    struct Problem {
        complement: SparseTensor,
        old_factors: Vec<Matrix>,
    }

    fn problem_strategy() -> impl Strategy<Value = Problem> {
        (
            prop::collection::vec((2usize..5, 1usize..4), 2..4), // (old, growth) per mode
            0u64..10_000,                                        // seed
            5usize..40,                                          // nnz
        )
            .prop_map(|(dims, seed, nnz)| {
                let old_shape: Vec<usize> = dims.iter().map(|&(o, _)| o).collect();
                let new_shape: Vec<usize> = dims.iter().map(|&(o, d)| o + d).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let old_factors: Vec<Matrix> = old_shape
                    .iter()
                    .map(|&s| Matrix::random(s, 2, &mut rng))
                    .collect();
                let mut b = SparseTensorBuilder::new(new_shape.clone());
                let mut placed = 0;
                let mut attempts = 0;
                while placed < nnz && attempts < nnz * 50 {
                    attempts += 1;
                    let idx: Vec<usize> = new_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
                    if SparseTensor::block_of(&idx, &old_shape) == 0 {
                        continue;
                    }
                    b.push(&idx, rng.gen_range(-1.0..1.0)).expect("in bounds");
                    placed += 1;
                }
                Problem {
                    complement: b.build().expect("valid shape"),
                    old_factors,
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn dtd_loss_is_monotone_and_matches_oracle(p in problem_strategy()) {
            let cfg = DecompConfig::default().with_rank(2).with_max_iters(6);
            let out = dtd(&p.complement, &p.old_factors, &cfg).unwrap();
            for w in out.loss_trace.windows(2) {
                prop_assert!(
                    w[1] <= w[0] + 1e-7 * (1.0 + w[0].abs()),
                    "loss increased: {:?}",
                    out.loss_trace
                );
            }
            let reported = *out.loss_trace.last().unwrap();
            let naive = naive_dtd_loss(
                &p.complement,
                &p.old_factors,
                out.kruskal.factors(),
                cfg.forgetting,
            )
            .unwrap();
            prop_assert!(
                (reported - naive).abs() < 1e-7 * (1.0 + naive.abs()),
                "reported {reported} vs oracle {naive}"
            );
        }

        #[test]
        fn distributed_matches_serial(p in problem_strategy(), workers in 1usize..5) {
            let cfg = DecompConfig::default().with_rank(2).with_max_iters(4);
            let serial = dtd(&p.complement, &p.old_factors, &cfg).unwrap();
            let dist = dismastd(
                &p.complement,
                &p.old_factors,
                &cfg,
                &ClusterConfig::new(workers),
            )
            .unwrap();
            prop_assert_eq!(serial.loss_trace.len(), dist.loss_trace.len());
            for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
                prop_assert!(
                    (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                    "workers={}: {} vs {}", workers, a, b
                );
            }
        }
    }
}

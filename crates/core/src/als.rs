//! Static CP-ALS — the classic alternating-least-squares CP decomposition.
//!
//! Used for the cold start of a streaming session (the first snapshot has no
//! previous factors) and as the computational core of the DMS-MG baseline,
//! which re-decomposes the full tensor from scratch at every snapshot.
//!
//! Implemented as the zero-history special case of [`crate::dtd::dtd`]: with
//! zero-row previous factors every row is a "new" row and the Eq. 5 `A^(1)`
//! rule collapses to the textbook normal equation
//! `A_n ← Â_n (⊛_{k≠n} A_kᵀA_k)⁻¹`.

use crate::config::DecompConfig;
use crate::dtd::{dtd, DtdOutput};
use dismastd_tensor::matrix::Matrix;
use dismastd_tensor::{Result, SparseTensor};

/// Runs static CP-ALS on `x`.
///
/// Factors are initialised uniformly at random from `cfg.seed`; the loss
/// trace records `‖X − ⟦A⟧‖²` after each iteration.
///
/// # Errors
/// Propagates configuration and numerical errors from the DTD core.
pub fn cp_als(x: &SparseTensor, cfg: &DecompConfig) -> Result<DtdOutput> {
    let zero_old: Vec<Matrix> = (0..x.order()).map(|_| Matrix::zeros(0, cfg.rank)).collect();
    dtd(x, &zero_old, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::{KruskalTensor, SparseTensorBuilder};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn loss_decreases_monotonically() {
        let x = random_tensor(&[8, 7, 6], 80, 1);
        let out = cp_als(&x, &DecompConfig::default().with_rank(3).with_max_iters(12)).unwrap();
        assert_eq!(out.iterations, 12);
        for w in out.loss_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()),
                "{:?}",
                out.loss_trace
            );
        }
    }

    #[test]
    fn recovers_exact_low_rank_tensor() {
        // X built from a rank-2 Kruskal tensor: ALS should fit it almost
        // perfectly.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let shape = [6usize, 5, 4];
        let truth = KruskalTensor::new(
            shape
                .iter()
                .map(|&s| dismastd_tensor::Matrix::random(s, 2, &mut rng))
                .collect(),
        )
        .unwrap();
        let dense = truth.to_dense().unwrap();
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for (idx, v) in dense.iter_all() {
            b.push(&idx, v).unwrap();
        }
        let x = b.build().unwrap();
        let out = cp_als(
            &x,
            &DecompConfig::default()
                .with_rank(2)
                .with_max_iters(100)
                .with_tolerance(1e-12),
        )
        .unwrap();
        let fit = out.kruskal.fit(&x).unwrap();
        assert!(fit > 0.99, "fit {fit}, loss {:?}", out.loss_trace.last());
    }

    #[test]
    fn reported_loss_matches_direct_residual() {
        let x = random_tensor(&[5, 5, 5], 40, 4);
        let out = cp_als(&x, &DecompConfig::default().with_rank(2).with_max_iters(5)).unwrap();
        let direct = out.kruskal.residual_norm_sq(&x).unwrap();
        let reported = *out.loss_trace.last().unwrap();
        assert!((direct - reported).abs() < 1e-8 * (1.0 + direct));
    }

    #[test]
    fn matrix_case_order_two() {
        let x = random_tensor(&[10, 8], 30, 5);
        let out = cp_als(&x, &DecompConfig::default().with_rank(3).with_max_iters(20)).unwrap();
        assert_eq!(out.kruskal.order(), 2);
        let first = out.loss_trace[0];
        let last = *out.loss_trace.last().unwrap();
        assert!(last <= first);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = random_tensor(&[6, 6, 6], 50, 6);
        let cfg = DecompConfig::default().with_rank(2).with_max_iters(4);
        let a = cp_als(&x, &cfg).unwrap();
        let b = cp_als(&x, &cfg).unwrap();
        assert_eq!(a.loss_trace, b.loss_trace);
        for (fa, fb) in a.kruskal.factors().iter().zip(b.kruskal.factors()) {
            assert_eq!(fa, fb);
        }
    }
}

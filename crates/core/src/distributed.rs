//! Distributed DisMASTD (Sec. IV-B) on the simulated cluster.
//!
//! One engine drives both of the paper's distributed methods:
//!
//! * **DisMASTD** ([`dismastd`]) — DTD over the complement `X \ X̃` with the
//!   previous snapshot's factors;
//! * **DMS-MG** ([`dms_mg`]) — the static medium-grained baseline, obtained
//!   as the zero-history special case (re-decompose the *full* tensor from
//!   scratch; every row is a "new" row).
//!
//! Execution per iteration and mode follows the paper exactly:
//!
//! 1. **Distributed MTTKRP** (Sec. IV-B1): each worker computes partial
//!    MTTKRP rows from its grid cells, then routes the partials of rows it
//!    does not own to the row owners (one all-to-all exchange).
//! 2. **Distributed factor update** (Sec. IV-B2): row owners apply the
//!    Eq. 5 row-wise rules using the cached `R x R` products, then ship the
//!    refreshed rows back to every worker whose nonzeros reference them
//!    (second exchange).
//! 3. **Distributed matrix-product update** (Sec. IV-B3): owners compute
//!    partial Grams over their rows and an all-reduce rebuilds
//!    `G_n^0, G_n^1, G̃_n` on every worker.
//! 4. **Distributed loss** (Sec. IV-B4): the `R x R` terms are evaluated
//!    locally from the replicated products; the data-dependent inner product
//!    reuses the final mode's MTTKRP partial rows and needs only a scalar
//!    all-reduce.

use crate::config::DecompConfig;
use crate::dtd::{converged, init_factors};
use crate::loss::{dtd_loss, GramState, LossParts};
use dismastd_cluster::{Cluster, CommStatsSnapshot, Payload, WorkerCtx};
use dismastd_partition::{CellAssignment, GridPartition, Partitioner};
use dismastd_tensor::linalg::Factorized;
use dismastd_tensor::matrix::{dot, Matrix};
use dismastd_tensor::mttkrp::mttkrp_into;
use dismastd_tensor::ops::{grand_sum_hadamard, hadamard_skip};
use dismastd_tensor::{
    KruskalTensor, Result, SparseTensor, SparseTensorBuilder, TensorError,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster-side configuration: worker count and partitioning strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of simulated worker nodes `M`.
    pub workers: usize,
    /// Tensor partitioning heuristic (GTP or MTP).
    pub partitioner: Partitioner,
    /// Partitions per mode `p_n`.  `None` uses the paper's empirical guide
    /// of one partition per node in every mode (Sec. V-B2).
    pub parts_per_mode: Option<Vec<usize>>,
    /// Cell→worker placement strategy (medium-grain block grid by default;
    /// `Scatter` trades locality for balance — an ablation knob).
    pub cell_assignment: CellAssignment,
}

impl ClusterConfig {
    /// `workers` nodes with MTP partitioning and default partition counts.
    pub fn new(workers: usize) -> Self {
        ClusterConfig {
            workers,
            partitioner: Partitioner::Mtp,
            parts_per_mode: None,
            cell_assignment: CellAssignment::BlockGrid,
        }
    }

    /// Selects the cell→worker placement strategy.
    pub fn with_cell_assignment(mut self, a: CellAssignment) -> Self {
        self.cell_assignment = a;
        self
    }

    /// Selects the partitioner.
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Overrides the per-mode partition counts.
    pub fn with_parts_per_mode(mut self, parts: Vec<usize>) -> Self {
        self.parts_per_mode = Some(parts);
        self
    }

    fn resolved_parts(&self, order: usize) -> Vec<usize> {
        self.parts_per_mode
            .clone()
            .unwrap_or_else(|| vec![self.workers; order])
    }
}

/// Result of a distributed decomposition.
#[derive(Debug, Clone)]
pub struct DistOutput {
    /// The CP decomposition of the current snapshot.
    pub kruskal: KruskalTensor,
    /// ALS iterations executed.
    pub iterations: usize,
    /// Eq. 4 loss after each iteration.
    pub loss_trace: Vec<f64>,
    /// Network traffic of the iteration phase (bytes/messages/collectives).
    pub comm: CommStatsSnapshot,
    /// Bytes required to stage the data: tensor partitions plus the factor
    /// rows each worker caches (the `O(nnz + NIR + NdR)` of Theorem 4).
    pub setup_bytes: u64,
    /// Wall-clock of the whole call (partitioning + iterations + gather).
    pub elapsed: Duration,
    /// Wall-clock of the ALS iteration loop alone.
    pub iter_elapsed: Duration,
}

impl DistOutput {
    /// Average time per ALS iteration — the paper's reported metric.
    pub fn time_per_iter(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.iter_elapsed / self.iterations as u32
        }
    }
}

/// Per-worker placement plan, precomputed once per snapshot.
struct WorkerPlan {
    /// This worker's nonzeros (global coordinates).
    local: SparseTensor,
    /// Rows of each mode whose factor entries this worker owns and updates.
    owned_rows: Vec<Vec<u32>>,
    /// `partial_routes[n][d]`: mode-`n` rows this worker's nonzeros
    /// reference that worker `d` owns (partials flow here → `d`, updates
    /// flow back `d` → here).
    partial_routes: Vec<Vec<Vec<u32>>>,
    /// `serve_routes[n][d]`: mode-`n` rows worker `d` references that this
    /// worker owns (mirror of `d`'s `partial_routes[n][me]`).
    serve_routes: Vec<Vec<Vec<u32>>>,
}

/// Runs distributed DisMASTD: DTD over the complement tensor given the
/// previous snapshot's factors.
///
/// # Errors
/// Propagates configuration, partitioning, and numerical errors.
pub fn dismastd(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
) -> Result<DistOutput> {
    run_distributed(complement, old_factors, cfg, cluster)
}

/// Runs the DMS-MG baseline: distributed static CP-ALS over the full
/// tensor, re-computing from scratch (no history reuse).
///
/// # Errors
/// Propagates configuration, partitioning, and numerical errors.
pub fn dms_mg(
    full: &SparseTensor,
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
) -> Result<DistOutput> {
    let zero_old: Vec<Matrix> = (0..full.order())
        .map(|_| Matrix::zeros(0, cfg.rank))
        .collect();
    run_distributed(full, &zero_old, cfg, cluster)
}

fn run_distributed(
    tensor: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
) -> Result<DistOutput> {
    cfg.validate().map_err(TensorError::InvalidArgument)?;
    if cluster.workers == 0 {
        return Err(TensorError::InvalidArgument(
            "cluster needs at least one worker".into(),
        ));
    }
    let start = Instant::now();
    let order = tensor.order();
    let world = cluster.workers;
    let rank = cfg.rank;
    let old_rows: Vec<usize> = old_factors.iter().map(Matrix::rows).collect();

    // ---- Data partitioning (Sec. IV-A) ----------------------------------
    let parts = cluster.resolved_parts(order);
    let grid = GridPartition::build_with(
        tensor,
        cluster.partitioner,
        &parts,
        world,
        cluster.cell_assignment,
    )?;
    let plans = Arc::new(build_plans(tensor, &grid, world)?);

    // Shared read-only inputs.
    let init = Arc::new(init_factors(old_factors, tensor.shape(), rank, cfg.seed)?);
    let old = Arc::new(old_factors.to_vec());
    let old_norm_sq = if old_rows.iter().all(|&r| r > 0) {
        let grams: Vec<Matrix> = old_factors.iter().map(Matrix::gram).collect();
        let refs: Vec<&Matrix> = grams.iter().collect();
        grand_sum_hadamard(&refs)?
    } else {
        0.0
    };
    let tensor_norm_sq = tensor.norm_sq();

    let setup_bytes = setup_bytes(&plans, order, rank);

    // ---- Distributed tensor decomposition (Sec. IV-B) -------------------
    let cfg = *cfg;
    let old_rows_arc = Arc::new(old_rows.clone());
    let (mut results, comm) = Cluster::run_with_stats(world, |ctx| {
        worker_body(
            ctx,
            &plans,
            &init,
            &old,
            &old_rows_arc,
            &cfg,
            old_norm_sq,
            tensor_norm_sq,
        )
    });

    let WorkerResult {
        loss_trace,
        iterations,
        factors,
        iter_elapsed,
    } = results.swap_remove(0);
    let factors = factors.expect("rank 0 assembles the final factors")?;

    Ok(DistOutput {
        kruskal: KruskalTensor::new(factors)?,
        iterations,
        loss_trace,
        comm,
        setup_bytes,
        elapsed: start.elapsed(),
        iter_elapsed,
    })
}

struct WorkerResult {
    loss_trace: Vec<f64>,
    iterations: usize,
    /// `Some` on rank 0 only: the gathered final factors.
    factors: Option<Result<Vec<Matrix>>>,
    iter_elapsed: Duration,
}

#[allow(clippy::too_many_arguments)]
fn worker_body(
    ctx: &mut WorkerCtx,
    plans: &Arc<Vec<WorkerPlan>>,
    init: &Arc<Vec<Matrix>>,
    old: &Arc<Vec<Matrix>>,
    old_rows: &Arc<Vec<usize>>,
    cfg: &DecompConfig,
    old_norm_sq: f64,
    tensor_norm_sq: f64,
) -> WorkerResult {
    let me = ctx.rank();
    let world = ctx.world();
    let plan = &plans[me];
    let order = init.len();
    let r = cfg.rank;
    let mu = cfg.forgetting;

    // Replicated factor copies; only owned ∪ referenced rows stay fresh.
    let mut factors: Vec<Matrix> = init.as_ref().clone();

    // Replicated RxR state, rebuilt by all-reduce from owned-row partials so
    // every worker agrees bit-for-bit.
    let mut state = GramState {
        gram0: vec![Matrix::zeros(r, r); order],
        gram1: vec![Matrix::zeros(r, r); order],
        cross: vec![Matrix::zeros(r, r); order],
    };
    for n in 0..order {
        let (g0, g1, cr) = local_gram_partials(&factors[n], &old[n], &plan.owned_rows[n], old_rows[n], r);
        let reduced = allreduce_grams(ctx, &g0, &g1, &cr);
        state.gram0[n] = reduced.0;
        state.gram1[n] = reduced.1;
        state.cross[n] = reduced.2;
    }

    let mut loss_trace: Vec<f64> = Vec::with_capacity(cfg.max_iters);
    let mut iterations = 0;
    let iter_start = Instant::now();
    let mut hat = vec![Matrix::zeros(0, 0); order];
    for n in 0..order {
        hat[n] = Matrix::zeros(factors[n].rows(), r);
    }

    for _iter in 0..cfg.max_iters {
        let mut inner_partial = 0.0;
        for n in 0..order {
            // -- 1. local MTTKRP partials over this worker's nonzeros -----
            hat[n].fill_zero();
            mttkrp_into(&plan.local, &factors, n, &mut hat[n])
                .expect("plans validated against factor shapes");

            // -- route partials to row owners ------------------------------
            let outgoing: Vec<Payload> = (0..world)
                .map(|d| {
                    if d == me {
                        Payload::Empty
                    } else {
                        Payload::F64(pack_rows(&hat[n], &plan.partial_routes[n][d]))
                    }
                })
                .collect();
            let incoming = ctx.exchange(outgoing);
            for (d, payload) in incoming.into_iter().enumerate() {
                if d == me {
                    continue;
                }
                let data = payload.into_f64();
                add_rows(&mut hat[n], &plan.serve_routes[n][d], &data);
            }

            // -- 2. owners update their rows (Eq. 5, row-wise) -------------
            let totals: Vec<Matrix> = (0..order)
                .map(|k| state.total(k).expect("gram shapes agree"))
                .collect();
            let d1 = hadamard_skip(&totals, n).expect("order >= 2");
            let d0 = {
                let g0_had = hadamard_skip(&state.gram0, n).expect("order >= 2");
                d1.sub(&g0_had.scale(1.0 - mu)).expect("same shape")
            };
            let f1 = Factorized::new(&d1).expect("denominator invertible");
            let f0 = Factorized::new(&d0).expect("denominator invertible");
            let cross_had = hadamard_skip(&state.cross, n).expect("order >= 2");
            let old_n = old_rows[n];
            let mut row_buf = vec![0.0f64; r];
            for &row in &plan.owned_rows[n] {
                let row = row as usize;
                if row < old_n {
                    // μ Ã_n[i,:] (⊛ G̃) + Â[i,:], then ·D0⁻¹.
                    let old_row = old[n].row(row);
                    for (c, slot) in row_buf.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (f, &ov) in old_row.iter().enumerate() {
                            acc += ov * cross_had.get(f, c);
                        }
                        *slot = mu * acc + hat[n].get(row, c);
                    }
                    f0.solve_in_place(&mut row_buf);
                } else {
                    row_buf.copy_from_slice(hat[n].row(row));
                    f1.solve_in_place(&mut row_buf);
                }
                factors[n].row_mut(row).copy_from_slice(&row_buf);
            }

            // -- ship refreshed rows back to referencing workers ------------
            let outgoing: Vec<Payload> = (0..world)
                .map(|d| {
                    if d == me {
                        Payload::Empty
                    } else {
                        Payload::F64(pack_rows(&factors[n], &plan.serve_routes[n][d]))
                    }
                })
                .collect();
            let incoming = ctx.exchange(outgoing);
            for (d, payload) in incoming.into_iter().enumerate() {
                if d == me {
                    continue;
                }
                let data = payload.into_f64();
                write_rows(&mut factors[n], &plan.partial_routes[n][d], &data);
            }

            // -- 3. rebuild the RxR products by all-reduce ------------------
            let (g0, g1, cr) =
                local_gram_partials(&factors[n], &old[n], &plan.owned_rows[n], old_n, r);
            let reduced = allreduce_grams(ctx, &g0, &g1, &cr);
            state.gram0[n] = reduced.0;
            state.gram1[n] = reduced.1;
            state.cross[n] = reduced.2;

            // -- 4. loss reuse: data inner product from the final mode -----
            if n == order - 1 {
                inner_partial = plan.owned_rows[n]
                    .iter()
                    .map(|&row| {
                        let row = row as usize;
                        dot(hat[n].row(row), factors[n].row(row))
                    })
                    .sum();
            }
        }
        iterations += 1;
        let inner = ctx.allreduce_sum_scalar(inner_partial);
        let loss = dtd_loss(
            &state,
            &LossParts {
                mu,
                old_norm_sq,
                complement_norm_sq: tensor_norm_sq,
                inner,
            },
        )
        .expect("replicated gram state is consistent");
        loss_trace.push(loss);
        if converged(&loss_trace, cfg.tolerance) {
            break;
        }
    }
    let iter_elapsed = iter_start.elapsed();

    // ---- gather the owned rows of every factor to rank 0 ----------------
    let factors_out = gather_factors(ctx, plans, &factors, init);

    WorkerResult {
        loss_trace,
        iterations,
        factors: factors_out,
        iter_elapsed,
    }
}

/// Packs the listed rows of `m` into one contiguous buffer.
fn pack_rows(m: &Matrix, rows: &[u32]) -> Vec<f64> {
    let r = m.cols();
    let mut out = Vec::with_capacity(rows.len() * r);
    for &row in rows {
        out.extend_from_slice(m.row(row as usize));
    }
    out
}

/// Adds packed rows into `m` at the listed positions.
fn add_rows(m: &mut Matrix, rows: &[u32], data: &[f64]) {
    let r = m.cols();
    debug_assert_eq!(data.len(), rows.len() * r);
    for (i, &row) in rows.iter().enumerate() {
        let dst = m.row_mut(row as usize);
        for (d, &s) in dst.iter_mut().zip(&data[i * r..(i + 1) * r]) {
            *d += s;
        }
    }
}

/// Overwrites rows of `m` at the listed positions with packed data.
fn write_rows(m: &mut Matrix, rows: &[u32], data: &[f64]) {
    let r = m.cols();
    debug_assert_eq!(data.len(), rows.len() * r);
    for (i, &row) in rows.iter().enumerate() {
        m.row_mut(row as usize)
            .copy_from_slice(&data[i * r..(i + 1) * r]);
    }
}

/// Partial Grams over this worker's owned rows: `(G⁰, G¹, G̃)` contributions
/// (the row-wise partial products of Sec. IV-B3).
fn local_gram_partials(
    factor: &Matrix,
    old: &Matrix,
    owned: &[u32],
    old_n: usize,
    r: usize,
) -> (Matrix, Matrix, Matrix) {
    let mut g0 = Matrix::zeros(r, r);
    let mut g1 = Matrix::zeros(r, r);
    let mut cr = Matrix::zeros(r, r);
    for &row in owned {
        let row = row as usize;
        let a = factor.row(row);
        let target = if row < old_n { &mut g0 } else { &mut g1 };
        for (p, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = target.row_mut(p);
            for (o, &bv) in out_row.iter_mut().zip(a) {
                *o += av * bv;
            }
        }
        if row < old_n {
            let o = old.row(row);
            for (p, &ov) in o.iter().enumerate() {
                if ov == 0.0 {
                    continue;
                }
                let out_row = cr.row_mut(p);
                for (c, &av) in out_row.iter_mut().zip(a) {
                    *c += ov * av;
                }
            }
        }
    }
    (g0, g1, cr)
}

/// All-reduces the three RxR partials in one fused buffer (one collective,
/// `3R²` values — the `O(MNR²)` term of Theorem 4).
fn allreduce_grams(
    ctx: &mut WorkerCtx,
    g0: &Matrix,
    g1: &Matrix,
    cr: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let r = g0.rows();
    let mut buf = Vec::with_capacity(3 * r * r);
    buf.extend_from_slice(g0.as_slice());
    buf.extend_from_slice(g1.as_slice());
    buf.extend_from_slice(cr.as_slice());
    ctx.allreduce_sum(&mut buf);
    let g0 = Matrix::from_vec(r, r, buf[0..r * r].to_vec()).expect("size fixed");
    let g1 = Matrix::from_vec(r, r, buf[r * r..2 * r * r].to_vec()).expect("size fixed");
    let cr = Matrix::from_vec(r, r, buf[2 * r * r..].to_vec()).expect("size fixed");
    (g0, g1, cr)
}

/// Gathers every worker's owned rows to rank 0 and assembles the final
/// factor matrices there.
fn gather_factors(
    ctx: &mut WorkerCtx,
    plans: &Arc<Vec<WorkerPlan>>,
    factors: &[Matrix],
    init: &Arc<Vec<Matrix>>,
) -> Option<Result<Vec<Matrix>>> {
    let me = ctx.rank();
    let order = factors.len();
    // One payload: all owned rows of all modes, concatenated.
    let mut packed = Vec::new();
    for (n, f) in factors.iter().enumerate() {
        packed.extend(pack_rows(f, &plans[me].owned_rows[n]));
    }
    let gathered = ctx.gather(0, Payload::F64(packed));
    let gathered = gathered?; // None on non-root ranks
    let mut out: Vec<Matrix> = (0..order)
        .map(|n| Matrix::zeros(init[n].rows(), init[n].cols()))
        .collect();
    for (src, payload) in gathered.into_iter().enumerate() {
        let data = payload.into_f64();
        let mut offset = 0usize;
        for (n, f) in out.iter_mut().enumerate() {
            let rows = &plans[src].owned_rows[n];
            let len = rows.len() * f.cols();
            write_rows(f, rows, &data[offset..offset + len]);
            offset += len;
        }
    }
    Some(Ok(out))
}

/// Splits the tensor over workers and derives row ownership and the
/// partial/update routing tables.
fn build_plans(
    tensor: &SparseTensor,
    grid: &GridPartition,
    world: usize,
) -> Result<Vec<WorkerPlan>> {
    let order = tensor.order();
    // Per-worker nonzeros.
    let mut builders: Vec<SparseTensorBuilder> = (0..world)
        .map(|_| SparseTensorBuilder::new(tensor.shape().to_vec()))
        .collect();
    // Per-worker, per-mode referenced-row sets.
    let mut needed: Vec<Vec<Vec<bool>>> = (0..world)
        .map(|_| tensor.shape().iter().map(|&s| vec![false; s]).collect())
        .collect();
    for (idx, v) in tensor.iter() {
        let w = grid.worker_of(idx);
        builders[w].push(idx, v)?;
        for (n, &i) in idx.iter().enumerate() {
            needed[w][n][i] = true;
        }
    }

    // Row ownership: every row of every mode has exactly one owner.
    let mut owned_rows: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); order]; world];
    let mut owner_of: Vec<Vec<u32>> = Vec::with_capacity(order);
    for n in 0..order {
        let mut owners = Vec::with_capacity(tensor.shape()[n]);
        for row in 0..tensor.shape()[n] {
            let w = grid.row_owner(n, row);
            owners.push(w as u32);
            owned_rows[w][n].push(row as u32);
        }
        owner_of.push(owners);
    }

    // Routing tables.
    let mut plans = Vec::with_capacity(world);
    let mut partial_routes_all: Vec<Vec<Vec<Vec<u32>>>> =
        vec![vec![vec![Vec::new(); world]; order]; world];
    for (w, worker_needed) in needed.iter().enumerate() {
        for n in 0..order {
            for (row, &is_needed) in worker_needed[n].iter().enumerate() {
                if !is_needed {
                    continue;
                }
                let owner = owner_of[n][row] as usize;
                if owner != w {
                    partial_routes_all[w][n][owner].push(row as u32);
                }
            }
        }
    }
    // Materialise all serve routes before consuming the partial routes —
    // worker w serves exactly what each peer d routes to w.
    let serve_routes_all: Vec<Vec<Vec<Vec<u32>>>> = (0..world)
        .map(|w| {
            (0..order)
                .map(|n| {
                    (0..world)
                        .map(|d| partial_routes_all[d][n][w].clone())
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut serve_routes_all = serve_routes_all;
    for (w, builder) in builders.into_iter().enumerate() {
        let serve_routes = std::mem::take(&mut serve_routes_all[w]);
        plans.push(WorkerPlan {
            local: builder.build()?,
            owned_rows: std::mem::take(&mut owned_rows[w]),
            partial_routes: std::mem::take(&mut partial_routes_all[w]),
            serve_routes,
        });
    }
    Ok(plans)
}

/// Bytes needed to stage the computation (Theorem 4's data-distribution
/// terms): each worker's tensor partition in coordinate format plus every
/// factor row it references or owns.
fn setup_bytes(plans: &[WorkerPlan], order: usize, rank: usize) -> u64 {
    let mut total = 0u64;
    for plan in plans {
        // Coordinate format: N indices + 1 value per nonzero.
        total += plan.local.nnz() as u64 * (order as u64 + 1) * 8;
        for n in 0..order {
            let mut rows = plan.owned_rows[n].len() as u64;
            for d in 0..plans.len() {
                rows += plan.partial_routes[n][d].len() as u64;
            }
            total += rows * rank as u64 * 8;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::cp_als;
    use crate::dtd::dtd;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
        }
        b.build().unwrap()
    }

    fn random_complement(
        old_shape: &[usize],
        new_shape: &[usize],
        nnz: usize,
        seed: u64,
    ) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(new_shape.to_vec());
        let mut placed = 0;
        while placed < nnz {
            let idx: Vec<usize> = new_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            if SparseTensor::block_of(&idx, old_shape) == 0 {
                continue;
            }
            b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
            placed += 1;
        }
        b.build().unwrap()
    }

    fn cfg() -> DecompConfig {
        DecompConfig::default().with_rank(3).with_max_iters(6).with_seed(5)
    }

    #[test]
    fn single_worker_matches_serial_exactly_in_loss() {
        let old_shape = [4usize, 4, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            old_shape.iter().map(|&s| Matrix::random(s, 3, &mut rng)).collect()
        };
        let x = random_complement(&old_shape, &[6, 6, 5], 50, 2);
        let serial = dtd(&x, &old, &cfg()).unwrap();
        let dist = dismastd(&x, &old, &cfg(), &ClusterConfig::new(1)).unwrap();
        assert_eq!(serial.loss_trace.len(), dist.loss_trace.len());
        for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
        // One worker ⇒ zero network bytes.
        assert_eq!(dist.comm.bytes, 0);
    }

    #[test]
    fn multi_worker_matches_serial_within_fp_tolerance() {
        let old_shape = [4usize, 5, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            old_shape.iter().map(|&s| Matrix::random(s, 3, &mut rng)).collect()
        };
        let x = random_complement(&old_shape, &[8, 8, 6], 120, 4);
        let serial = dtd(&x, &old, &cfg()).unwrap();
        for workers in [2usize, 3, 4] {
            for p in [Partitioner::Gtp, Partitioner::Mtp] {
                let dist = dismastd(
                    &x,
                    &old,
                    &cfg(),
                    &ClusterConfig::new(workers).with_partitioner(p),
                )
                .unwrap();
                for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
                    assert!(
                        (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                        "workers={workers} {p:?}: {a} vs {b}"
                    );
                }
                // Factors agree too (same fixed point trajectory).
                for (fs, fd) in serial
                    .kruskal
                    .factors()
                    .iter()
                    .zip(dist.kruskal.factors())
                {
                    assert!(fs.max_abs_diff(fd).unwrap() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn dms_mg_matches_serial_als() {
        let x = random_tensor(&[7, 6, 5], 80, 6);
        let serial = cp_als(&x, &cfg()).unwrap();
        let dist = dms_mg(&x, &cfg(), &ClusterConfig::new(3)).unwrap();
        for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn multi_worker_communicates_single_does_not() {
        let x = random_tensor(&[8, 8, 8], 100, 7);
        let one = dms_mg(&x, &cfg(), &ClusterConfig::new(1)).unwrap();
        let four = dms_mg(&x, &cfg(), &ClusterConfig::new(4)).unwrap();
        assert_eq!(one.comm.bytes, 0);
        assert!(four.comm.bytes > 0);
        assert!(four.comm.collectives > 0);
        assert!(four.setup_bytes >= one.setup_bytes);
    }

    #[test]
    fn loss_monotone_distributed() {
        let old_shape = [3usize, 3, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            old_shape.iter().map(|&s| Matrix::random(s, 2, &mut rng)).collect()
        };
        let x = random_complement(&old_shape, &[6, 6, 6], 70, 9);
        let out = dismastd(
            &x,
            &old,
            &DecompConfig::default().with_rank(2).with_max_iters(10),
            &ClusterConfig::new(3),
        )
        .unwrap();
        for w in out.loss_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()), "{:?}", out.loss_trace);
        }
    }

    #[test]
    fn parts_per_mode_override_works() {
        let x = random_tensor(&[10, 10, 10], 150, 10);
        let out = dms_mg(
            &x,
            &cfg(),
            &ClusterConfig::new(2).with_parts_per_mode(vec![5, 5, 5]),
        )
        .unwrap();
        assert_eq!(out.iterations, 6);
        assert!(out.loss_trace.last().unwrap().is_finite());
    }

    #[test]
    fn rejects_zero_workers() {
        let x = random_tensor(&[4, 4], 10, 11);
        assert!(dms_mg(&x, &cfg(), &ClusterConfig {
            workers: 0,
            partitioner: Partitioner::Mtp,
            parts_per_mode: None,
            cell_assignment: CellAssignment::BlockGrid,
        })
        .is_err());
    }

    #[test]
    fn time_per_iter_accounting() {
        let x = random_tensor(&[6, 6, 6], 60, 12);
        let out = dms_mg(&x, &cfg(), &ClusterConfig::new(2)).unwrap();
        assert_eq!(out.iterations, 6);
        assert!(out.time_per_iter() <= out.iter_elapsed);
        assert!(out.elapsed >= out.iter_elapsed);
    }

    #[test]
    fn empty_complement_distributed() {
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            [3usize, 3].iter().map(|&s| Matrix::random(s, 2, &mut rng)).collect()
        };
        let x = SparseTensor::empty(vec![5, 5]).unwrap();
        let out = dismastd(
            &x,
            &old,
            &DecompConfig::default().with_rank(2).with_max_iters(3),
            &ClusterConfig::new(2),
        )
        .unwrap();
        assert_eq!(out.kruskal.shape(), vec![5, 5]);
    }
}

//! Distributed DisMASTD (Sec. IV-B) on the simulated cluster.
//!
//! One engine drives both of the paper's distributed methods:
//!
//! * **DisMASTD** ([`dismastd`]) — DTD over the complement `X \ X̃` with the
//!   previous snapshot's factors;
//! * **DMS-MG** ([`dms_mg`]) — the static medium-grained baseline, obtained
//!   as the zero-history special case (re-decompose the *full* tensor from
//!   scratch; every row is a "new" row).
//!
//! Execution per iteration and mode follows the paper exactly:
//!
//! 1. **Distributed MTTKRP** (Sec. IV-B1): each worker computes partial
//!    MTTKRP rows from its grid cells, then routes the partials of rows it
//!    does not own to the row owners (one all-to-all exchange).
//! 2. **Distributed factor update** (Sec. IV-B2): row owners apply the
//!    Eq. 5 row-wise rules using the cached `R x R` products, then ship the
//!    refreshed rows back to every worker whose nonzeros reference them
//!    (second exchange).
//! 3. **Distributed matrix-product update** (Sec. IV-B3): owners compute
//!    partial Grams over their rows and an all-reduce rebuilds
//!    `G_n^0, G_n^1, G̃_n` on every worker.
//! 4. **Distributed loss** (Sec. IV-B4): the `R x R` terms are evaluated
//!    locally from the replicated products; the data-dependent inner product
//!    reuses the final mode's MTTKRP partial rows and needs only a scalar
//!    all-reduce.

use crate::config::DecompConfig;
use crate::dtd::{converged, init_factors};
use crate::loss::{dtd_loss, GramState, LossParts};
use dismastd_cluster::{
    decode_rows, maybe_compress, BufferPool, Cluster, ClusterError, ClusterOptions, ClusterResult,
    CommPolicy, CommStatsSnapshot, Framed, Payload, PendingExchange, WorkerCtx,
};
use dismastd_obs::MetricsSnapshot;
use dismastd_partition::CellStats;
use dismastd_partition::{CellAssignment, GridPartition, Partitioner};
use dismastd_tensor::layout::fingerprint;
use dismastd_tensor::linalg::Factorized;
use dismastd_tensor::matrix::{dot, Matrix};
use dismastd_tensor::ops::{grand_sum_hadamard, hadamard_skip};
use dismastd_tensor::{AdaptivePolicy, CellKernel, LayoutChoice, ThreadPool};
use dismastd_tensor::{
    KruskalTensor, NumericsReport, Result, RobustSolver, SolveDecision, SparseTensor,
    SparseTensorBuilder, TensorError,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
// lint:allow(determinism): Instant feeds wall-clock fields of StepReport only, never factor math
use std::time::{Duration, Instant};

/// Cluster-side configuration: worker count and partitioning strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClusterConfig {
    /// Number of simulated worker nodes `M`.
    pub workers: usize,
    /// Tensor partitioning heuristic (GTP or MTP).
    pub partitioner: Partitioner,
    /// Partitions per mode `p_n`.  `None` uses the paper's empirical guide
    /// of one partition per node in every mode (Sec. V-B2).
    pub parts_per_mode: Option<Vec<usize>>,
    /// Cell→worker placement strategy (medium-grain block grid by default;
    /// `Scatter` trades locality for balance — an ablation knob).
    pub cell_assignment: CellAssignment,
    /// Recycle per-worker message buffers across iterations (on by
    /// default).  Pooling only reuses `Vec` capacity, so traffic counters
    /// are bit-identical either way; the flag exists as a baseline for
    /// benchmarks and the accounting-invariance test.
    pub pooling: bool,
    /// Collective-layer policy: frame compression, the opt-in f32 row
    /// downcast (gated on the divergence watchdog), and the allreduce
    /// algorithm for the Gram reductions.  The default is seed-safe: with
    /// `downcast_f32` off the factors are bit-identical to the flat path.
    pub comm: CommPolicy,
}

// Hand-written so checkpoints from before the collective-layer rework —
// which lack the `comm` field — still restore (the field defaults).
impl Deserialize for ClusterConfig {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::new("expected object for `ClusterConfig`"))?;
        Ok(ClusterConfig {
            workers: Deserialize::from_value(serde::field(obj, "workers")?)?,
            partitioner: Deserialize::from_value(serde::field(obj, "partitioner")?)?,
            parts_per_mode: Deserialize::from_value(serde::field(obj, "parts_per_mode")?)?,
            cell_assignment: Deserialize::from_value(serde::field(obj, "cell_assignment")?)?,
            pooling: Deserialize::from_value(serde::field(obj, "pooling")?)?,
            comm: match serde::field(obj, "comm") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => CommPolicy::default(),
            },
        })
    }
}

impl ClusterConfig {
    /// `workers` nodes with MTP partitioning and default partition counts.
    pub fn new(workers: usize) -> Self {
        ClusterConfig {
            workers,
            partitioner: Partitioner::Mtp,
            parts_per_mode: None,
            cell_assignment: CellAssignment::BlockGrid,
            pooling: true,
            comm: CommPolicy::default(),
        }
    }

    /// Selects the cell→worker placement strategy.
    pub fn with_cell_assignment(mut self, a: CellAssignment) -> Self {
        self.cell_assignment = a;
        self
    }

    /// Selects the collective-layer policy (compression, downcast,
    /// allreduce algorithm).
    pub fn with_comm(mut self, comm: CommPolicy) -> Self {
        self.comm = comm;
        self
    }

    /// Enables or disables message-buffer pooling.
    pub fn with_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Selects the partitioner.
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Overrides the per-mode partition counts.
    pub fn with_parts_per_mode(mut self, parts: Vec<usize>) -> Self {
        self.parts_per_mode = Some(parts);
        self
    }

    pub(crate) fn resolved_parts(&self, order: usize) -> Vec<usize> {
        self.parts_per_mode
            .clone()
            .unwrap_or_else(|| vec![self.workers; order])
    }
}

/// Result of a distributed decomposition.
#[derive(Debug, Clone)]
pub struct DistOutput {
    /// The CP decomposition of the current snapshot.
    pub kruskal: KruskalTensor,
    /// ALS iterations executed.
    pub iterations: usize,
    /// Eq. 4 loss after each iteration.
    pub loss_trace: Vec<f64>,
    /// Network traffic of the iteration phase (bytes/messages/collectives).
    pub comm: CommStatsSnapshot,
    /// Bytes required to stage the data: tensor partitions plus the factor
    /// rows each worker caches (the `O(nnz + NIR + NdR)` of Theorem 4).
    pub setup_bytes: u64,
    /// Wall-clock of the whole call (partitioning + iterations + gather).
    pub elapsed: Duration,
    /// Wall-clock of the ALS iteration loop alone.
    pub iter_elapsed: Duration,
    /// Solver-tier escalations of the normal-equation solves.  Decisions
    /// are made once (rank 0) and broadcast, so this is also what every
    /// other rank applied.
    pub numerics: NumericsReport,
    /// Every rank's per-phase metrics merged into one snapshot, present
    /// when the *driver* thread had a metrics collection installed (see
    /// `dismastd_obs::begin`) when the call started.  Span totals therefore
    /// sum concurrent per-rank time and can exceed wall-clock; the
    /// `comm/msg_bytes` histogram reconciles exactly with [`Self::comm`].
    /// Driver-side preparation spans (partitioning, plan builds) land in
    /// the caller's own registry instead.
    pub metrics: Option<MetricsSnapshot>,
    /// Every rank's per-phase metrics, indexed by rank (empty when
    /// collection was off).
    pub worker_metrics: Vec<MetricsSnapshot>,
}

impl DistOutput {
    /// Average time per ALS iteration — the paper's reported metric.
    pub fn time_per_iter(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.iter_elapsed / self.iterations as u32
        }
    }
}

/// Cache of per-cell MTTKRP kernels keyed by grid-cell content.
///
/// The driver compiles one [`CellKernel`] per non-empty grid cell at
/// partitioning time — the adaptive layout selector picks the COO kernel
/// or a sorted-run plan from the cell's `partition::stats::CellStats` —
/// and the kernel is then reused by every iteration and mode of the
/// decomposition.  Holding the cache across calls (see
/// [`dismastd_with_cache`]) extends the reuse across *stream steps*: a
/// cell whose nonzeros did not change between snapshots hashes to the same
/// [`fingerprint`] and keeps its kernel (and its layout choice), so only
/// cells touched by the update are re-selected and re-sorted.
///
/// After every build the cache drops entries whose cells are no longer
/// present, so its size is bounded by the live cell count.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: BTreeMap<u64, Arc<CellKernel>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cells served from cache across the cache's lifetime.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cells that required a fresh layout build.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cached cells per layout choice, `(coo, plan)` — stamped into bench
    /// rows so recorded numbers say which kernels produced them.
    pub fn layout_counts(&self) -> (usize, usize) {
        let coo = self
            .entries
            .values()
            .filter(|k| k.choice() == LayoutChoice::NaiveCoo)
            .count();
        (coo, self.entries.len() - coo)
    }

    /// Kernel for `cell`, selecting and building (and retaining) it on
    /// first sight.  The layout decision feeds on the cell's
    /// [`CellStats`]; plan builds run on `pool`.
    fn get_or_build(
        &mut self,
        cell: SparseTensor,
        policy: &AdaptivePolicy,
        pool: &ThreadPool,
    ) -> Result<(u64, Arc<CellKernel>)> {
        let key = fingerprint(&cell);
        if let Some(kernel) = self.entries.get(&key) {
            self.hits += 1;
            return Ok((key, Arc::clone(kernel)));
        }
        self.misses += 1;
        let stats = CellStats::measure(cell.shape(), cell.nnz());
        let choice = policy.choose_measured(stats.nnz, stats.max_dim, stats.slice_density);
        let kernel = Arc::new(CellKernel::build(cell, choice, pool)?);
        self.entries.insert(key, Arc::clone(&kernel));
        Ok((key, kernel))
    }

    /// Evicts every entry whose key is not in `live`.
    fn retain_live(&mut self, live: &[u64]) {
        let live: std::collections::BTreeSet<u64> = live.iter().copied().collect();
        self.entries.retain(|k, _| live.contains(k));
    }

    /// Drops every cached plan, returning how many were evicted.  Called on
    /// membership changes: the grid (and therefore every cell's contents)
    /// is re-derived for the new world size, so no cached layout can be
    /// trusted to match a cell of the new partitioning.
    pub fn invalidate_all(&mut self) -> usize {
        let evicted = self.entries.len();
        self.entries.clear();
        evicted
    }
}

/// Per-worker placement plan, precomputed once per snapshot.
struct WorkerPlan {
    /// Compiled MTTKRP kernels of this worker's grid cells (COO or
    /// sorted-run, per the adaptive selector); executing them back to back
    /// accumulates exactly this worker's local partials.
    cells: Vec<Arc<CellKernel>>,
    /// Nonzeros across this worker's cells.
    local_nnz: usize,
    /// Rows of each mode whose factor entries this worker owns and updates.
    owned_rows: Vec<Vec<u32>>,
    /// `partial_routes[n][d]`: mode-`n` rows this worker's nonzeros
    /// reference that worker `d` owns (partials flow here → `d`, updates
    /// flow back `d` → here).
    partial_routes: Vec<Vec<Vec<u32>>>,
    /// `serve_routes[n][d]`: mode-`n` rows worker `d` references that this
    /// worker owns (mirror of `d`'s `partial_routes[n][me]`).
    serve_routes: Vec<Vec<Vec<u32>>>,
}

/// Runs distributed DisMASTD: DTD over the complement tensor given the
/// previous snapshot's factors.
///
/// # Errors
/// Propagates configuration, partitioning, and numerical errors.
pub fn dismastd(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
) -> Result<DistOutput> {
    run_distributed(
        complement,
        old_factors,
        cfg,
        cluster,
        &ClusterOptions::default(),
        &mut PlanCache::new(),
    )
}

/// [`dismastd`] with a caller-owned [`PlanCache`], so MTTKRP layouts for
/// unchanged grid cells survive across stream steps.  The streaming
/// session uses this entry point; one-shot callers can stay on
/// [`dismastd`].
///
/// # Errors
/// As for [`dismastd`].
pub fn dismastd_with_cache(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
    cache: &mut PlanCache,
) -> Result<DistOutput> {
    run_distributed(
        complement,
        old_factors,
        cfg,
        cluster,
        &ClusterOptions::default(),
        cache,
    )
}

/// [`dismastd_with_cache`] with explicit [`ClusterOptions`] — receive
/// deadlines and (for chaos testing) a deterministic fault plan.  A worker
/// crash or timeout surfaces as [`TensorError::ClusterFault`] rather than a
/// hang, which is what the streaming session's restore-and-replay driver
/// catches.
///
/// # Errors
/// As for [`dismastd`], plus [`TensorError::ClusterFault`] when the
/// cluster fails mid-decomposition.
pub fn dismastd_with_opts(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
    opts: &ClusterOptions,
    cache: &mut PlanCache,
) -> Result<DistOutput> {
    run_distributed(complement, old_factors, cfg, cluster, opts, cache)
}

/// Runs the DMS-MG baseline: distributed static CP-ALS over the full
/// tensor, re-computing from scratch (no history reuse).
///
/// # Errors
/// Propagates configuration, partitioning, and numerical errors.
pub fn dms_mg(
    full: &SparseTensor,
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
) -> Result<DistOutput> {
    dms_mg_with_cache(full, cfg, cluster, &mut PlanCache::new())
}

/// [`dms_mg`] with a caller-owned [`PlanCache`] (see
/// [`dismastd_with_cache`]).
///
/// # Errors
/// As for [`dms_mg`].
pub fn dms_mg_with_cache(
    full: &SparseTensor,
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
    cache: &mut PlanCache,
) -> Result<DistOutput> {
    dms_mg_with_opts(full, cfg, cluster, &ClusterOptions::default(), cache)
}

/// [`dms_mg_with_cache`] with explicit [`ClusterOptions`] (see
/// [`dismastd_with_opts`]).
///
/// # Errors
/// As for [`dms_mg`], plus [`TensorError::ClusterFault`] when the cluster
/// fails mid-decomposition.
pub fn dms_mg_with_opts(
    full: &SparseTensor,
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
    opts: &ClusterOptions,
    cache: &mut PlanCache,
) -> Result<DistOutput> {
    let zero_old: Vec<Matrix> = (0..full.order())
        .map(|_| Matrix::zeros(0, cfg.rank))
        .collect();
    run_distributed(full, &zero_old, cfg, cluster, opts, cache)
}

/// Maps a [`ClusterError`] onto [`TensorError::ClusterFault`], attributing
/// the fault to the rank the heal ladder should charge: the crashed worker,
/// the peer a timeout was waiting on, or the rank that contributed a
/// mis-sized collective buffer.  `TypeMismatch` is a protocol bug with no
/// sensible culprit, so it stays unattributed.
fn cluster_fault(e: ClusterError) -> TensorError {
    let rank = match &e {
        ClusterError::PeerCrashed { rank, .. } => Some(*rank),
        ClusterError::Timeout { src, .. } => Some(*src),
        ClusterError::SizeMismatch { rank, .. } => Some(*rank),
        ClusterError::TypeMismatch { .. } => None,
    };
    TensorError::ClusterFault {
        rank,
        detail: e.to_string(),
    }
}

fn run_distributed(
    tensor: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
    cluster: &ClusterConfig,
    opts: &ClusterOptions,
    cache: &mut PlanCache,
) -> Result<DistOutput> {
    cfg.validate().map_err(TensorError::InvalidArgument)?;
    if cluster.workers == 0 {
        return Err(TensorError::InvalidArgument(
            "cluster needs at least one worker".into(),
        ));
    }
    if cluster.comm.downcast_f32 && !cfg.numerics.allows_lossy_comm() {
        return Err(TensorError::InvalidArgument(
            "comm.downcast_f32 is lossy and requires the divergence watchdog \
             (numerics.watchdog.enabled) so a destabilised step can be rolled back"
                .into(),
        ));
    }
    // lint:allow(determinism, clock_hygiene): elapsed-time reporting only
    let start = Instant::now();
    let order = tensor.order();
    let world = cluster.workers;
    let rank = cfg.rank;
    let old_rows: Vec<usize> = old_factors.iter().map(Matrix::rows).collect();

    // ---- Data partitioning (Sec. IV-A) ----------------------------------
    let parts = cluster.resolved_parts(order);
    let grid = {
        let _s = dismastd_obs::span("phase/partition");
        GridPartition::build_with(
            tensor,
            cluster.partitioner,
            &parts,
            world,
            cluster.cell_assignment,
        )?
    };
    let (hits_before, misses_before) = (cache.hits(), cache.misses());
    // Driver-side pool for the plan builds (full machine budget — the
    // workers are not running yet); the selector policy rides defaults.
    let build_pool = ThreadPool::new(cfg.threads.resolve());
    let layout_policy = AdaptivePolicy::default();
    let plans = {
        let _s = dismastd_obs::span("phase/plan_build");
        Arc::new(build_plans(
            tensor,
            &grid,
            world,
            cache,
            &layout_policy,
            &build_pool,
        )?)
    };
    drop(build_pool);
    if cache.hits() > hits_before {
        dismastd_obs::counter_add("plan/cache_hit", cache.hits() - hits_before);
    }
    if cache.misses() > misses_before {
        dismastd_obs::counter_add("plan/rebuild", cache.misses() - misses_before);
    }

    // Shared read-only inputs.
    let init = Arc::new(init_factors(old_factors, tensor.shape(), rank, cfg.seed)?);
    let old = Arc::new(old_factors.to_vec());
    let old_norm_sq = if old_rows.iter().all(|&r| r > 0) {
        let grams: Vec<Matrix> = old_factors.iter().map(Matrix::gram).collect();
        let refs: Vec<&Matrix> = grams.iter().collect();
        grand_sum_hadamard(&refs)?
    } else {
        0.0
    };
    let tensor_norm_sq = tensor.norm_sq();

    let setup_bytes = setup_bytes(&plans, order, rank);

    // ---- Distributed tensor decomposition (Sec. IV-B) -------------------
    let cfg = *cfg;
    let pooling = cluster.pooling;
    let comm_policy = cluster.comm;
    let old_rows_arc = Arc::new(old_rows.clone());
    // Worker threads have their own thread-local metric registries, so each
    // rank decides up front — from the driver's state — whether to collect.
    let collect = dismastd_obs::installed();
    let (mut results, comm) = Cluster::try_run_with_opts(world, opts, |ctx| {
        worker_body(
            ctx,
            &plans,
            &init,
            &old,
            &old_rows_arc,
            &cfg,
            old_norm_sq,
            tensor_norm_sq,
            pooling,
            comm_policy,
            collect,
        )
    })
    .map_err(cluster_fault)?;

    // Harvest every rank's metrics (in rank order) before consuming rank 0;
    // a rank that failed simply contributes nothing.
    let worker_metrics: Vec<MetricsSnapshot> = results
        .iter()
        .filter_map(|res| res.as_ref().ok())
        .filter_map(|wr| wr.metrics.clone())
        .collect();
    let metrics = if worker_metrics.is_empty() {
        None
    } else {
        let mut merged = MetricsSnapshot::default();
        for wm in &worker_metrics {
            merged.merge(wm);
        }
        Some(merged)
    };

    let WorkerResult {
        loss_trace,
        iterations,
        factors,
        iter_elapsed,
        numerics,
        metrics: _,
    } = results.swap_remove(0)?;
    let factors = factors.ok_or_else(|| {
        TensorError::InvalidArgument("rank 0 did not assemble the final factors".into())
    })?;

    Ok(DistOutput {
        kruskal: KruskalTensor::new(factors)?,
        iterations,
        loss_trace,
        comm,
        setup_bytes,
        elapsed: start.elapsed(),
        iter_elapsed,
        numerics,
        metrics,
        worker_metrics,
    })
}

struct WorkerResult {
    loss_trace: Vec<f64>,
    iterations: usize,
    /// `Some` on rank 0 only: the gathered final factors.
    factors: Option<Vec<Matrix>>,
    iter_elapsed: Duration,
    /// Rank 0's record of the broadcast solver decisions (zeroed elsewhere).
    numerics: NumericsReport,
    /// This rank's per-phase metrics, when collection was requested.
    metrics: Option<MetricsSnapshot>,
}

/// Converts a fallible tensor-numerics expression into worker control flow:
/// the error is carried in the worker's *payload* (`Ok(Err(..))`), so the
/// cluster run itself completes and rank 0's typed error is surfaced.
macro_rules! try_num {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(err) => return Ok(Err(err.into())),
        }
    };
}

/// Slot layout of the per-mode solver-decision broadcast:
/// `[err, has0, tier0, λ0, cond0, has1, tier1, λ1, cond1]`.
const DECISION_SLOTS: usize = 1 + 2 * (1 + SolveDecision::ENCODED_LEN);

/// Rank 0 assesses both Eq. 5 denominators and packs its decisions.
fn encode_decisions(
    solver: &RobustSolver,
    d0: &Matrix,
    d1: &Matrix,
    has0: bool,
    has1: bool,
) -> Result<Vec<f64>> {
    let mut slots = vec![0.0f64; DECISION_SLOTS];
    if has0 {
        let dec = solver.decide(d0)?;
        slots[1] = 1.0;
        dec.encode(&mut slots[2..2 + SolveDecision::ENCODED_LEN]);
    }
    if has1 {
        let dec = solver.decide(d1)?;
        slots[5] = 1.0;
        dec.encode(&mut slots[6..6 + SolveDecision::ENCODED_LEN]);
    }
    Ok(slots)
}

/// Unpacks the broadcast decisions on every rank.
fn decode_decisions(slots: &[f64]) -> Result<(Option<SolveDecision>, Option<SolveDecision>)> {
    if slots.len() != DECISION_SLOTS {
        return Err(TensorError::InvalidArgument(format!(
            "decision broadcast carried {} slots, expected {DECISION_SLOTS}",
            slots.len()
        )));
    }
    let dec0 = if slots[1] != 0.0 {
        Some(SolveDecision::decode(
            &slots[2..2 + SolveDecision::ENCODED_LEN],
        )?)
    } else {
        None
    };
    let dec1 = if slots[5] != 0.0 {
        Some(SolveDecision::decode(
            &slots[6..6 + SolveDecision::ENCODED_LEN],
        )?)
    } else {
        None
    };
    Ok((dec0, dec1))
}

/// Per-worker scratch space for the Gram rebuild: the three `R×R`
/// partial-product matrices plus the fused all-reduce staging buffer.
/// Allocated once per worker and zeroed in place each mode, so the
/// steady-state Gram path performs no allocation at all.
struct GramWorkspace {
    g0: Matrix,
    g1: Matrix,
    cr: Matrix,
    buf: Vec<f64>,
}

impl GramWorkspace {
    fn new(r: usize) -> Self {
        GramWorkspace {
            g0: Matrix::zeros(r, r),
            g1: Matrix::zeros(r, r),
            cr: Matrix::zeros(r, r),
            buf: Vec::with_capacity(3 * r * r),
        }
    }
}

/// A posted-but-uncompleted refresh exchange: mode `n`'s updated factor
/// rows are in flight while the next mode's MTTKRP runs.  The fence at the
/// top of the next mode (or the post-loop drain) completes it and writes
/// the rows before anything reads `factors[mode]` remotely-owned entries.
struct PendingRefresh {
    mode: usize,
    pending: PendingExchange,
}

#[allow(clippy::too_many_arguments)]
fn worker_body(
    ctx: &mut WorkerCtx,
    plans: &Arc<Vec<WorkerPlan>>,
    init: &Arc<Vec<Matrix>>,
    old: &Arc<Vec<Matrix>>,
    old_rows: &Arc<Vec<usize>>,
    cfg: &DecompConfig,
    old_norm_sq: f64,
    tensor_norm_sq: f64,
    pooling: bool,
    comm: CommPolicy,
    collect: bool,
) -> ClusterResult<std::result::Result<WorkerResult, TensorError>> {
    // Per-thread collector: on any early-return path (cluster fault or a
    // `try_num!` payload error) the guard's Drop discards the partial
    // registry, so a failed rank never reports half-measured phases.
    let collector = collect.then(dismastd_obs::begin);
    let me = ctx.rank();
    let world = ctx.world();
    let plan = &plans[me];
    let order = init.len();
    let r = cfg.rank;
    let mu = cfg.forgetting;
    let solver = RobustSolver::new(cfg.numerics.solver);
    let mut numerics = NumericsReport::default();

    // Replicated factor copies; only owned ∪ referenced rows stay fresh.
    let mut factors: Vec<Matrix> = init.as_ref().clone();

    // Reusable scratch: Gram partials + all-reduce staging, and the
    // message-payload pool for the two row exchanges.
    let mut ws = GramWorkspace::new(r);
    let mut pool = BufferPool::new(pooling);
    // Persistent exchange tables: refilled in place every post/complete
    // through the `_drain`/`_into` APIs, so the steady-state loop never
    // reallocates them.
    let mut outgoing_frames: Vec<Framed> = Vec::with_capacity(world);
    let mut incoming_payloads: Vec<Payload> = Vec::with_capacity(world);
    // Intra-worker kernel pool: the machine budget split across the
    // co-resident ranks.  Thread count never changes factor bits (the
    // pooled kernels are bitwise identical to serial), so the replicated
    // state stays in sync whatever each rank resolves to.
    let kernel_pool = ThreadPool::new(cfg.threads.resolve_for_world(world));

    // Replicated RxR state, rebuilt by all-reduce from owned-row partials so
    // every worker agrees bit-for-bit.
    let mut state = GramState {
        gram0: vec![Matrix::zeros(r, r); order],
        gram1: vec![Matrix::zeros(r, r); order],
        cross: vec![Matrix::zeros(r, r); order],
    };
    {
        let _s = dismastd_obs::span("phase/setup");
        for n in 0..order {
            local_gram_partials(
                &mut ws,
                &factors[n],
                &old[n],
                &plan.owned_rows[n],
                old_rows[n],
            );
            allreduce_grams(ctx, &mut ws, &mut state, n, comm)?;
        }
    }

    let mut loss_trace: Vec<f64> = Vec::with_capacity(cfg.max_iters);
    let mut iterations = 0;
    // lint:allow(determinism, clock_hygiene): elapsed-time reporting only
    let iter_start = Instant::now();
    let mut hat = vec![Matrix::zeros(0, 0); order];
    for n in 0..order {
        hat[n] = Matrix::zeros(factors[n].rows(), r);
    }

    // The refresh exchange posted by the previous mode, completed lazily at
    // the top of the next mode (mode-pipelined overlap: the send is on the
    // wire while this mode's MTTKRP runs).
    let mut pending_refresh: Option<PendingRefresh> = None;

    for _iter in 0..cfg.max_iters {
        let mut inner_partial = 0.0;
        for n in 0..order {
            // -- fence: land the previous mode's refreshed rows ------------
            // MTTKRP below reads every factor, so the in-flight rows of the
            // previously updated mode must be written before the kernels run.
            if let Some(pr) = pending_refresh.take() {
                complete_refresh(
                    ctx,
                    pr,
                    plan,
                    &mut factors,
                    r,
                    &mut pool,
                    &mut incoming_payloads,
                )?;
            }

            // -- 1. local MTTKRP partials over this worker's nonzeros -----
            // Cached cell layouts: each plan accumulates its run totals
            // into `hat[n]`, touching every output row once per cell.
            {
                let _s = dismastd_obs::span("phase/mttkrp");
                hat[n].fill_zero();
                for cell in &plan.cells {
                    try_num!(cell.mttkrp_into(&factors, n, &mut hat[n], &kernel_pool));
                }
            }

            // -- route partials to row owners ------------------------------
            // Post only: the sends overlap the decision broadcast and the
            // factorizations below, which depend on the Gram state alone.
            let pending_partials = {
                let _s = dismastd_obs::span("phase/exchange");
                outgoing_frames.clear();
                for d in 0..world {
                    outgoing_frames.push(if d == me {
                        Framed::plain(Payload::Empty)
                    } else {
                        encode_outgoing(&hat[n], &plan.partial_routes[n][d], &comm, &mut pool)
                    });
                }
                ctx.post_exchange_framed_drain(&mut outgoing_frames)?
            };

            // -- 2. owners update their rows (Eq. 5, row-wise) -------------
            let solve_span = dismastd_obs::span("phase/solve");
            let mut totals: Vec<Matrix> = Vec::with_capacity(order);
            for k in 0..order {
                totals.push(try_num!(state.total(k)));
            }
            let d1 = try_num!(hadamard_skip(&totals, n));
            let d0 = {
                let g0_had = try_num!(hadamard_skip(&state.gram0, n));
                try_num!(d1.sub(&g0_had.scale(1.0 - mu)))
            };
            let old_n = old_rows[n];

            // Solver decisions are made once, on rank 0, and broadcast, so
            // every rank applies the identical tier and ridge shift and the
            // replicated factors stay bit-for-bit in sync.  `d0` is only
            // solved against when the mode has old rows, `d1` only when it
            // has new rows — mirroring the serial block updates.
            let has0 = old_n > 0;
            let has1 = factors[n].rows() > old_n;
            let payload = if me == 0 {
                let slots = match encode_decisions(&solver, &d0, &d1, has0, has1) {
                    Ok(slots) => slots,
                    Err(err) => {
                        // Unblock the peers with an error flag, then surface
                        // the typed numeric failure from rank 0.
                        let mut slots = vec![0.0f64; DECISION_SLOTS];
                        slots[0] = 1.0;
                        // lint:allow(collective_order): rank-0-decides — every rank reaches exactly one broadcast at this seq; rank 0 flags the failure in-band before surfacing it
                        ctx.try_broadcast(0, Some(Payload::F64(slots)))?;
                        return Ok(Err(err));
                    }
                };
                // lint:allow(collective_order): rank-0-decides — root half of the one broadcast every rank reaches at this seq
                ctx.try_broadcast(0, Some(Payload::F64(slots)))?
            } else {
                // lint:allow(collective_order): rank-0-decides — receive half of the one broadcast every rank reaches at this seq
                ctx.try_broadcast(0, None)?
            };
            let slots = payload.try_into_f64()?;
            if slots.first().copied().unwrap_or(1.0) != 0.0 {
                return Ok(Err(TensorError::Singular {
                    solver: "distributed-decision-broadcast",
                }));
            }
            let (dec0, dec1) = try_num!(decode_decisions(&slots));
            if me == 0 {
                if let Some(d) = &dec0 {
                    numerics.record(d);
                }
                if let Some(d) = &dec1 {
                    numerics.record(d);
                }
            }
            let f0: Option<Factorized> = match &dec0 {
                Some(d) => Some(try_num!(solver.factorize(&d0, d))),
                None => None,
            };
            let f1: Option<Factorized> = match &dec1 {
                Some(d) => Some(try_num!(solver.factorize(&d1, d))),
                None => None,
            };

            // -- land the peers' partials before the row solves ------------
            {
                let _s = dismastd_obs::span("phase/exchange");
                ctx.complete_exchange_into(pending_partials, &mut incoming_payloads)?;
                for (d, payload) in incoming_payloads.drain(..).enumerate() {
                    if d == me {
                        continue;
                    }
                    let data = decode_rows(payload, d, &plan.serve_routes[n][d], r, &mut pool)?;
                    add_rows(&mut hat[n], &plan.serve_routes[n][d], &data);
                    pool.put(data);
                }
            }

            let cross_had = try_num!(hadamard_skip(&state.cross, n));
            let mut row_buf = vec![0.0f64; r];
            for &row in &plan.owned_rows[n] {
                let row = row as usize;
                let fact = if row < old_n {
                    // μ Ã_n[i,:] (⊛ G̃) + Â[i,:], then ·D0⁻¹.
                    let old_row = old[n].row(row);
                    for (c, slot) in row_buf.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (f, &ov) in old_row.iter().enumerate() {
                            acc += ov * cross_had.get(f, c);
                        }
                        *slot = mu * acc + hat[n].get(row, c);
                    }
                    &f0
                } else {
                    row_buf.copy_from_slice(hat[n].row(row));
                    &f1
                };
                match fact {
                    Some(f) => try_num!(f.solve_in_place(&mut row_buf)),
                    None => {
                        return Ok(Err(TensorError::InvalidArgument(format!(
                            "mode {n}: owned row {row} has no broadcast factorization"
                        ))))
                    }
                }
                factors[n].row_mut(row).copy_from_slice(&row_buf);
            }
            drop(solve_span);

            // -- ship refreshed rows back to referencing workers ------------
            // Post only: the Gram rebuild and (on the final mode) the loss
            // inner product read exclusively owned rows, which are already
            // fresh locally, so the exchange stays in flight until the next
            // mode's fence.
            debug_assert!(pending_refresh.is_none());
            pending_refresh = {
                let _s = dismastd_obs::span("phase/exchange");
                outgoing_frames.clear();
                for d in 0..world {
                    outgoing_frames.push(if d == me {
                        Framed::plain(Payload::Empty)
                    } else {
                        encode_outgoing(&factors[n], &plan.serve_routes[n][d], &comm, &mut pool)
                    });
                }
                Some(PendingRefresh {
                    mode: n,
                    pending: ctx.post_exchange_framed_drain(&mut outgoing_frames)?,
                })
            };

            // -- 3. rebuild the RxR products by all-reduce ------------------
            {
                let _s = dismastd_obs::span("phase/gram");
                local_gram_partials(&mut ws, &factors[n], &old[n], &plan.owned_rows[n], old_n);
                allreduce_grams(ctx, &mut ws, &mut state, n, comm)?;
            }

            // -- 4. loss reuse: data inner product from the final mode -----
            if n == order - 1 {
                let _s = dismastd_obs::span("phase/loss");
                inner_partial = plan.owned_rows[n]
                    .iter()
                    .map(|&row| {
                        let row = row as usize;
                        dot(hat[n].row(row), factors[n].row(row))
                    })
                    .sum();
            }
        }
        iterations += 1;
        let loss = {
            let _s = dismastd_obs::span("phase/loss");
            let inner = ctx.try_allreduce_sum_scalar(inner_partial)?;
            try_num!(dtd_loss(
                &state,
                &LossParts {
                    mu,
                    old_norm_sq,
                    complement_norm_sq: tensor_norm_sq,
                    inner,
                },
            ))
        };
        loss_trace.push(loss);
        if converged(&loss_trace, cfg.tolerance) {
            break;
        }
    }
    // Drain the final mode's in-flight refresh (the convergence break can
    // leave it posted) so every sent row is received before the gather.
    if let Some(pr) = pending_refresh.take() {
        complete_refresh(
            ctx,
            pr,
            plan,
            &mut factors,
            r,
            &mut pool,
            &mut incoming_payloads,
        )?;
    }
    let iter_elapsed = iter_start.elapsed();

    // Solve tiers mirror the broadcast decisions every rank applied, so
    // only rank 0 tallies them — the merged snapshot then matches the
    // serial counter surface (label 0/1/2 = cholesky/lu/ridge).
    if me == 0 {
        if numerics.cholesky_solves > 0 {
            dismastd_obs::counter_add_with("solve/tier", 0, numerics.cholesky_solves);
        }
        if numerics.lu_solves > 0 {
            dismastd_obs::counter_add_with("solve/tier", 1, numerics.lu_solves);
        }
        if numerics.ridge_solves > 0 {
            dismastd_obs::counter_add_with("solve/tier", 2, numerics.ridge_solves);
        }
    }

    // ---- gather the owned rows of every factor to rank 0 ----------------
    let factors_out = {
        let _s = dismastd_obs::span("phase/gather");
        gather_factors(ctx, plans, &factors, init)?
    };

    Ok(Ok(WorkerResult {
        loss_trace,
        iterations,
        factors: factors_out,
        iter_elapsed,
        numerics,
        metrics: collector.map(dismastd_obs::Collector::finish),
    }))
}

/// Packs the listed rows of `m` into an exchange payload, compressing the
/// frame when the policy's encoder beats the flat `f64` representation
/// (see `dismastd_cluster::maybe_compress`).  The compressed path returns
/// the staging buffer to the pool immediately; the flat path ships it.
fn encode_outgoing(m: &Matrix, rows: &[u32], policy: &CommPolicy, pool: &mut BufferPool) -> Framed {
    let values = pack_rows(m, rows, pool);
    match maybe_compress(rows, &values, policy) {
        Some((frame, meta)) => {
            pool.put(values);
            Framed::compressed(Payload::Bytes(frame), meta)
        }
        None => Framed::plain(Payload::F64(values)),
    }
}

/// Completes a posted refresh exchange: receives every peer's refreshed
/// mode-`pr.mode` rows and writes them into the replicated factor copy.
fn complete_refresh(
    ctx: &mut WorkerCtx,
    pr: PendingRefresh,
    plan: &WorkerPlan,
    factors: &mut [Matrix],
    r: usize,
    pool: &mut BufferPool,
    incoming: &mut Vec<Payload>,
) -> ClusterResult<()> {
    let _s = dismastd_obs::span("phase/exchange");
    let me = ctx.rank();
    let n = pr.mode;
    ctx.complete_exchange_into(pr.pending, incoming)?;
    for (d, payload) in incoming.drain(..).enumerate() {
        if d == me {
            continue;
        }
        let data = decode_rows(payload, d, &plan.partial_routes[n][d], r, pool)?;
        write_rows(&mut factors[n], &plan.partial_routes[n][d], &data);
        pool.put(data);
    }
    Ok(())
}

/// Packs the listed rows of `m` into one contiguous buffer drawn from the
/// worker's pool (an empty `Vec` when pooling is off or the pool is dry).
fn pack_rows(m: &Matrix, rows: &[u32], pool: &mut BufferPool) -> Vec<f64> {
    let r = m.cols();
    let mut out = pool.take();
    out.reserve(rows.len() * r);
    for &row in rows {
        out.extend_from_slice(m.row(row as usize));
    }
    out
}

/// Adds packed rows into `m` at the listed positions.
fn add_rows(m: &mut Matrix, rows: &[u32], data: &[f64]) {
    let r = m.cols();
    debug_assert_eq!(data.len(), rows.len() * r);
    for (i, &row) in rows.iter().enumerate() {
        let dst = m.row_mut(row as usize);
        for (d, &s) in dst.iter_mut().zip(&data[i * r..(i + 1) * r]) {
            *d += s;
        }
    }
}

/// Overwrites rows of `m` at the listed positions with packed data.
fn write_rows(m: &mut Matrix, rows: &[u32], data: &[f64]) {
    let r = m.cols();
    debug_assert_eq!(data.len(), rows.len() * r);
    for (i, &row) in rows.iter().enumerate() {
        m.row_mut(row as usize)
            .copy_from_slice(&data[i * r..(i + 1) * r]);
    }
}

/// Partial Grams over this worker's owned rows: `(G⁰, G¹, G̃)` contributions
/// (the row-wise partial products of Sec. IV-B3), accumulated into the
/// workspace matrices, which are zeroed in place first.
fn local_gram_partials(
    ws: &mut GramWorkspace,
    factor: &Matrix,
    old: &Matrix,
    owned: &[u32],
    old_n: usize,
) {
    ws.g0.fill_zero();
    ws.g1.fill_zero();
    ws.cr.fill_zero();
    for &row in owned {
        let row = row as usize;
        let a = factor.row(row);
        let target = if row < old_n { &mut ws.g0 } else { &mut ws.g1 };
        for (p, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = target.row_mut(p);
            for (o, &bv) in out_row.iter_mut().zip(a) {
                *o += av * bv;
            }
        }
        if row < old_n {
            let o = old.row(row);
            for (p, &ov) in o.iter().enumerate() {
                if ov == 0.0 {
                    continue;
                }
                let out_row = ws.cr.row_mut(p);
                for (c, &av) in out_row.iter_mut().zip(a) {
                    *c += ov * av;
                }
            }
        }
    }
}

/// All-reduces the workspace's three RxR partials in one fused staging
/// buffer (one collective, `3R²` values — the `O(MNR²)` term of Theorem 4)
/// and writes the reduced products straight into the mode-`n` slots of the
/// replicated Gram state.  The staging buffer's capacity is reused across
/// calls.
fn allreduce_grams(
    ctx: &mut WorkerCtx,
    ws: &mut GramWorkspace,
    state: &mut GramState,
    n: usize,
    comm: CommPolicy,
) -> ClusterResult<()> {
    let r = ws.g0.rows();
    let rr = r * r;
    ws.buf.clear();
    ws.buf.extend_from_slice(ws.g0.as_slice());
    ws.buf.extend_from_slice(ws.g1.as_slice());
    ws.buf.extend_from_slice(ws.cr.as_slice());
    ctx.try_allreduce_sum_with(&mut ws.buf, comm.allreduce)?;
    state.gram0[n]
        .as_mut_slice()
        .copy_from_slice(&ws.buf[0..rr]);
    state.gram1[n]
        .as_mut_slice()
        .copy_from_slice(&ws.buf[rr..2 * rr]);
    state.cross[n]
        .as_mut_slice()
        .copy_from_slice(&ws.buf[2 * rr..]);
    Ok(())
}

/// Gathers every worker's owned rows to rank 0 and assembles the final
/// factor matrices there.
fn gather_factors(
    ctx: &mut WorkerCtx,
    plans: &Arc<Vec<WorkerPlan>>,
    factors: &[Matrix],
    init: &Arc<Vec<Matrix>>,
) -> ClusterResult<Option<Vec<Matrix>>> {
    let me = ctx.rank();
    let order = factors.len();
    // One payload: all owned rows of all modes, concatenated.  One-shot
    // per decomposition, so no pooling here.
    let mut packed = Vec::new();
    for (n, f) in factors.iter().enumerate() {
        for &row in &plans[me].owned_rows[n] {
            packed.extend_from_slice(f.row(row as usize));
        }
    }
    let gathered = match ctx.try_gather(0, Payload::F64(packed))? {
        Some(g) => g,
        None => return Ok(None), // non-root ranks
    };
    let mut out: Vec<Matrix> = (0..order)
        .map(|n| Matrix::zeros(init[n].rows(), init[n].cols()))
        .collect();
    for (src, payload) in gathered.into_iter().enumerate() {
        let data = payload.try_into_f64()?;
        let mut offset = 0usize;
        for (n, f) in out.iter_mut().enumerate() {
            let rows = &plans[src].owned_rows[n];
            let len = rows.len() * f.cols();
            write_rows(f, rows, &data[offset..offset + len]);
            offset += len;
        }
    }
    Ok(Some(out))
}

/// Splits the tensor over workers and grid cells, compiles (or fetches
/// from `cache`) one MTTKRP layout per non-empty cell, and derives row
/// ownership and the partial/update routing tables.
fn build_plans(
    tensor: &SparseTensor,
    grid: &GridPartition,
    world: usize,
    cache: &mut PlanCache,
    policy: &AdaptivePolicy,
    pool: &ThreadPool,
) -> Result<Vec<WorkerPlan>> {
    let order = tensor.order();
    // Per-cell nonzeros: the cell is the caching unit, so each non-empty
    // cell becomes its own sub-tensor.  BTreeMap keeps cell iteration
    // order deterministic.
    let mut cell_builders: std::collections::BTreeMap<usize, SparseTensorBuilder> =
        std::collections::BTreeMap::new();
    // Per-worker, per-mode referenced-row sets.
    let mut needed: Vec<Vec<Vec<bool>>> = (0..world)
        .map(|_| tensor.shape().iter().map(|&s| vec![false; s]).collect())
        .collect();
    for (idx, v) in tensor.iter() {
        let w = grid.worker_of(idx);
        cell_builders
            .entry(grid.cell_of(idx))
            .or_insert_with(|| SparseTensorBuilder::new(tensor.shape().to_vec()))
            .push(idx, v)?;
        for (n, &i) in idx.iter().enumerate() {
            needed[w][n][i] = true;
        }
    }

    // Select and compile (or reuse) the kernel of every populated cell.
    let mut cells_by_worker: Vec<Vec<Arc<CellKernel>>> = vec![Vec::new(); world];
    let mut local_nnz = vec![0usize; world];
    let mut live_keys = Vec::with_capacity(cell_builders.len());
    for (cell, builder) in cell_builders {
        let sub = builder.build()?;
        let w = grid.worker_of(sub.index(0));
        debug_assert_eq!(grid.cell_of(sub.index(0)), cell);
        let (key, kernel) = cache.get_or_build(sub, policy, pool)?;
        live_keys.push(key);
        local_nnz[w] += kernel.nnz();
        cells_by_worker[w].push(kernel);
    }
    cache.retain_live(&live_keys);

    // Row ownership: every row of every mode has exactly one owner.
    let mut owned_rows: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); order]; world];
    let mut owner_of: Vec<Vec<u32>> = Vec::with_capacity(order);
    for n in 0..order {
        let mut owners = Vec::with_capacity(tensor.shape()[n]);
        for row in 0..tensor.shape()[n] {
            let w = grid.row_owner(n, row);
            owners.push(w as u32);
            owned_rows[w][n].push(row as u32);
        }
        owner_of.push(owners);
    }

    // Routing tables.
    let mut plans = Vec::with_capacity(world);
    let mut partial_routes_all: Vec<Vec<Vec<Vec<u32>>>> =
        vec![vec![vec![Vec::new(); world]; order]; world];
    for (w, worker_needed) in needed.iter().enumerate() {
        for n in 0..order {
            for (row, &is_needed) in worker_needed[n].iter().enumerate() {
                if !is_needed {
                    continue;
                }
                let owner = owner_of[n][row] as usize;
                if owner != w {
                    partial_routes_all[w][n][owner].push(row as u32);
                }
            }
        }
    }
    // Materialise all serve routes before consuming the partial routes —
    // worker w serves exactly what each peer d routes to w.
    let serve_routes_all: Vec<Vec<Vec<Vec<u32>>>> = (0..world)
        .map(|w| {
            (0..order)
                .map(|n| {
                    (0..world)
                        .map(|d| partial_routes_all[d][n][w].clone())
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut serve_routes_all = serve_routes_all;
    for (w, cells) in cells_by_worker.into_iter().enumerate() {
        let serve_routes = std::mem::take(&mut serve_routes_all[w]);
        plans.push(WorkerPlan {
            cells,
            local_nnz: local_nnz[w],
            owned_rows: std::mem::take(&mut owned_rows[w]),
            partial_routes: std::mem::take(&mut partial_routes_all[w]),
            serve_routes,
        });
    }
    Ok(plans)
}

/// Bytes needed to stage the computation (Theorem 4's data-distribution
/// terms): each worker's tensor partition in coordinate format plus every
/// factor row it references or owns.
fn setup_bytes(plans: &[WorkerPlan], order: usize, rank: usize) -> u64 {
    let mut total = 0u64;
    for plan in plans {
        // Coordinate format: N indices + 1 value per nonzero.
        total += plan.local_nnz as u64 * (order as u64 + 1) * 8;
        for n in 0..order {
            let mut rows = plan.owned_rows[n].len() as u64;
            for d in 0..plans.len() {
                rows += plan.partial_routes[n][d].len() as u64;
            }
            total += rows * rank as u64 * 8;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::cp_als;
    use crate::dtd::dtd;
    use dismastd_cluster::AllreduceAlgo;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
        }
        b.build().unwrap()
    }

    fn random_complement(
        old_shape: &[usize],
        new_shape: &[usize],
        nnz: usize,
        seed: u64,
    ) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(new_shape.to_vec());
        let mut placed = 0;
        while placed < nnz {
            let idx: Vec<usize> = new_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            if SparseTensor::block_of(&idx, old_shape) == 0 {
                continue;
            }
            b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
            placed += 1;
        }
        b.build().unwrap()
    }

    fn cfg() -> DecompConfig {
        DecompConfig::default()
            .with_rank(3)
            .with_max_iters(6)
            .with_seed(5)
    }

    #[test]
    fn single_worker_matches_serial_exactly_in_loss() {
        let old_shape = [4usize, 4, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            old_shape
                .iter()
                .map(|&s| Matrix::random(s, 3, &mut rng))
                .collect()
        };
        let x = random_complement(&old_shape, &[6, 6, 5], 50, 2);
        let serial = dtd(&x, &old, &cfg()).unwrap();
        let dist = dismastd(&x, &old, &cfg(), &ClusterConfig::new(1)).unwrap();
        assert_eq!(serial.loss_trace.len(), dist.loss_trace.len());
        for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
        // One worker ⇒ zero network bytes.
        assert_eq!(dist.comm.bytes, 0);
    }

    #[test]
    fn multi_worker_matches_serial_within_fp_tolerance() {
        let old_shape = [4usize, 5, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            old_shape
                .iter()
                .map(|&s| Matrix::random(s, 3, &mut rng))
                .collect()
        };
        let x = random_complement(&old_shape, &[8, 8, 6], 120, 4);
        let serial = dtd(&x, &old, &cfg()).unwrap();
        for workers in [2usize, 3, 4] {
            for p in [Partitioner::Gtp, Partitioner::Mtp] {
                let dist = dismastd(
                    &x,
                    &old,
                    &cfg(),
                    &ClusterConfig::new(workers).with_partitioner(p),
                )
                .unwrap();
                for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
                    assert!(
                        (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                        "workers={workers} {p:?}: {a} vs {b}"
                    );
                }
                // Factors agree too (same fixed point trajectory).
                for (fs, fd) in serial.kruskal.factors().iter().zip(dist.kruskal.factors()) {
                    assert!(fs.max_abs_diff(fd).unwrap() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn dms_mg_matches_serial_als() {
        let x = random_tensor(&[7, 6, 5], 80, 6);
        let serial = cp_als(&x, &cfg()).unwrap();
        let dist = dms_mg(&x, &cfg(), &ClusterConfig::new(3)).unwrap();
        for (a, b) in serial.loss_trace.iter().zip(&dist.loss_trace) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn multi_worker_communicates_single_does_not() {
        let x = random_tensor(&[8, 8, 8], 100, 7);
        let one = dms_mg(&x, &cfg(), &ClusterConfig::new(1)).unwrap();
        let four = dms_mg(&x, &cfg(), &ClusterConfig::new(4)).unwrap();
        assert_eq!(one.comm.bytes, 0);
        assert!(four.comm.bytes > 0);
        assert!(four.comm.collectives > 0);
        assert!(four.setup_bytes >= one.setup_bytes);
    }

    #[test]
    fn loss_monotone_distributed() {
        let old_shape = [3usize, 3, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            old_shape
                .iter()
                .map(|&s| Matrix::random(s, 2, &mut rng))
                .collect()
        };
        let x = random_complement(&old_shape, &[6, 6, 6], 70, 9);
        let out = dismastd(
            &x,
            &old,
            &DecompConfig::default().with_rank(2).with_max_iters(10),
            &ClusterConfig::new(3),
        )
        .unwrap();
        for w in out.loss_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()),
                "{:?}",
                out.loss_trace
            );
        }
    }

    #[test]
    fn parts_per_mode_override_works() {
        let x = random_tensor(&[10, 10, 10], 150, 10);
        let out = dms_mg(
            &x,
            &cfg(),
            &ClusterConfig::new(2).with_parts_per_mode(vec![5, 5, 5]),
        )
        .unwrap();
        assert_eq!(out.iterations, 6);
        assert!(out.loss_trace.last().unwrap().is_finite());
    }

    #[test]
    fn rejects_zero_workers() {
        let x = random_tensor(&[4, 4], 10, 11);
        assert!(dms_mg(
            &x,
            &cfg(),
            &ClusterConfig {
                workers: 0,
                partitioner: Partitioner::Mtp,
                parts_per_mode: None,
                cell_assignment: CellAssignment::BlockGrid,
                pooling: true,
                comm: CommPolicy::default(),
            }
        )
        .is_err());
    }

    #[test]
    fn ring_allreduce_policy_is_bit_identical_to_flat() {
        // The ring rebuilds the Gram sums in the same per-element order as
        // the flat gather+broadcast, so switching the algorithm must not
        // move a single bit of the trajectory.  Logical traffic is also
        // identical — only message/collective counts differ.
        let x = random_tensor(&[8, 8, 6], 120, 21);
        let flat = dms_mg(
            &x,
            &cfg(),
            &ClusterConfig::new(4).with_comm(CommPolicy::flat()),
        )
        .unwrap();
        let ring = dms_mg(
            &x,
            &cfg(),
            &ClusterConfig::new(4)
                .with_comm(CommPolicy::default().with_allreduce(AllreduceAlgo::Ring)),
        )
        .unwrap();
        assert_eq!(flat.loss_trace, ring.loss_trace);
        for (a, b) in flat.kruskal.factors().iter().zip(ring.kruskal.factors()) {
            assert_eq!(a.max_abs_diff(b).unwrap(), 0.0);
        }
        assert_eq!(flat.comm.bytes, ring.comm.bytes);
        // Downcast is off, so no frame can beat flat f64: the wire is the
        // logical traffic on both sides.
        assert_eq!(flat.comm.compressed_bytes, 0);
        assert_eq!(ring.comm.compressed_bytes, 0);
        assert!(flat.comm.reconciles() && ring.comm.reconciles());
    }

    #[test]
    fn downcast_compresses_the_exchanges() {
        let x = random_tensor(&[8, 8, 6], 120, 21);
        let flat = dms_mg(
            &x,
            &cfg(),
            &ClusterConfig::new(4).with_comm(CommPolicy::flat()),
        )
        .unwrap();
        let lossy = dms_mg(
            &x,
            &cfg(),
            &ClusterConfig::new(4).with_comm(CommPolicy::default().with_downcast_f32(true)),
        )
        .unwrap();
        // Accounting stays in logical (flat-equivalent) bytes, so the two
        // runs agree there; the savings land in the wire counters.
        assert_eq!(flat.comm.bytes, lossy.comm.bytes);
        assert!(lossy.comm.compressed_bytes > 0);
        assert!(lossy.comm.downcast_rows > 0);
        assert!(lossy.comm.wire_bytes() < lossy.comm.bytes);
        assert!(lossy.comm.compression_ratio() > 1.0);
        assert!(lossy.comm.reconciles());
        // f32 mantissas perturb the trajectory but not the fixed point the
        // solver is homing in on.
        let (a, b) = (
            flat.loss_trace.last().unwrap(),
            lossy.loss_trace.last().unwrap(),
        );
        assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn downcast_requires_the_watchdog() {
        use crate::config::WatchdogPolicy;
        let x = random_tensor(&[6, 6], 30, 22);
        let no_watchdog = cfg().with_numerics(
            crate::config::NumericsPolicy::default().with_watchdog(WatchdogPolicy {
                enabled: false,
                ..WatchdogPolicy::default()
            }),
        );
        let err = dms_mg(
            &x,
            &no_watchdog,
            &ClusterConfig::new(2).with_comm(CommPolicy::default().with_downcast_f32(true)),
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::InvalidArgument(_)), "{err:?}");
    }

    #[test]
    fn legacy_cluster_config_json_decodes_without_comm_field() {
        // Checkpoints from before the collective-layer rework serialized no
        // `comm` field; they must restore with the default policy.
        let reference = ClusterConfig::new(3);
        let full = serde_json::to_string(&reference).unwrap();
        let cut = full.find(",\"comm\"").expect("comm is serialized");
        let legacy = format!("{}}}", &full[..cut]);
        let back: ClusterConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, reference);
        // And the current format round-trips unchanged.
        let rt: ClusterConfig = serde_json::from_str(&full).unwrap();
        assert_eq!(rt, reference);
    }

    #[test]
    fn buffer_pool_is_invisible_to_comm_accounting() {
        // Pooling recycles capacity only; for a fixed seed the traffic
        // counters and the numerical trajectory must be bit-identical with
        // pooling on and off.
        let x = random_tensor(&[8, 7, 6], 110, 14);
        let on = dms_mg(&x, &cfg(), &ClusterConfig::new(3)).unwrap();
        let off = dms_mg(&x, &cfg(), &ClusterConfig::new(3).with_pooling(false)).unwrap();
        assert!(
            on.comm.bytes > 0,
            "test needs real traffic to be meaningful"
        );
        assert_eq!(on.comm, off.comm);
        assert_eq!(on.loss_trace, off.loss_trace);
        for (a, b) in on.kruskal.factors().iter().zip(off.kruskal.factors()) {
            assert_eq!(a.max_abs_diff(b).unwrap(), 0.0);
        }
    }

    #[test]
    fn plan_cache_reuses_unchanged_cells_across_steps() {
        let old_shape = [4usize, 4, 3];
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(15);
            old_shape
                .iter()
                .map(|&s| Matrix::random(s, 3, &mut rng))
                .collect()
        };
        let x = random_complement(&old_shape, &[7, 7, 5], 80, 16);
        let cc = ClusterConfig::new(2);
        let mut cache = PlanCache::new();

        let first = dismastd_with_cache(&x, &old, &cfg(), &cc, &mut cache).unwrap();
        let cells = cache.len();
        assert!(cells > 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), cells as u64);

        // Identical snapshot ⇒ every cell is served from cache, and the
        // result is bitwise unchanged.
        let second = dismastd_with_cache(&x, &old, &cfg(), &cc, &mut cache).unwrap();
        assert_eq!(cache.hits(), cells as u64);
        assert_eq!(cache.misses(), cells as u64);
        assert_eq!(first.loss_trace, second.loss_trace);

        // Fresh-cache baseline agrees exactly, so caching never changes
        // results.
        let fresh = dismastd(&x, &old, &cfg(), &cc).unwrap();
        assert_eq!(first.loss_trace, fresh.loss_trace);
    }

    #[test]
    fn plan_cache_evicts_dead_cells() {
        let cfg2 = DecompConfig::default().with_rank(2).with_max_iters(2);
        let cc = ClusterConfig::new(2);
        let mut cache = PlanCache::new();
        let a = random_tensor(&[6, 6, 6], 70, 17);
        dms_mg_with_cache(&a, &cfg2, &cc, &mut cache).unwrap();
        let after_a = cache.len();
        assert!(after_a > 0);
        // A different tensor shares no cells: everything misses, and the
        // old entries are evicted rather than accumulating — the cache
        // holds exactly `b`'s cells afterwards.
        let b = random_tensor(&[6, 6, 6], 70, 18);
        dms_mg_with_cache(&b, &cfg2, &cc, &mut cache).unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len() as u64, cache.misses() - after_a as u64);
        let live_b = cache.len();
        // Re-running `b` hits every live cell.
        dms_mg_with_cache(&b, &cfg2, &cc, &mut cache).unwrap();
        assert_eq!(cache.hits(), live_b as u64);
        assert_eq!(cache.len(), live_b);
    }

    #[test]
    fn time_per_iter_accounting() {
        let x = random_tensor(&[6, 6, 6], 60, 12);
        let out = dms_mg(&x, &cfg(), &ClusterConfig::new(2)).unwrap();
        assert_eq!(out.iterations, 6);
        assert!(out.time_per_iter() <= out.iter_elapsed);
        assert!(out.elapsed >= out.iter_elapsed);
    }

    #[test]
    fn empty_complement_distributed() {
        let old: Vec<Matrix> = {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            [3usize, 3]
                .iter()
                .map(|&s| Matrix::random(s, 2, &mut rng))
                .collect()
        };
        let x = SparseTensor::empty(vec![5, 5]).unwrap();
        let out = dismastd(
            &x,
            &old,
            &DecompConfig::default().with_rank(2).with_max_iters(3),
            &ClusterConfig::new(2),
        )
        .unwrap();
        assert_eq!(out.kruskal.shape(), vec![5, 5]);
    }
}

//! Dynamic Tensor Decomposition — Algorithm 1 with the Eq. 5 update rules,
//! for tensors of arbitrary order.
//!
//! Given the previous snapshot's CP factors `{Ã_n}` and the relative
//! complement `X \ X̃` of the new snapshot, DTD alternates over modes,
//! updating the old-row block `A_n^(0)` and new-row block `A_n^(1)` of each
//! stacked factor.  The previous snapshot tensor itself never appears — its
//! decomposition stands in for it, weighted by the forgetting factor `μ`
//! (Eq. 2) — so the per-iteration cost is `O(nnz(X\X̃)·N·R + N·R³ + …)`
//! (Theorem 2) regardless of how large the accumulated history is.
//!
//! The static CP-ALS baseline falls out as the special case of zero-row
//! previous factors: every row is "new", the `A^(1)` rule is the classic
//! normal equation `A_n ← Â_n (⊛_{k≠n} G_k)⁻¹`, and the loss degenerates to
//! `‖X − ⟦A⟧‖²`.  [`crate::als`] wraps exactly that.

use crate::config::DecompConfig;
use crate::loss::{dtd_loss, GramState, LossParts};
use dismastd_tensor::matrix::Matrix;
use dismastd_tensor::mttkrp::{inner_from_mttkrp, mttkrp};
use dismastd_tensor::ops::{grand_sum_hadamard, hadamard_skip};
use dismastd_tensor::{
    KruskalTensor, NumericsReport, Result, RobustSolver, SparseTensor, TensorError,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a DTD (or static ALS) run.
#[derive(Debug, Clone)]
pub struct DtdOutput {
    /// The CP decomposition of the current snapshot.
    pub kruskal: KruskalTensor,
    /// Number of ALS iterations executed.
    pub iterations: usize,
    /// Eq. 4 loss after every iteration.
    pub loss_trace: Vec<f64>,
    /// Which solver tiers the normal-equation solves escalated through.
    pub numerics: NumericsReport,
}

/// Stacks the previous factors over seeded-random new rows — Alg. 1 lines
/// 1-2 (`A^(0) ← Ã`, `A^(1) ← rand(d_n, R)`).
///
/// Exposed so the serial and distributed solvers initialise identically.
///
/// # Errors
/// Returns shape errors if `old_factors` exceed `new_shape` or disagree on
/// rank.
pub fn init_factors(
    old_factors: &[Matrix],
    new_shape: &[usize],
    rank: usize,
    seed: u64,
) -> Result<Vec<Matrix>> {
    if old_factors.len() != new_shape.len() {
        return Err(TensorError::ShapeMismatch {
            op: "init_factors",
            left: vec![old_factors.len()],
            right: vec![new_shape.len()],
        });
    }
    let mut factors = Vec::with_capacity(new_shape.len());
    for (n, (of, &dim)) in old_factors.iter().zip(new_shape).enumerate() {
        if of.rows() > dim {
            return Err(TensorError::InvalidArgument(format!(
                "mode {n}: old factor has {} rows but the new shape is {dim}",
                of.rows()
            )));
        }
        if of.rows() > 0 && of.cols() != rank {
            return Err(TensorError::ShapeMismatch {
                op: "init_factors rank",
                left: vec![rank],
                right: vec![of.cols()],
            });
        }
        let d = dim - of.rows();
        // Separate stream per mode keeps init independent of mode order.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((n as u64 + 1) << 32));
        let fresh = Matrix::random(d, rank, &mut rng);
        factors.push(if of.rows() == 0 {
            fresh
        } else {
            of.vstack(&fresh)?
        });
    }
    Ok(factors)
}

/// Runs DTD (Alg. 1) on the complement tensor.
///
/// * `complement` — `X \ X̃` in the **new snapshot's coordinate space**
///   (shape = new shape; no entry fully inside the old box);
/// * `old_factors` — `{Ã_n}`, the CP factors of the previous snapshot
///   (zero-row matrices for a cold start);
/// * the tensor shape doubles as the new snapshot shape.
///
/// # Errors
/// Validates configuration and shapes; propagates solver errors.
pub fn dtd(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    cfg: &DecompConfig,
) -> Result<DtdOutput> {
    cfg.validate().map_err(TensorError::InvalidArgument)?;
    let new_shape = complement.shape();
    let n_modes = complement.order();
    if old_factors.len() != n_modes {
        return Err(TensorError::ShapeMismatch {
            op: "dtd old_factors",
            left: vec![n_modes],
            right: vec![old_factors.len()],
        });
    }
    let old_rows: Vec<usize> = old_factors.iter().map(Matrix::rows).collect();
    // Every complement entry must lie outside the old box.
    debug_assert!(complement
        .iter()
        .all(|(idx, _)| SparseTensor::block_of(idx, &old_rows) != 0));

    let mut factors = init_factors(old_factors, new_shape, cfg.rank, cfg.seed)?;
    let mut state = GramState::compute(&factors, &old_rows)?;
    for (k, of) in old_factors.iter().enumerate() {
        let a0 = factors[k].row_block(0, old_rows[k])?;
        state.cross[k] = of.cross_gram(&a0)?;
    }

    // Constants of the snapshot (Sec. IV-B4 "pre-computed" terms).
    let old_norm_sq = if old_rows.iter().all(|&r| r > 0) {
        let grams: Vec<Matrix> = old_factors.iter().map(Matrix::gram).collect();
        let refs: Vec<&Matrix> = grams.iter().collect();
        grand_sum_hadamard(&refs)?
    } else {
        0.0
    };
    let complement_norm_sq = complement.norm_sq();

    let solver = RobustSolver::new(cfg.numerics.solver);
    let mut numerics = NumericsReport::default();
    let mut loss_trace = Vec::with_capacity(cfg.max_iters);
    let mut iterations = 0;
    for _iter in 0..cfg.max_iters {
        let mut final_inner = 0.0;
        for n in 0..n_modes {
            // MTTKRP over the complement — the bottleneck operator.
            let hat = {
                let _s = dismastd_obs::span("phase/mttkrp");
                mttkrp(complement, &factors, n)?
            };

            let old_n = old_rows[n];
            let (a0, a1) = {
                let _s = dismastd_obs::span("phase/solve");

                // Denominators (Eq. 5).
                let totals: Vec<Matrix> = (0..n_modes)
                    .map(|k| state.total(k))
                    .collect::<Result<_>>()?;
                let d1 = hadamard_skip(&totals, n)?;
                let d0 = {
                    let g0_had = hadamard_skip(&state.gram0, n)?;
                    d1.sub(&g0_had.scale(1.0 - cfg.forgetting))?
                };

                let hat0 = hat.row_block(0, old_n)?;
                let hat1 = hat.row_block(old_n, hat.rows())?;

                // A_n^(0): μ Ã_n (⊛_{k≠n} G̃_k) + Â^(0), divided by D0.
                let a0 = if old_n > 0 {
                    let cross_had = hadamard_skip(&state.cross, n)?;
                    let mut num0 = old_factors[n].matmul(&cross_had)?;
                    num0.scale_assign(cfg.forgetting);
                    num0.add_assign(&hat0)?;
                    solver.solve_right(&num0, &d0, &mut numerics)?
                } else {
                    Matrix::zeros(0, cfg.rank)
                };

                // A_n^(1): Â^(1) divided by D1.
                let a1 = if hat1.rows() > 0 {
                    solver.solve_right(&hat1, &d1, &mut numerics)?
                } else {
                    Matrix::zeros(0, cfg.rank)
                };
                (a0, a1)
            };

            factors[n] = a0.vstack(&a1)?;

            {
                let _s = dismastd_obs::span("phase/gram");
                // Refresh the cached products for mode n (Sec. IV-B3).
                state.gram0[n] = a0.gram();
                state.gram1[n] = a1.gram();
                state.cross[n] = if old_n > 0 {
                    old_factors[n].cross_gram(&a0)?
                } else {
                    Matrix::zeros(cfg.rank, cfg.rank)
                };
            }

            if n == n_modes - 1 {
                // Reuse Â for ⟨X\X̃, ⟦A⟧⟩ (Eq. 7): all other factors are at
                // their final values for this iteration, and mode n was just
                // updated from this very Â.
                let _s = dismastd_obs::span("phase/loss");
                final_inner = inner_from_mttkrp(&hat, &factors[n])?;
            }
        }
        iterations += 1;
        let loss = {
            let _s = dismastd_obs::span("phase/loss");
            dtd_loss(
                &state,
                &LossParts {
                    mu: cfg.forgetting,
                    old_norm_sq,
                    complement_norm_sq,
                    inner: final_inner,
                },
            )?
        };
        loss_trace.push(loss);
        if converged(&loss_trace, cfg.tolerance) {
            break;
        }
    }

    // Label 0/1/2 = cholesky/lu/ridge: which tiers the solves escalated
    // through, visible per step without digging into NumericsReport.
    if numerics.cholesky_solves > 0 {
        dismastd_obs::counter_add_with("solve/tier", 0, numerics.cholesky_solves);
    }
    if numerics.lu_solves > 0 {
        dismastd_obs::counter_add_with("solve/tier", 1, numerics.lu_solves);
    }
    if numerics.ridge_solves > 0 {
        dismastd_obs::counter_add_with("solve/tier", 2, numerics.ridge_solves);
    }

    Ok(DtdOutput {
        kruskal: KruskalTensor::new(factors)?,
        iterations,
        loss_trace,
        numerics,
    })
}

/// "Fit ceases to improve" test (Alg. 1 line 7): relative improvement of the
/// last step below `tol`.
pub(crate) fn converged(trace: &[f64], tol: f64) -> bool {
    if tol <= 0.0 || trace.len() < 2 {
        return false;
    }
    let prev = trace[trace.len() - 2];
    let cur = trace[trace.len() - 1];
    let denom = prev.abs().max(1e-30);
    (prev - cur) / denom < tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::naive_dtd_loss;
    use dismastd_tensor::SparseTensorBuilder;
    use rand::Rng;

    fn cfg(rank: usize) -> DecompConfig {
        DecompConfig::default()
            .with_rank(rank)
            .with_max_iters(15)
            .with_seed(7)
    }

    /// Complement tensor over `new_shape` given `old_shape`, random entries.
    fn random_complement(
        old_shape: &[usize],
        new_shape: &[usize],
        nnz: usize,
        seed: u64,
    ) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = SparseTensorBuilder::new(new_shape.to_vec());
        let mut placed = 0;
        while placed < nnz {
            let idx: Vec<usize> = new_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            if SparseTensor::block_of(&idx, old_shape) == 0 {
                continue;
            }
            b.push(&idx, rng.gen_range(-1.0..1.0)).unwrap();
            placed += 1;
        }
        b.build().unwrap()
    }

    fn random_old_factors(old_shape: &[usize], rank: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        old_shape
            .iter()
            .map(|&s| Matrix::random(s, rank, &mut rng))
            .collect()
    }

    #[test]
    fn init_factors_stacks_old_over_random() {
        let old = random_old_factors(&[3, 2], 2, 1);
        let f = init_factors(&old, &[5, 4], 2, 9).unwrap();
        assert_eq!(f[0].rows(), 5);
        assert_eq!(f[1].rows(), 4);
        // Old block preserved verbatim.
        assert_eq!(f[0].row_block(0, 3).unwrap(), old[0]);
        assert_eq!(f[1].row_block(0, 2).unwrap(), old[1]);
        // Deterministic per seed.
        let g = init_factors(&old, &[5, 4], 2, 9).unwrap();
        assert_eq!(f, g);
        let h = init_factors(&old, &[5, 4], 2, 10).unwrap();
        assert_ne!(f, h);
    }

    #[test]
    fn init_factors_validates() {
        let old = random_old_factors(&[5], 2, 1);
        assert!(init_factors(&old, &[3], 2, 0).is_err()); // shrinking mode
        assert!(init_factors(&old, &[5, 5], 2, 0).is_err()); // order mismatch
        assert!(init_factors(&old, &[6], 3, 0).is_err()); // rank mismatch
    }

    #[test]
    fn loss_is_monotone_nonincreasing() {
        // ALS minimises Eq. 4 exactly per block, so the surrogate loss must
        // not increase between iterations.
        let old_shape = [4usize, 5, 3];
        let new_shape = [6usize, 7, 5];
        let old = random_old_factors(&old_shape, 3, 2);
        let x = random_complement(&old_shape, &new_shape, 60, 3);
        let out = dtd(&x, &old, &cfg(3)).unwrap();
        for w in out.loss_trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()),
                "loss increased: {:?}",
                out.loss_trace
            );
        }
    }

    #[test]
    fn internal_loss_matches_naive_oracle_at_convergence() {
        let old_shape = [3usize, 3, 2];
        let new_shape = [5usize, 4, 4];
        let old = random_old_factors(&old_shape, 2, 4);
        let x = random_complement(&old_shape, &new_shape, 30, 5);
        let out = dtd(&x, &old, &cfg(2)).unwrap();
        let reported = *out.loss_trace.last().unwrap();
        let naive = naive_dtd_loss(&x, &old, out.kruskal.factors(), 0.8).unwrap();
        assert!(
            (reported - naive).abs() < 1e-8 * (1.0 + naive.abs()),
            "{reported} vs {naive}"
        );
    }

    #[test]
    fn exact_rank_recovery_on_synthetic_complement() {
        // Build a complement that *is* low rank: sample a ground-truth
        // Kruskal tensor on the full box and keep only cells outside the old
        // box.  DTD should drive the complement residual near zero.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let old_shape = [3usize, 3, 3];
        let new_shape = [5usize, 5, 5];
        let rank = 2;
        let truth: Vec<Matrix> = new_shape
            .iter()
            .map(|&s| Matrix::random(s, rank, &mut rng))
            .collect();
        let truth_k = KruskalTensor::new(truth.clone()).unwrap();
        let dense = truth_k.to_dense().unwrap();
        let mut b = SparseTensorBuilder::new(new_shape.to_vec());
        for (idx, v) in dense.iter_all() {
            if SparseTensor::block_of(&idx, &old_shape) != 0 {
                b.push(&idx, v).unwrap();
            }
        }
        let complement = b.build().unwrap();
        // Old factors: the truth restricted to the old box (a perfectly
        // consistent previous decomposition).
        let old: Vec<Matrix> = truth
            .iter()
            .zip(&old_shape)
            .map(|(f, &r)| f.row_block(0, r).unwrap())
            .collect();
        let out = dtd(
            &complement,
            &old,
            &cfg(rank).with_max_iters(60).with_forgetting(1.0),
        )
        .unwrap();
        let final_loss = *out.loss_trace.last().unwrap();
        let scale = complement.norm_sq();
        assert!(
            final_loss < 1e-4 * scale,
            "loss {final_loss} vs tensor norm² {scale}"
        );
    }

    #[test]
    fn cold_start_equals_static_behaviour() {
        // Zero-row old factors: DTD must run and the loss must equal the
        // static residual ‖X − ⟦A⟧‖².
        let shape = [6usize, 5, 4];
        let zero_old: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(0, 3)).collect();
        let x = random_complement(&[0, 0, 0], &shape, 50, 6);
        let out = dtd(&x, &zero_old, &cfg(3)).unwrap();
        let reported = *out.loss_trace.last().unwrap();
        let direct = out.kruskal.residual_norm_sq(&x).unwrap();
        assert!(
            (reported - direct).abs() < 1e-8 * (1.0 + direct),
            "{reported} vs {direct}"
        );
    }

    #[test]
    fn respects_max_iters_and_tolerance() {
        let old_shape = [3usize, 3];
        let new_shape = [5usize, 5];
        let old = random_old_factors(&old_shape, 2, 8);
        let x = random_complement(&old_shape, &new_shape, 20, 9);
        let out = dtd(&x, &old, &cfg(2).with_max_iters(3)).unwrap();
        assert_eq!(out.iterations, 3);
        assert_eq!(out.loss_trace.len(), 3);
        // With a loose tolerance it stops early.
        let out2 = dtd(&x, &old, &cfg(2).with_max_iters(50).with_tolerance(0.5)).unwrap();
        assert!(out2.iterations < 50);
    }

    #[test]
    fn converged_logic() {
        assert!(!converged(&[10.0], 1e-2));
        assert!(!converged(&[10.0, 5.0], 1e-2)); // 50% improvement
        assert!(converged(&[10.0, 9.9999], 1e-2)); // 0.001% improvement
        assert!(!converged(&[10.0, 9.0], 0.0)); // tol 0 never converges
        assert!(converged(&[5.0, 5.0], 1e-9)); // no improvement at all
    }

    #[test]
    fn fourth_order_tensor_supported() {
        let old_shape = [2usize, 3, 2, 2];
        let new_shape = [4usize, 4, 3, 3];
        let old = random_old_factors(&old_shape, 2, 12);
        let x = random_complement(&old_shape, &new_shape, 40, 13);
        let out = dtd(&x, &old, &cfg(2)).unwrap();
        assert_eq!(out.kruskal.order(), 4);
        assert_eq!(out.kruskal.shape(), new_shape.to_vec());
        for w in out.loss_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9 * (1.0 + w[0].abs()));
        }
    }

    #[test]
    fn empty_complement_keeps_old_factors_shape() {
        // Snapshot grew but no new nonzeros arrived: DTD still runs (the
        // new rows fit only the μ-term and the zero complement).
        let old_shape = [3usize, 3];
        let old = random_old_factors(&old_shape, 2, 14);
        let x = SparseTensor::empty(vec![4, 4]).unwrap();
        let out = dtd(&x, &old, &cfg(2)).unwrap();
        assert_eq!(out.kruskal.shape(), vec![4, 4]);
    }

    #[test]
    fn numerics_report_counts_solves() {
        let old_shape = [3usize, 3];
        let old = random_old_factors(&old_shape, 2, 8);
        let x = random_complement(&old_shape, &[5, 5], 20, 9);
        let out = dtd(&x, &old, &cfg(2).with_max_iters(3)).unwrap();
        // Both blocks are present in both modes, so every iteration issues
        // two solves per mode.
        let total =
            out.numerics.cholesky_solves + out.numerics.lu_solves + out.numerics.ridge_solves;
        assert_eq!(total, 2 * 2 * 3);
        assert!(!out.numerics.escalated());
    }

    #[test]
    fn rejects_bad_config_and_shapes() {
        let old = random_old_factors(&[2, 2], 2, 15);
        let x = SparseTensor::empty(vec![3, 3]).unwrap();
        assert!(dtd(&x, &old, &cfg(0)).is_err()); // rank 0
        let bad_old = random_old_factors(&[2], 2, 15);
        assert!(dtd(&x, &bad_old, &cfg(2)).is_err()); // order mismatch
    }
}

//! DTD loss assembly — Sec. IV-B4's "maintain and reuse" computation.
//!
//! The Eq. 4 objective splits into a previous-snapshot surrogate term and a
//! per-subtensor residual term.  Everything reduces to `R x R` Gram products
//! that the ALS iteration already maintains, plus one inner product that
//! reuses the final mode's MTTKRP — so the loss costs `O(N R²)` instead of a
//! second `O(nnz·N·R)` pass.
//!
//! One notational correction relative to the paper: the expansion of
//! `L^(0,0,0)` on page 7 writes `‖ÃᵀÃ ⊛ B̃ᵀB̃ ⊛ C̃ᵀC̃‖²_F` where the Kruskal
//! inner-product identity actually requires the **grand sum** of the
//! Hadamard product (`⟨⟦A⟧,⟦B⟧⟩ = 1ᵀ(⊛_k A_kᵀB_k)1`, Kolda & Bader 2009);
//! we implement the correct identity, which the oracle tests confirm.

use dismastd_tensor::matrix::Matrix;
use dismastd_tensor::ops::grand_sum_hadamard;
use dismastd_tensor::{DenseTensor, KruskalTensor, Result, SparseTensor};

/// The `R x R` intermediates maintained per mode during a DTD sweep.
#[derive(Debug, Clone)]
pub struct GramState {
    /// `G_n^0 = A_n^(0)ᵀ A_n^(0)` (old-row blocks).
    pub gram0: Vec<Matrix>,
    /// `G_n^1 = A_n^(1)ᵀ A_n^(1)` (new-row blocks).
    pub gram1: Vec<Matrix>,
    /// `G̃_n = Ã_nᵀ A_n^(0)` (previous snapshot × current old block).
    pub cross: Vec<Matrix>,
}

impl GramState {
    /// Initialises the state from the stacked factors and old row counts.
    pub fn compute(factors: &[Matrix], old_rows: &[usize]) -> Result<Self> {
        let mut gram0 = Vec::with_capacity(factors.len());
        let mut gram1 = Vec::with_capacity(factors.len());
        for (f, &old) in factors.iter().zip(old_rows) {
            let a0 = f.row_block(0, old)?;
            let a1 = f.row_block(old, f.rows())?;
            gram0.push(a0.gram());
            gram1.push(a1.gram());
        }
        // At construction the old block equals the previous factors, so the
        // caller usually replaces `cross`; default to gram0 (Ã == A^(0)).
        let cross = gram0.clone();
        Ok(GramState {
            gram0,
            gram1,
            cross,
        })
    }

    /// Sum `G_n^0 + G_n^1` for one mode.
    pub fn total(&self, mode: usize) -> Result<Matrix> {
        self.gram0[mode].add(&self.gram1[mode])
    }
}

/// Inputs for one loss evaluation, all `O(R²)` or scalars.
#[derive(Debug, Clone, Copy)]
pub struct LossParts {
    /// Forgetting factor `μ`.
    pub mu: f64,
    /// Constant `1ᵀ(⊛_k Ã_kᵀÃ_k)1 = ‖⟦Ã⟧‖²` — precomputed once per snapshot.
    pub old_norm_sq: f64,
    /// `‖X \ X̃‖²` — precomputed once per snapshot.
    pub complement_norm_sq: f64,
    /// `⟨X \ X̃, ⟦A⟧⟩` — reused from the final mode's MTTKRP (Eq. 7).
    pub inner: f64,
}

/// Assembles the Eq. 4 loss from maintained intermediates.
///
/// * `L^(0…0) = μ(‖⟦Ã⟧‖² + 1ᵀ(⊛G⁰)1 − 2·1ᵀ(⊛G̃)1)`
/// * `Σ_{s≠0}‖Y^s‖² = 1ᵀ(⊛(G⁰+G¹))1 − 1ᵀ(⊛G⁰)1` (closed form over the
///   `2^N − 1` non-zero block signatures)
/// * `L₀ = ‖X\X̃‖² + Σ_{s≠0}‖Y^s‖² − 2⟨X\X̃, ⟦A⟧⟩`
///
/// # Errors
/// Propagates shape mismatches from the Gram products.
pub fn dtd_loss(state: &GramState, parts: &LossParts) -> Result<f64> {
    let n = state.gram0.len();
    // 1ᵀ(⊛ G⁰)1
    let g0_refs: Vec<&Matrix> = state.gram0.iter().collect();
    let sum_g0 = grand_sum_hadamard(&g0_refs)?;
    // 1ᵀ(⊛ G̃)1
    let cross_refs: Vec<&Matrix> = state.cross.iter().collect();
    let sum_cross = grand_sum_hadamard(&cross_refs)?;
    // 1ᵀ(⊛ (G⁰+G¹))1
    let totals: Vec<Matrix> = (0..n).map(|k| state.total(k)).collect::<Result<_>>()?;
    let total_refs: Vec<&Matrix> = totals.iter().collect();
    let sum_total = grand_sum_hadamard(&total_refs)?;

    let l_old = parts.mu * (parts.old_norm_sq + sum_g0 - 2.0 * sum_cross);
    let y_norm_outside = sum_total - sum_g0;
    let l0 = parts.complement_norm_sq + y_norm_outside - 2.0 * parts.inner;
    Ok(l_old + l0)
}

/// Brute-force oracle for [`dtd_loss`] (testing only).
///
/// Evaluates Eq. 4 literally: the surrogate term through exact Kruskal
/// algebra and the complement term by dense reconstruction over every cell
/// outside the old bounding box.  Cost is `Π_k I_k · R` — tiny tensors only.
///
/// # Errors
/// Propagates shape errors from reconstruction.
pub fn naive_dtd_loss(
    complement: &SparseTensor,
    old_factors: &[Matrix],
    factors: &[Matrix],
    mu: f64,
) -> Result<f64> {
    let old_rows: Vec<usize> = old_factors.iter().map(Matrix::rows).collect();
    // Surrogate term μ‖⟦Ã⟧ − ⟦A^(0)⟧‖².
    let l_old = if old_rows.iter().all(|&r| r > 0) {
        let a0: Vec<Matrix> = factors
            .iter()
            .zip(&old_rows)
            .map(|(f, &r)| f.row_block(0, r))
            .collect::<Result<_>>()?;
        let old_k = KruskalTensor::new(old_factors.to_vec())?;
        let a0_k = KruskalTensor::new(a0)?;
        mu * (old_k.norm_sq() + a0_k.norm_sq() - 2.0 * old_k.inner(&a0_k)?)
    } else {
        0.0
    };
    // Complement term: dense residual over cells outside the old box.
    let k = KruskalTensor::new(factors.to_vec())?;
    let y = k.to_dense()?;
    let x = DenseTensor::from_sparse(complement)?;
    let mut l0 = 0.0;
    for (idx, yv) in y.iter_all() {
        if SparseTensor::block_of(&idx, &old_rows) == 0 {
            continue; // inside the old box: covered by the surrogate term
        }
        let d = x.get(&idx) - yv;
        l0 += d * d;
    }
    Ok(l_old + l0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::mttkrp::{inner_from_mttkrp, mttkrp};
    use dismastd_tensor::SparseTensorBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Builds a random DTD-shaped problem: old factors, stacked current
    /// factors, and a complement tensor living outside the old box.
    fn setup(seed: u64) -> (SparseTensor, Vec<Matrix>, Vec<Matrix>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let old_shape = [2usize, 3, 2];
        let new_shape = [4usize, 4, 3];
        let old_factors: Vec<Matrix> = old_shape
            .iter()
            .map(|&s| Matrix::random(s, 2, &mut rng))
            .collect();
        let factors: Vec<Matrix> = new_shape
            .iter()
            .map(|&s| Matrix::random(s, 2, &mut rng))
            .collect();
        let mut b = SparseTensorBuilder::new(new_shape.to_vec());
        // Entries strictly outside the old box (at least one coord beyond).
        b.push(&[3, 0, 0], 1.0).unwrap();
        b.push(&[0, 3, 1], -2.0).unwrap();
        b.push(&[1, 2, 2], 0.7).unwrap();
        b.push(&[3, 3, 2], 1.2).unwrap();
        b.push(&[2, 1, 0], -0.4).unwrap();
        let complement = b.build().unwrap();
        (complement, old_factors, factors, old_shape.to_vec())
    }

    fn assemble_parts(
        complement: &SparseTensor,
        old_factors: &[Matrix],
        factors: &[Matrix],
        old_rows: &[usize],
        mu: f64,
    ) -> (GramState, LossParts) {
        let mut state = GramState::compute(factors, old_rows).unwrap();
        // True cross Grams Ã ᵀ A^(0).
        for (k, of) in old_factors.iter().enumerate() {
            let a0 = factors[k].row_block(0, old_rows[k]).unwrap();
            state.cross[k] = of.cross_gram(&a0).unwrap();
        }
        let old_k = KruskalTensor::new(old_factors.to_vec()).unwrap();
        let last = factors.len() - 1;
        let hat = mttkrp(complement, factors, last).unwrap();
        let inner = inner_from_mttkrp(&hat, &factors[last]).unwrap();
        let parts = LossParts {
            mu,
            old_norm_sq: old_k.norm_sq(),
            complement_norm_sq: complement.norm_sq(),
            inner,
        };
        (state, parts)
    }

    #[test]
    fn reuse_loss_matches_naive_oracle() {
        for seed in [1u64, 2, 3, 7, 13] {
            let (complement, old_factors, factors, old_rows) = setup(seed);
            let mu = 0.8;
            let (state, parts) = assemble_parts(&complement, &old_factors, &factors, &old_rows, mu);
            let fast = dtd_loss(&state, &parts).unwrap();
            let naive = naive_dtd_loss(&complement, &old_factors, &factors, mu).unwrap();
            assert!(
                (fast - naive).abs() < 1e-9 * (1.0 + naive.abs()),
                "seed {seed}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn mu_zero_like_limit_reduces_to_complement_loss() {
        // With μ → 0 only the complement residual remains.
        let (complement, old_factors, factors, old_rows) = setup(5);
        let (state, mut parts) =
            assemble_parts(&complement, &old_factors, &factors, &old_rows, 1e-12);
        parts.mu = 0.0;
        let fast = dtd_loss(&state, &parts).unwrap();
        let naive = naive_dtd_loss(&complement, &old_factors, &factors, 0.0).unwrap();
        assert!((fast - naive).abs() < 1e-9);
    }

    #[test]
    fn cold_start_loss_equals_static_loss() {
        // Zero-row old factors (the DMS-MG / static path): the loss must
        // equal ‖X − ⟦A⟧‖² over the whole tensor.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let shape = [3usize, 3, 3];
        let factors: Vec<Matrix> = shape
            .iter()
            .map(|&s| Matrix::random(s, 2, &mut rng))
            .collect();
        let old_factors: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(0, 2)).collect();
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        b.push(&[0, 0, 0], 2.0).unwrap();
        b.push(&[2, 1, 2], -1.0).unwrap();
        let x = b.build().unwrap();

        let old_rows = vec![0usize; 3];
        let (state, parts) = assemble_parts(&x, &old_factors, &factors, &old_rows, 0.8);
        let fast = dtd_loss(&state, &parts).unwrap();
        let k = KruskalTensor::new(factors.clone()).unwrap();
        let static_loss = k.residual_norm_sq(&x).unwrap();
        assert!((fast - static_loss).abs() < 1e-9, "{fast} vs {static_loss}");
    }

    #[test]
    fn gram_state_totals() {
        let (_, _, factors, old_rows) = setup(11);
        let state = GramState::compute(&factors, &old_rows).unwrap();
        for k in 0..3 {
            let t = state.total(k).unwrap();
            let full = factors[k].gram();
            assert!(t.max_abs_diff(&full).unwrap() < 1e-12, "G0+G1 == full gram");
        }
    }

    #[test]
    fn loss_is_nonnegative_for_valid_inputs() {
        for seed in 20..30u64 {
            let (complement, old_factors, factors, old_rows) = setup(seed);
            let (state, parts) =
                assemble_parts(&complement, &old_factors, &factors, &old_rows, 0.8);
            let l = dtd_loss(&state, &parts).unwrap();
            assert!(l > -1e-9, "seed {seed}: loss {l}");
        }
    }
}

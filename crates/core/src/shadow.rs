//! Shadow-state checking for simulated distributed runs.
//!
//! [`ShadowOracle`] replays every ingested snapshot against two reference
//! executions and cross-checks the observed session after each step:
//!
//! 1. **A fault-free distributed replica** with the same configuration and
//!    the same (mirrored) membership history.  The distributed
//!    decomposition is deterministic for a fixed configuration, so the
//!    observed factors — however much chaos, virtual latency, or partition
//!    scheduling the simulator injected — must match the replica's
//!    **bit for bit**.  Any divergence means the runtime corrupted state
//!    (a dropped message that should have been retransmitted, a stale
//!    plan-cache entry surviving a membership change, …).
//! 2. **The serial oracle.**  Serial and distributed execution sum partial
//!    MTTKRP contributions in different orders, so their factors agree to
//!    floating-point *tolerance*, not bitwise (the repo-wide contract,
//!    see `tests/serial_vs_distributed.rs`).  The oracle checks every
//!    factor entry against the serial run within `tolerance`.
//!
//! The split matters: a bitwise check against the serial solver would be
//! wrong (summation order differs by placement), and a tolerance-only
//! check against the replica would be too weak (it would miss single-ulp
//! state corruption that deterministic replay is supposed to exclude).

use crate::config::DecompConfig;
use crate::distributed::ClusterConfig;
use crate::session::{ExecutionMode, StreamingSession};
use dismastd_tensor::{KruskalTensor, Result, SparseTensor, TensorError};

/// Replays ingests against a fault-free distributed replica (bitwise
/// check) and the serial oracle (tolerance check).  See the module docs.
#[derive(Debug)]
pub struct ShadowOracle {
    serial: StreamingSession,
    replica: StreamingSession,
    tolerance: f64,
    steps_checked: usize,
}

impl ShadowOracle {
    /// An oracle mirroring a distributed session created with `cfg` and
    /// `cluster`.  The default serial-vs-distributed tolerance is `1e-5`
    /// per factor entry (matching the repo's equivalence suites).
    pub fn new(cfg: DecompConfig, cluster: ClusterConfig) -> Self {
        ShadowOracle {
            serial: StreamingSession::new(cfg, ExecutionMode::Serial),
            replica: StreamingSession::new(cfg, ExecutionMode::Distributed(cluster)),
            tolerance: 1e-5,
            steps_checked: 0,
        }
    }

    /// Overrides the serial-comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Steps verified so far.
    pub fn steps_checked(&self) -> usize {
        self.steps_checked
    }

    /// Verifies `observed` after it ingested `snapshot`: mirrors the
    /// observed session's current world size onto the replica, ingests
    /// `snapshot` into both references, and runs the bitwise (replica) and
    /// tolerance (serial) comparisons.
    ///
    /// Call once per step, *after* the observed session's ingest returned.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] naming the first differing
    /// factor entry on a mismatch, and propagates reference-execution
    /// failures.
    pub fn check_step(
        &mut self,
        snapshot: &SparseTensor,
        observed: &StreamingSession,
    ) -> Result<()> {
        // Mirror membership: the observed session has already applied its
        // queued transitions for this step, so its mode carries the
        // effective world size.  The replica follows via the same elastic
        // path (request + apply at its own ingest boundary), exercising
        // the production transition code rather than poking fields.
        if let ExecutionMode::Distributed(cc) = observed.mode() {
            let observed_world = cc.workers;
            let replica_world = match self.replica.mode() {
                ExecutionMode::Distributed(rcc) => rcc.workers,
                ExecutionMode::Serial => 1,
            };
            if observed_world > replica_world {
                self.replica.request_join(observed_world - replica_world)?;
            } else if observed_world < replica_world {
                self.replica.request_leave(replica_world - observed_world)?;
            }
        }
        self.replica.ingest(snapshot)?;
        self.serial.ingest(snapshot)?;

        let observed_factors = observed.factors().ok_or_else(|| {
            TensorError::InvalidArgument("shadow check: observed session has no factors".into())
        })?;
        let replica_factors = self.replica.factors().ok_or_else(|| {
            TensorError::InvalidArgument("shadow check: replica produced no factors".into())
        })?;
        let serial_factors = self.serial.factors().ok_or_else(|| {
            TensorError::InvalidArgument("shadow check: serial oracle produced no factors".into())
        })?;

        compare_bitwise(observed_factors, replica_factors, self.steps_checked)?;
        compare_tolerance(
            observed_factors,
            serial_factors,
            self.tolerance,
            self.steps_checked,
        )?;
        self.steps_checked += 1;
        Ok(())
    }
}

/// Factors must agree bit for bit (observed vs fault-free replica).
fn compare_bitwise(observed: &KruskalTensor, replica: &KruskalTensor, step: usize) -> Result<()> {
    check_same_shape(observed, replica, step)?;
    for mode in 0..observed.order() {
        let a = observed.factor(mode);
        let b = replica.factor(mode);
        for row in 0..a.rows() {
            for (col, (&x, &y)) in a.row(row).iter().zip(b.row(row)).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Err(TensorError::InvalidArgument(format!(
                        "shadow check (step {step}): factor[{mode}][{row},{col}] diverged \
                         from the fault-free replica: {x:?} vs {y:?} (bitwise)"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Factors must agree within `tol` (observed vs serial oracle).
fn compare_tolerance(
    observed: &KruskalTensor,
    serial: &KruskalTensor,
    tol: f64,
    step: usize,
) -> Result<()> {
    check_same_shape(observed, serial, step)?;
    for mode in 0..observed.order() {
        let a = observed.factor(mode);
        let b = serial.factor(mode);
        for row in 0..a.rows() {
            for (col, (&x, &y)) in a.row(row).iter().zip(b.row(row)).enumerate() {
                let diff = (x - y).abs();
                // NaN diffs (either side non-finite) must fail too.
                if diff.is_nan() || diff > tol {
                    return Err(TensorError::InvalidArgument(format!(
                        "shadow check (step {step}): factor[{mode}][{row},{col}] off the \
                         serial oracle by {diff:e} (> {tol:e}): {x} vs {y}"
                    )));
                }
            }
        }
    }
    Ok(())
}

fn check_same_shape(a: &KruskalTensor, b: &KruskalTensor, step: usize) -> Result<()> {
    if a.order() != b.order() || a.rank() != b.rank() || a.shape() != b.shape() {
        return Err(TensorError::InvalidArgument(format!(
            "shadow check (step {step}): factor geometry mismatch \
             (order {} vs {}, rank {} vs {}, shape {:?} vs {:?})",
            a.order(),
            b.order(),
            a.rank(),
            b.rank(),
            a.shape(),
            b.shape()
        )));
    }
    Ok(())
}

//! Decomposition configuration.

use dismastd_tensor::{SolvePolicy, ThreadPolicy, ValidationMode};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Hyper-parameters shared by every decomposition in this crate.
///
/// Defaults follow the paper's experimental setup (Sec. V-A): rank `R = 10`,
/// forgetting factor `μ = 0.8`, at most 10 ALS iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DecompConfig {
    /// CP rank `R` (column count of every factor matrix).
    pub rank: usize,
    /// Forgetting factor `μ ∈ (0, 1]` weighting the previous snapshot's
    /// decomposition error (Eq. 2).  `μ = 1` trusts the old decomposition
    /// fully; smaller values decay it.
    pub forgetting: f64,
    /// Maximum number of ALS iterations per snapshot.
    pub max_iters: usize,
    /// Relative loss-improvement threshold below which iteration stops
    /// ("fit ceases to improve", Alg. 1 line 7).  `0.0` always runs
    /// `max_iters` iterations (the paper's timing protocol).
    pub tolerance: f64,
    /// Seed for the random initialisation of new factor rows.
    pub seed: u64,
    /// Numerical-robustness policy (conditioned solves, divergence
    /// watchdog, ingest validation).  Optional on decode — see the manual
    /// [`Deserialize`] impl — so checkpoints written before this field
    /// existed stay readable.
    pub numerics: NumericsPolicy,
    /// Intra-worker thread budget for the MTTKRP kernels and plan builds.
    /// `Auto` (the default) honours `DISMASTD_THREADS` and falls back to
    /// the machine's available parallelism; `Fixed(n)` pins the count.
    /// Thread count never changes factor bits (the pooled kernels are
    /// bitwise identical to serial), so this is purely a throughput knob.
    /// Optional on decode, like `numerics`.
    pub threads: ThreadPolicy,
}

// Hand-written so `numerics` is optional: checkpoints serialized before the
// robustness layer existed decode to the default policy instead of failing
// with a missing-field error.
impl Deserialize for DecompConfig {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::new("expected object for `DecompConfig`"))?;
        Ok(DecompConfig {
            rank: Deserialize::from_value(serde::field(obj, "rank")?)?,
            forgetting: Deserialize::from_value(serde::field(obj, "forgetting")?)?,
            max_iters: Deserialize::from_value(serde::field(obj, "max_iters")?)?,
            tolerance: Deserialize::from_value(serde::field(obj, "tolerance")?)?,
            seed: Deserialize::from_value(serde::field(obj, "seed")?)?,
            numerics: match serde::field(obj, "numerics") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => NumericsPolicy::default(),
            },
            threads: match serde::field(obj, "threads") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => ThreadPolicy::default(),
            },
        })
    }
}

impl Default for DecompConfig {
    fn default() -> Self {
        DecompConfig {
            rank: 10,
            forgetting: 0.8,
            max_iters: 10,
            tolerance: 0.0,
            seed: 42,
            numerics: NumericsPolicy::default(),
            threads: ThreadPolicy::default(),
        }
    }
}

impl DecompConfig {
    /// Returns the config with a different rank.
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Returns the config with a different forgetting factor.
    pub fn with_forgetting(mut self, mu: f64) -> Self {
        self.forgetting = mu;
        self
    }

    /// Returns the config with a different iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Returns the config with a different convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Returns the config with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different numerics policy.
    pub fn with_numerics(mut self, numerics: NumericsPolicy) -> Self {
        self.numerics = numerics;
        self
    }

    /// Returns the config with a different ingest validation mode.
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.numerics.validation = mode;
        self
    }

    /// Returns the config with a different intra-worker thread policy.
    pub fn with_threads(mut self, threads: ThreadPolicy) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rank == 0 {
            return Err("rank must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.forgetting) || self.forgetting == 0.0 {
            return Err("forgetting factor must lie in (0, 1]".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be >= 1".into());
        }
        if self.tolerance < 0.0 {
            return Err("tolerance must be non-negative".into());
        }
        self.numerics.validate()
    }
}

/// Bundle of the numerical-robustness knobs: solve escalation, divergence
/// watchdog, and ingest validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericsPolicy {
    /// Escalation ladder for the `R x R` normal-equation solves.
    pub solver: SolvePolicy,
    /// Divergence watchdog over the per-step loss trace.
    pub watchdog: WatchdogPolicy,
    /// How ingested snapshots are validated (default: Strict — reject
    /// non-finite values with a typed error naming the coordinate).
    pub validation: ValidationMode,
}

impl Default for NumericsPolicy {
    fn default() -> Self {
        NumericsPolicy {
            solver: SolvePolicy::default(),
            watchdog: WatchdogPolicy::default(),
            validation: ValidationMode::Strict,
        }
    }
}

impl NumericsPolicy {
    /// Policy with a different solve-escalation ladder.
    pub fn with_solver(mut self, solver: SolvePolicy) -> Self {
        self.solver = solver;
        self
    }

    /// Policy with a different watchdog configuration.
    pub fn with_watchdog(mut self, watchdog: WatchdogPolicy) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Policy with a different ingest validation mode.
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// True when the policy tolerates lossy communication (the f32
    /// factor-row downcast of `CommPolicy::downcast_f32`).  Gated on the
    /// divergence watchdog: downcasting perturbs the ALS trajectory, so it
    /// is only safe when a monitor can roll back a step the perturbation
    /// destabilises.
    pub fn allows_lossy_comm(&self) -> bool {
        self.watchdog.enabled
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.solver.condition_limit.is_nan() || self.solver.condition_limit <= 1.0 {
            return Err("solver.condition_limit must be > 1".into());
        }
        if self.solver.ridge_initial.is_nan() || self.solver.ridge_initial <= 0.0 {
            return Err("solver.ridge_initial must be positive".into());
        }
        if self.solver.ridge_growth.is_nan() || self.solver.ridge_growth <= 1.0 {
            return Err("solver.ridge_growth must be > 1".into());
        }
        if self.solver.max_ridge_steps == 0 {
            return Err("solver.max_ridge_steps must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.watchdog.mu_damping) || self.watchdog.mu_damping == 0.0 {
            return Err("watchdog.mu_damping must lie in (0, 1]".into());
        }
        if self.watchdog.patience == 0 {
            return Err("watchdog.patience must be >= 1".into());
        }
        if self.watchdog.increase_tolerance < 0.0 {
            return Err("watchdog.increase_tolerance must be non-negative".into());
        }
        Ok(())
    }
}

/// Divergence-watchdog configuration: when a streaming step's loss trace
/// goes non-finite or keeps rising, the session rolls back to its pre-step
/// checkpoint, damps the forgetting factor, and retries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogPolicy {
    /// Master switch; `false` disables divergence monitoring entirely.
    pub enabled: bool,
    /// Rollback-and-restart attempts per ingest before a
    /// `TensorError::Diverged` is propagated.
    pub max_restarts: usize,
    /// Multiplier applied to the forgetting factor `μ` on every restart
    /// (smaller μ trusts the diverging history less).
    pub mu_damping: f64,
    /// Consecutive loss increases tolerated before the step is declared
    /// divergent.
    pub patience: usize,
    /// Relative loss increase below which a rise is ignored (ALS noise
    /// floor).
    pub increase_tolerance: f64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            enabled: true,
            max_restarts: 2,
            mu_damping: 0.5,
            patience: 3,
            increase_tolerance: 1e-6,
        }
    }
}

/// How a streaming session reacts to a cluster fault during an ingest
/// (see `StreamingSession::ingest_with_recovery`).
///
/// The session snapshots its state before each ingest; on a
/// `TensorError::ClusterFault` it rolls back to that snapshot and replays
/// the step, at most `max_retries` times.  With `checkpoint_path` set, the
/// pre-step checkpoint is also persisted to disk, so a crashed *process*
/// can resume via `StreamingSession::restore`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Replay attempts per ingest before the fault is propagated.
    pub max_retries: usize,
    /// Where to persist the pre-step checkpoint (`None` keeps it in memory
    /// only).
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            checkpoint_path: None,
        }
    }
}

impl RecoveryPolicy {
    /// Policy with a different retry budget.
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Policy that persists the pre-step checkpoint to `path`.
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DecompConfig::default();
        assert_eq!(c.rank, 10);
        assert_eq!(c.forgetting, 0.8);
        assert_eq!(c.max_iters, 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = DecompConfig::default()
            .with_rank(4)
            .with_forgetting(0.5)
            .with_max_iters(3)
            .with_tolerance(1e-6)
            .with_seed(7);
        assert_eq!(c.rank, 4);
        assert_eq!(c.forgetting, 0.5);
        assert_eq!(c.max_iters, 3);
        assert_eq!(c.tolerance, 1e-6);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(DecompConfig::default().with_rank(0).validate().is_err());
        assert!(DecompConfig::default()
            .with_forgetting(0.0)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_forgetting(1.5)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_max_iters(0)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_tolerance(-1.0)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_forgetting(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn numerics_defaults_are_valid_and_strict() {
        let n = NumericsPolicy::default();
        assert!(n.validate().is_ok());
        assert_eq!(n.validation, ValidationMode::Strict);
        assert!(n.watchdog.enabled);
        assert_eq!(n.watchdog.max_restarts, 2);
    }

    #[test]
    fn numerics_validation_rejects_bad_values() {
        let bad_limit = NumericsPolicy::default().with_solver(SolvePolicy {
            condition_limit: 1.0,
            ..SolvePolicy::default()
        });
        assert!(bad_limit.validate().is_err());
        let bad_growth = NumericsPolicy::default().with_solver(SolvePolicy {
            ridge_growth: 0.5,
            ..SolvePolicy::default()
        });
        assert!(bad_growth.validate().is_err());
        let bad_damping = NumericsPolicy::default().with_watchdog(WatchdogPolicy {
            mu_damping: 0.0,
            ..WatchdogPolicy::default()
        });
        assert!(bad_damping.validate().is_err());
        let bad_patience = NumericsPolicy::default().with_watchdog(WatchdogPolicy {
            patience: 0,
            ..WatchdogPolicy::default()
        });
        assert!(bad_patience.validate().is_err());
        // A bad numerics policy fails the whole config.
        assert!(DecompConfig::default()
            .with_numerics(bad_patience)
            .validate()
            .is_err());
    }

    #[test]
    fn old_checkpoints_without_numerics_still_decode() {
        // A config serialised before the numerics field existed.
        let legacy = r#"{"rank":4,"forgetting":0.8,"max_iters":10,"tolerance":0.0,"seed":42}"#;
        let cfg: DecompConfig = serde_json::from_str(legacy).unwrap();
        assert_eq!(cfg.rank, 4);
        assert_eq!(cfg.numerics, NumericsPolicy::default());
        // `threads` postdates `numerics`; legacy checkpoints get `Auto`.
        assert_eq!(cfg.threads, ThreadPolicy::Auto);
    }

    #[test]
    fn thread_policy_round_trips_through_the_config() {
        let cfg = DecompConfig::default().with_threads(ThreadPolicy::Fixed(4));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DecompConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.threads, ThreadPolicy::Fixed(4));
        assert_eq!(back, cfg);
    }

    #[test]
    fn recovery_policy_builders() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_retries, 2);
        assert!(p.checkpoint_path.is_none());
        let p = p.with_max_retries(5).with_checkpoint_path("/tmp/ckpt.json");
        assert_eq!(p.max_retries, 5);
        assert_eq!(
            p.checkpoint_path.as_deref(),
            Some(std::path::Path::new("/tmp/ckpt.json"))
        );
    }
}

//! Decomposition configuration.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Hyper-parameters shared by every decomposition in this crate.
///
/// Defaults follow the paper's experimental setup (Sec. V-A): rank `R = 10`,
/// forgetting factor `μ = 0.8`, at most 10 ALS iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecompConfig {
    /// CP rank `R` (column count of every factor matrix).
    pub rank: usize,
    /// Forgetting factor `μ ∈ (0, 1]` weighting the previous snapshot's
    /// decomposition error (Eq. 2).  `μ = 1` trusts the old decomposition
    /// fully; smaller values decay it.
    pub forgetting: f64,
    /// Maximum number of ALS iterations per snapshot.
    pub max_iters: usize,
    /// Relative loss-improvement threshold below which iteration stops
    /// ("fit ceases to improve", Alg. 1 line 7).  `0.0` always runs
    /// `max_iters` iterations (the paper's timing protocol).
    pub tolerance: f64,
    /// Seed for the random initialisation of new factor rows.
    pub seed: u64,
}

impl Default for DecompConfig {
    fn default() -> Self {
        DecompConfig {
            rank: 10,
            forgetting: 0.8,
            max_iters: 10,
            tolerance: 0.0,
            seed: 42,
        }
    }
}

impl DecompConfig {
    /// Returns the config with a different rank.
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Returns the config with a different forgetting factor.
    pub fn with_forgetting(mut self, mu: f64) -> Self {
        self.forgetting = mu;
        self
    }

    /// Returns the config with a different iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Returns the config with a different convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Returns the config with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rank == 0 {
            return Err("rank must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.forgetting) || self.forgetting == 0.0 {
            return Err("forgetting factor must lie in (0, 1]".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be >= 1".into());
        }
        if self.tolerance < 0.0 {
            return Err("tolerance must be non-negative".into());
        }
        Ok(())
    }
}

/// How a streaming session reacts to a cluster fault during an ingest
/// (see `StreamingSession::ingest_with_recovery`).
///
/// The session snapshots its state before each ingest; on a
/// `TensorError::ClusterFault` it rolls back to that snapshot and replays
/// the step, at most `max_retries` times.  With `checkpoint_path` set, the
/// pre-step checkpoint is also persisted to disk, so a crashed *process*
/// can resume via `StreamingSession::restore`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Replay attempts per ingest before the fault is propagated.
    pub max_retries: usize,
    /// Where to persist the pre-step checkpoint (`None` keeps it in memory
    /// only).
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            checkpoint_path: None,
        }
    }
}

impl RecoveryPolicy {
    /// Policy with a different retry budget.
    pub fn with_max_retries(mut self, retries: usize) -> Self {
        self.max_retries = retries;
        self
    }

    /// Policy that persists the pre-step checkpoint to `path`.
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DecompConfig::default();
        assert_eq!(c.rank, 10);
        assert_eq!(c.forgetting, 0.8);
        assert_eq!(c.max_iters, 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = DecompConfig::default()
            .with_rank(4)
            .with_forgetting(0.5)
            .with_max_iters(3)
            .with_tolerance(1e-6)
            .with_seed(7);
        assert_eq!(c.rank, 4);
        assert_eq!(c.forgetting, 0.5);
        assert_eq!(c.max_iters, 3);
        assert_eq!(c.tolerance, 1e-6);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(DecompConfig::default().with_rank(0).validate().is_err());
        assert!(DecompConfig::default()
            .with_forgetting(0.0)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_forgetting(1.5)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_max_iters(0)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_tolerance(-1.0)
            .validate()
            .is_err());
        assert!(DecompConfig::default()
            .with_forgetting(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn recovery_policy_builders() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_retries, 2);
        assert!(p.checkpoint_path.is_none());
        let p = p.with_max_retries(5).with_checkpoint_path("/tmp/ckpt.json");
        assert_eq!(p.max_retries, 5);
        assert_eq!(
            p.checkpoint_path.as_deref(),
            Some(std::path::Path::new("/tmp/ckpt.json"))
        );
    }
}

//! OnlineCP — the *traditional* (one-mode) streaming baseline.
//!
//! The paper's Table I positions DisMASTD against streaming CP methods that
//! assume the tensor grows in a **single** (temporal) mode; OnlineCP
//! (Zhou et al., KDD 2016) is the canonical one.  This module implements it
//! so the repository can demonstrate the boundary the paper draws: on a
//! one-mode stream OnlineCP is a fast incremental update, but it has no
//! answer for snapshots that grow in several modes at once, where DTD
//! (Alg. 1) still applies.
//!
//! ## Algorithm sketch
//!
//! With the temporal mode last, OnlineCP keeps for every non-temporal mode
//! `n` two accumulators over all data seen so far:
//!
//! * `P_n = X_(n) (A_k)^{⊙ k≠n}` — the accumulated MTTKRP;
//! * `Q_n = ⊛_{k≠n} A_kᵀA_k` — the accumulated Gram Hadamard product.
//!
//! For each arriving slice batch `ΔX` (new temporal indices only):
//!
//! 1. project the new slices onto the current factors to get their temporal
//!    rows: `C_new = ΔX_(N) (A_k)^{⊙ k<N} (⊛_{k<N} A_kᵀA_k)⁻¹`;
//! 2. fold `ΔX` (with `C_new`) into every `P_n` and `Q_n`;
//! 3. refresh each non-temporal factor in one shot: `A_n = P_n Q_n⁻¹`;
//! 4. append `C_new` to the temporal factor.
//!
//! No pass over historical data ever happens — but unlike DTD, old factor
//! rows are refreshed from *stale accumulators* (computed with the factors
//! current at the time), which is the approximation OnlineCP accepts.

use crate::config::DecompConfig;
use dismastd_tensor::linalg::solve_right;
use dismastd_tensor::matrix::Matrix;
use dismastd_tensor::mttkrp::mttkrp;
use dismastd_tensor::ops::hadamard_skip;
use dismastd_tensor::{KruskalTensor, Result, SparseTensor, TensorError};

/// Incremental one-mode streaming CP state.
#[derive(Debug, Clone)]
pub struct OnlineCp {
    /// Non-temporal factors `A_1 … A_{N-1}`.
    factors: Vec<Matrix>,
    /// Temporal factor `C`, growing by `d` rows per batch.
    temporal: Matrix,
    /// Accumulated MTTKRPs `P_n`, one per non-temporal mode.
    p: Vec<Matrix>,
    /// Accumulated Gram products `Q_n`, one per non-temporal mode.
    q: Vec<Matrix>,
    rank: usize,
}

impl OnlineCp {
    /// Initialises from a batch decomposition of the starting tensor
    /// (temporal mode **last**), running full CP-ALS under `cfg`.
    ///
    /// # Errors
    /// Propagates configuration/solver errors; rejects order < 2.
    pub fn init(x0: &SparseTensor, cfg: &DecompConfig) -> Result<Self> {
        if x0.order() < 2 {
            return Err(TensorError::InvalidArgument(
                "OnlineCP needs at least an order-2 tensor".into(),
            ));
        }
        let batch = crate::als::cp_als(x0, cfg)?;
        let mut all = batch.kruskal.into_factors();
        // lint:allow(panic_path): invariant — order >= 2 was validated above
        let temporal = all.pop().expect("order >= 2");
        let factors = all;
        let n_non_temporal = factors.len();

        // Accumulators over the initial batch.
        let mut full: Vec<Matrix> = factors.clone();
        full.push(temporal.clone());
        let mut p = Vec::with_capacity(n_non_temporal);
        let mut q = Vec::with_capacity(n_non_temporal);
        let grams: Vec<Matrix> = full.iter().map(Matrix::gram).collect();
        for n in 0..n_non_temporal {
            p.push(mttkrp(x0, &full, n)?);
            q.push(hadamard_skip(&grams, n)?);
        }
        Ok(OnlineCp {
            factors,
            temporal,
            p,
            q,
            rank: cfg.rank,
        })
    }

    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Current shape (temporal mode last).
    pub fn shape(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.factors.iter().map(Matrix::rows).collect();
        s.push(self.temporal.rows());
        s
    }

    /// The current decomposition as a Kruskal tensor (temporal mode last).
    ///
    /// # Errors
    /// Never fails in practice; propagates the rank-consistency check.
    pub fn kruskal(&self) -> Result<KruskalTensor> {
        let mut all = self.factors.clone();
        all.push(self.temporal.clone());
        KruskalTensor::new(all)
    }

    /// Ingests a batch of new temporal slices.
    ///
    /// `delta` must have the same non-temporal shape as the current state
    /// and temporal indices local to the batch (`0..d`).
    ///
    /// # Errors
    /// Returns a shape error when the non-temporal dimensions disagree.
    pub fn ingest_slices(&mut self, delta: &SparseTensor) -> Result<()> {
        let n_modes = self.factors.len() + 1;
        if delta.order() != n_modes {
            return Err(TensorError::ShapeMismatch {
                op: "OnlineCp::ingest_slices order",
                left: self.shape(),
                right: delta.shape().to_vec(),
            });
        }
        for (n, f) in self.factors.iter().enumerate() {
            if delta.shape()[n] != f.rows() {
                return Err(TensorError::ShapeMismatch {
                    op: "OnlineCp::ingest_slices non-temporal shape",
                    left: self.shape(),
                    right: delta.shape().to_vec(),
                });
            }
        }
        let d = delta.shape()[n_modes - 1];
        if d == 0 {
            return Ok(());
        }

        // 1. Temporal rows of the new slices (projection step).
        let grams: Vec<Matrix> = self.factors.iter().map(Matrix::gram).collect();
        let h = {
            // ⊛ over all non-temporal modes.
            let mut acc = grams[0].clone();
            for g in &grams[1..] {
                acc.hadamard_assign(g)?;
            }
            acc
        };
        // Factor list with a placeholder for the temporal mode (its values
        // are never read by mttkrp of the temporal mode itself).
        let mut with_placeholder: Vec<Matrix> = self.factors.clone();
        with_placeholder.push(Matrix::zeros(d, self.rank));
        let hat_temporal = mttkrp(delta, &with_placeholder, n_modes - 1)?;
        let c_new = solve_right(&hat_temporal, &h)?;

        // 2. Fold ΔX into the accumulators using C_new (all hats computed
        //    against the pre-update factors for determinism).
        let mut with_c = self.factors.clone();
        with_c.push(c_new.clone());
        let c_gram = c_new.gram();
        let mut hats = Vec::with_capacity(self.factors.len());
        for n in 0..self.factors.len() {
            hats.push(mttkrp(delta, &with_c, n)?);
        }
        // 3. Refresh non-temporal factors.
        for n in 0..self.factors.len() {
            self.p[n].add_assign(&hats[n])?;
            let mut dq = c_gram.clone();
            for (k, g) in grams.iter().enumerate() {
                if k != n {
                    dq.hadamard_assign(g)?;
                }
            }
            self.q[n].add_assign(&dq)?;
            self.factors[n] = solve_right(&self.p[n], &self.q[n])?;
        }
        // 4. Append the temporal rows.
        self.temporal = self.temporal.vstack(&c_new)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::SparseTensorBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A low-rank ground truth over `shape` (temporal last), returned as
    /// factors; observations are the full dense tensor, split by time.
    fn ground_truth(shape: &[usize], rank: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        shape
            .iter()
            .map(|&s| Matrix::random(s, rank, &mut rng))
            .collect()
    }

    /// Dense tensor of the truth restricted to temporal range [t0, t1).
    fn slice_batch(truth: &[Matrix], t0: usize, t1: usize) -> SparseTensor {
        let k = KruskalTensor::new(truth.to_vec()).expect("equal ranks");
        let dense = k.to_dense().expect("small");
        let order = truth.len();
        let mut shape: Vec<usize> = truth.iter().map(Matrix::rows).collect();
        shape[order - 1] = t1 - t0;
        let mut b = SparseTensorBuilder::new(shape);
        for (idx, v) in dense.iter_all() {
            let t = idx[order - 1];
            if t < t0 || t >= t1 || v == 0.0 {
                continue;
            }
            let mut local = idx.clone();
            local[order - 1] = t - t0;
            b.push(&local, v).expect("in bounds");
        }
        b.build().expect("valid")
    }

    fn full_tensor(truth: &[Matrix]) -> SparseTensor {
        let t = truth.last().expect("non-empty").rows();
        slice_batch(truth, 0, t)
    }

    fn cfg(rank: usize) -> DecompConfig {
        DecompConfig::default()
            .with_rank(rank)
            .with_max_iters(60)
            .with_tolerance(1e-10)
    }

    #[test]
    fn tracks_a_low_rank_one_mode_stream() {
        let truth = ground_truth(&[8, 7, 12], 2, 2);
        // Initial batch: first 6 time steps; stream the rest in batches.
        let x0 = slice_batch(&truth, 0, 6);
        let mut online = OnlineCp::init(&x0, &cfg(2)).unwrap();
        assert_eq!(online.shape(), vec![8, 7, 6]);
        for (t0, t1) in [(6usize, 8usize), (8, 10), (10, 12)] {
            let delta = slice_batch(&truth, t0, t1);
            online.ingest_slices(&delta).unwrap();
        }
        assert_eq!(online.shape(), vec![8, 7, 12]);
        let fit = online.kruskal().unwrap().fit(&full_tensor(&truth)).unwrap();
        assert!(
            fit > 0.95,
            "OnlineCP fit {fit} on an exactly low-rank stream"
        );
    }

    #[test]
    fn comparable_to_batch_als_on_stream_end() {
        let truth = ground_truth(&[6, 6, 10], 2, 3);
        let full = full_tensor(&truth);
        let batch = crate::als::cp_als(&full, &cfg(2)).unwrap();
        let batch_fit = batch.kruskal.fit(&full).unwrap();

        let x0 = slice_batch(&truth, 0, 5);
        let mut online = OnlineCp::init(&x0, &cfg(2)).unwrap();
        for t in 5..10 {
            online
                .ingest_slices(&slice_batch(&truth, t, t + 1))
                .unwrap();
        }
        let online_fit = online.kruskal().unwrap().fit(&full).unwrap();
        assert!(
            online_fit > batch_fit - 0.1,
            "online {online_fit} vs batch {batch_fit}"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let truth = ground_truth(&[5, 5, 8], 2, 5);
        let x0 = slice_batch(&truth, 0, 8);
        let mut online = OnlineCp::init(&x0, &cfg(2)).unwrap();
        let before = online.shape();
        let empty = SparseTensor::empty(vec![5, 5, 0]).unwrap();
        online.ingest_slices(&empty).unwrap();
        assert_eq!(online.shape(), before);
    }

    #[test]
    fn rejects_mismatched_batches() {
        let truth = ground_truth(&[5, 5, 8], 2, 7);
        let x0 = slice_batch(&truth, 0, 8);
        let mut online = OnlineCp::init(&x0, &cfg(2)).unwrap();
        // Wrong order.
        let bad_order = SparseTensor::empty(vec![5, 2]).unwrap();
        assert!(online.ingest_slices(&bad_order).is_err());
        // Grown non-temporal mode — the case OnlineCP cannot handle.
        let multi_aspect = SparseTensor::empty(vec![6, 5, 2]).unwrap();
        assert!(online.ingest_slices(&multi_aspect).is_err());
    }

    #[test]
    fn init_rejects_degenerate_order() {
        let x = SparseTensor::empty(vec![4]).unwrap();
        assert!(OnlineCp::init(&x, &cfg(2)).is_err());
    }

    #[test]
    fn fourth_order_stream_supported() {
        let truth = ground_truth(&[4, 4, 3, 8], 2, 9);
        let x0 = slice_batch(&truth, 0, 5);
        let mut online = OnlineCp::init(&x0, &cfg(2)).unwrap();
        online.ingest_slices(&slice_batch(&truth, 5, 8)).unwrap();
        assert_eq!(online.shape(), vec![4, 4, 3, 8]);
        let fit = online.kruskal().unwrap().fit(&full_tensor(&truth)).unwrap();
        assert!(fit > 0.9, "order-4 fit {fit}");
    }
}

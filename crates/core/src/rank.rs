//! Rank selection — a practical utility the paper assumes away.
//!
//! The paper fixes `R = 10` ("usually a small positive integer denoting an
//! upper bound of the rank", Def. 3); downstream users have to *choose* it.
//! [`select_rank`] runs CP-ALS at a list of candidate ranks and picks the
//! elbow: the smallest rank after which the fit improvement per added rank
//! drops below a threshold.

use crate::als::cp_als;
use crate::config::DecompConfig;
use dismastd_tensor::{Result, SparseTensor, TensorError};

/// Outcome of a rank search.
#[derive(Debug, Clone)]
pub struct RankSearch {
    /// Every `(rank, fit)` pair evaluated, in candidate order.
    pub evaluated: Vec<(usize, f64)>,
    /// The selected rank.
    pub selected: usize,
}

/// Evaluates `candidates` (strictly increasing) and selects the elbow.
///
/// The fit `1 − ‖X − ⟦A⟧‖/‖X‖` is measured for each candidate with a fresh
/// CP-ALS run under `cfg` (its `rank` field is overridden).  The selected
/// rank is the first candidate whose successor improves the fit by less
/// than `min_gain` *per additional rank unit*; if every step keeps paying,
/// the largest candidate wins.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] for an empty or non-increasing
/// candidate list or a zero tensor; propagates solver errors.
pub fn select_rank(
    x: &SparseTensor,
    candidates: &[usize],
    cfg: &DecompConfig,
    min_gain: f64,
) -> Result<RankSearch> {
    if candidates.is_empty() {
        return Err(TensorError::InvalidArgument(
            "at least one candidate rank required".into(),
        ));
    }
    for w in candidates.windows(2) {
        if w[0] >= w[1] {
            return Err(TensorError::InvalidArgument(
                "candidate ranks must be strictly increasing".into(),
            ));
        }
    }
    if x.is_empty() {
        return Err(TensorError::InvalidArgument(
            "rank selection needs a non-empty tensor".into(),
        ));
    }
    let mut evaluated = Vec::with_capacity(candidates.len());
    for &r in candidates {
        let out = cp_als(x, &cfg.with_rank(r))?;
        evaluated.push((r, out.kruskal.fit(x)?));
    }
    // lint:allow(panic_path): invariant — emptiness was rejected above
    let mut selected = *candidates.last().expect("non-empty");
    for w in evaluated.windows(2) {
        let (r0, f0) = w[0];
        let (r1, f1) = w[1];
        let gain_per_rank = (f1 - f0) / (r1 - r0) as f64;
        if gain_per_rank < min_gain {
            selected = r0;
            break;
        }
    }
    Ok(RankSearch {
        evaluated,
        selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::{KruskalTensor, Matrix, SparseTensorBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn exact_rank_tensor(rank: usize, seed: u64) -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = [10usize, 9, 8];
        let k = KruskalTensor::new(
            shape
                .iter()
                .map(|&s| Matrix::random(s, rank, &mut rng))
                .collect(),
        )
        .expect("equal ranks");
        let dense = k.to_dense().expect("small");
        let mut b = SparseTensorBuilder::new(shape.to_vec());
        for (idx, v) in dense.iter_all() {
            b.push(&idx, v).expect("in bounds");
        }
        b.build().expect("valid")
    }

    fn cfg() -> DecompConfig {
        DecompConfig::default()
            .with_max_iters(60)
            .with_tolerance(1e-10)
    }

    #[test]
    fn finds_the_true_rank_of_an_exact_tensor() {
        let x = exact_rank_tensor(3, 1);
        let search = select_rank(&x, &[1, 2, 3, 4, 5], &cfg(), 0.02).unwrap();
        assert_eq!(search.evaluated.len(), 5);
        // Fit climbs until rank 3 and then flattens.
        assert!(
            search.selected == 3 || search.selected == 4,
            "selected {} from {:?}",
            search.selected,
            search.evaluated
        );
        let fit_at = |r: usize| {
            search
                .evaluated
                .iter()
                .find(|(cr, _)| *cr == r)
                .expect("evaluated")
                .1
        };
        assert!(fit_at(3) > 0.98);
        assert!(fit_at(1) < fit_at(3));
    }

    #[test]
    fn falls_back_to_largest_when_fit_keeps_improving() {
        // Noisy tensor: fit keeps improving; with min_gain 0 every step
        // counts, so the last candidate is selected.
        let x = exact_rank_tensor(6, 2);
        let search = select_rank(&x, &[1, 2], &cfg().with_max_iters(10), 0.0).unwrap();
        assert_eq!(search.selected, 2);
    }

    #[test]
    fn validates_inputs() {
        let x = exact_rank_tensor(2, 3);
        assert!(select_rank(&x, &[], &cfg(), 0.01).is_err());
        assert!(select_rank(&x, &[3, 3], &cfg(), 0.01).is_err());
        assert!(select_rank(&x, &[3, 2], &cfg(), 0.01).is_err());
        let empty = SparseTensor::empty(vec![3, 3]).unwrap();
        assert!(select_rank(&empty, &[1, 2], &cfg(), 0.01).is_err());
    }

    #[test]
    fn single_candidate_is_returned() {
        let x = exact_rank_tensor(2, 4);
        let search = select_rank(&x, &[2], &cfg().with_max_iters(5), 0.01).unwrap();
        assert_eq!(search.selected, 2);
        assert_eq!(search.evaluated.len(), 1);
    }
}

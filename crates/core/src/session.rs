//! Streaming decomposition sessions — the user-facing API.
//!
//! A [`StreamingSession`] consumes a multi-aspect streaming tensor sequence
//! (Def. 4) snapshot by snapshot and maintains the CP decomposition of the
//! latest snapshot (Def. 5, MASTD).  The first snapshot is decomposed from
//! scratch (cold start); every later snapshot reuses the previous factors
//! and touches only the relative complement `X \ X̃` — the core DisMASTD
//! idea that makes the per-step cost independent of the accumulated history.
//!
//! Sessions are **fault-tolerant**: the entire durable state serialises to
//! a [`SessionCheckpoint`] ([`StreamingSession::checkpoint`] /
//! [`StreamingSession::restore`]), and
//! [`StreamingSession::ingest_with_recovery`] wraps each ingest so a
//! distributed-mode cluster fault rolls the session back to its pre-step
//! state and replays the step within a bounded retry budget.  Because the
//! decomposition is deterministic for a fixed seed, a replayed step
//! reproduces the fault-free factors bit for bit.
//!
//! Sessions are also **self-healing**:
//! [`StreamingSession::ingest_with_heal`] runs the same rollback/replay
//! under a [`Supervisor`] executing a [`HealPolicy`] ladder — bounded
//! per-rank respawns with seeded backoff, then a degraded-world fallback
//! that shrinks the cluster through the elastic-leave path instead of
//! failing — so a crashed worker never surfaces to the caller until the
//! ladder is genuinely exhausted.

use crate::als::cp_als;
use crate::config::{DecompConfig, RecoveryPolicy, WatchdogPolicy};
use crate::distributed::{dismastd_with_opts, dms_mg_with_opts, ClusterConfig, PlanCache};
use crate::dtd::dtd;
use dismastd_cluster::{ClusterOptions, CommStatsSnapshot, HealAction, HealPolicy, Supervisor};
use dismastd_obs::MetricsSnapshot;
use dismastd_tensor::matrix::Matrix;
use dismastd_tensor::{
    KruskalTensor, NumericsReport, Result, SparseTensor, SparseTensorBuilder, TensorError,
    ValidationMode,
};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
// lint:allow(determinism): Instant feeds StepReport wall-clock fields only, never factor math
use std::time::{Duration, Instant};

/// Where the per-snapshot decomposition executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Single-threaded in-process solver.
    Serial,
    /// Simulated cluster with the given configuration.
    Distributed(ClusterConfig),
}

/// A queued elastic-membership transition.  Changes are requested at any
/// time ([`StreamingSession::request_join`] /
/// [`StreamingSession::request_leave`]) but applied only at the next
/// ingest boundary — between steps the factors are a consistent global
/// snapshot, so re-deriving ownership for the new world there can never
/// split a step across two placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// `count` workers join the cluster.
    Join {
        /// How many workers join.
        count: usize,
    },
    /// `count` workers leave the cluster.
    Leave {
        /// How many workers leave.
        count: usize,
    },
}

/// A structural transition the heal ladder performed while completing a
/// step (see [`StreamingSession::ingest_with_heal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealTransition {
    /// A rank exhausted its respawn budget and the supervisor shrank the
    /// world through the elastic-leave path instead of failing the step.
    Degraded {
        /// World size before the shrink.
        from_world: usize,
        /// World size after the shrink.
        to_world: usize,
    },
}

/// What the recovery machinery did to complete a step: populated by
/// [`StreamingSession::ingest_with_heal`] (full ladder) and
/// [`StreamingSession::ingest_with_recovery`] (replay-only), `None` on the
/// plain [`StreamingSession::ingest`] path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealReport {
    /// Respawn-and-replay attempts this step consumed.
    pub respawns: usize,
    /// Nanoseconds of backoff spent before replays (virtual when the
    /// [`HealPolicy`] carries a virtual clock, wall otherwise).
    pub backoff_ns: u64,
    /// Structural transitions, in the order the ladder took them.
    pub transitions: Vec<HealTransition>,
    /// `true` when any [`HealTransition::Degraded`] fired — the step
    /// completed, but at reduced parallelism.
    pub degraded: bool,
}

/// What happened while ingesting one snapshot.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// 0-based snapshot index within this session.
    pub step: usize,
    /// `true` for the first snapshot (full decomposition from scratch).
    pub cold_start: bool,
    /// Shape of the ingested snapshot.
    pub snapshot_shape: Vec<usize>,
    /// Nonzeros in the ingested snapshot.
    pub snapshot_nnz: usize,
    /// Nonzeros actually processed (`nnz(X \ X̃)`; equals `snapshot_nnz` on
    /// a cold start).
    pub processed_nnz: usize,
    /// ALS iterations executed.
    pub iterations: usize,
    /// Final Eq. 4 loss.
    pub loss: f64,
    /// CP fit `1 − ‖X − ⟦A⟧‖/‖X‖` against the **full** snapshot.
    pub fit: f64,
    /// Wall-clock of the decomposition.
    pub elapsed: Duration,
    /// Average time per ALS iteration.
    pub time_per_iter: Duration,
    /// Network traffic (distributed mode only).
    pub comm: Option<CommStatsSnapshot>,
    /// Cluster-fault replays this step needed (0 on the fault-free path;
    /// only [`StreamingSession::ingest_with_recovery`] can report more).
    pub retries: usize,
    /// Snapshot entries dropped by
    /// [`ValidationMode::Quarantine`] ingest validation (always 0 under
    /// `Strict`, which errors instead, and under `Off`).
    pub quarantined: u64,
    /// Divergence-watchdog restarts this step needed (each one re-runs the
    /// decomposition with a damped forgetting factor).
    pub watchdog_restarts: usize,
    /// Forgetting factor `μ` actually used by the successful attempt
    /// (`cfg.forgetting` unless the watchdog damped it).
    pub effective_forgetting: f64,
    /// Solver-tier escalations across all attempts of this step.
    pub numerics: NumericsReport,
    /// Per-phase timings, counters, and histograms for this step, present
    /// when [`StreamingSession::set_collect_metrics`] enabled collection.
    /// In distributed mode this merges the driver's preparation spans with
    /// every rank's worker metrics, so span totals sum concurrent per-rank
    /// time and can exceed [`StepReport::elapsed`].
    pub metrics: Option<MetricsSnapshot>,
    /// What the heal ladder / replay machinery did this step; `None` on the
    /// plain [`StreamingSession::ingest`] path.
    pub heal: Option<HealReport>,
}

/// The durable state of a [`StreamingSession`], as written by
/// [`StreamingSession::checkpoint`]: configuration, execution mode, the
/// latest decomposition, and the stream position.  Runtime-only state (the
/// MTTKRP plan cache, cluster options) is rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Decomposition hyper-parameters.
    pub cfg: DecompConfig,
    /// Serial or distributed execution.
    pub mode: ExecutionMode,
    /// Decomposition of the latest snapshot (`None` before the first).
    pub factors: Option<KruskalTensor>,
    /// Shape of the latest snapshot.
    pub shape: Vec<usize>,
    /// Snapshots ingested so far.
    pub step: usize,
    /// Accumulated network traffic across all distributed steps.
    pub comm_totals: CommStatsSnapshot,
}

/// Stateful multi-aspect streaming decomposition.
///
/// ```
/// use dismastd_core::{DecompConfig, ExecutionMode, StreamingSession};
/// use dismastd_tensor::SparseTensorBuilder;
///
/// // Two nested snapshots of a growing 2x2 -> 3x3 matrix.
/// let mut b = SparseTensorBuilder::new(vec![2, 2]);
/// b.push(&[0, 0], 1.0).unwrap();
/// b.push(&[1, 1], 2.0).unwrap();
/// let first = b.build().unwrap();
/// let mut b = SparseTensorBuilder::new(vec![3, 3]);
/// b.push(&[0, 0], 1.0).unwrap();
/// b.push(&[1, 1], 2.0).unwrap();
/// b.push(&[2, 2], 3.0).unwrap();
/// let second = b.build().unwrap();
///
/// let cfg = DecompConfig::default().with_rank(2).with_max_iters(5);
/// let mut session = StreamingSession::new(cfg, ExecutionMode::Serial);
/// let r0 = session.ingest(&first).unwrap();
/// assert!(r0.cold_start);
/// let r1 = session.ingest(&second).unwrap();
/// assert!(!r1.cold_start);
/// assert_eq!(r1.processed_nnz, 1); // only the new corner entry
/// ```
#[derive(Debug)]
pub struct StreamingSession {
    cfg: DecompConfig,
    mode: ExecutionMode,
    factors: Option<KruskalTensor>,
    shape: Vec<usize>,
    step: usize,
    /// Distributed-mode MTTKRP layout cache, carried across steps so grid
    /// cells untouched by a snapshot update keep their compiled kernels.
    plan_cache: PlanCache,
    /// Runtime options (timeouts, fault injection) for distributed steps.
    /// Deliberately not checkpointed: a restored session should run with
    /// the restoring process's options, not a dead process's fault plan.
    cluster_opts: ClusterOptions,
    /// Network traffic accumulated over every distributed step so far.
    comm_totals: CommStatsSnapshot,
    /// When `true`, every ingest collects per-phase metrics into
    /// [`StepReport::metrics`].  Runtime-only, never checkpointed.
    collect_metrics: bool,
    /// Elastic-membership transitions queued for the next ingest boundary.
    /// Runtime-only: a restored session starts with an empty queue.
    pending_membership: Vec<MembershipChange>,
    /// The heal-ladder executor behind
    /// [`StreamingSession::ingest_with_heal`]; installed by
    /// [`StreamingSession::set_heal_policy`] (or lazily with defaults).
    /// Runtime-only: per-rank budgets belong to this process's cluster,
    /// not to a checkpoint.
    supervisor: Option<Supervisor>,
}

impl StreamingSession {
    /// Creates an empty session.
    pub fn new(cfg: DecompConfig, mode: ExecutionMode) -> Self {
        StreamingSession {
            cfg,
            mode,
            factors: None,
            shape: Vec::new(),
            step: 0,
            plan_cache: PlanCache::new(),
            cluster_opts: ClusterOptions::default(),
            comm_totals: CommStatsSnapshot::default(),
            collect_metrics: false,
            pending_membership: Vec::new(),
            supervisor: None,
        }
    }

    /// Resumes a session from a previously obtained decomposition — e.g. a
    /// checkpoint serialised with serde, or the output of an offline batch
    /// decomposition.  The next ingested snapshot is treated as a warm step
    /// relative to `factors`' shape.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when the factors' rank
    /// disagrees with `cfg.rank`.
    pub fn resume(cfg: DecompConfig, mode: ExecutionMode, factors: KruskalTensor) -> Result<Self> {
        if factors.rank() != cfg.rank {
            return Err(TensorError::InvalidArgument(format!(
                "checkpoint rank {} does not match configured rank {}",
                factors.rank(),
                cfg.rank
            )));
        }
        let shape = factors.shape();
        Ok(StreamingSession {
            cfg,
            mode,
            factors: Some(factors),
            shape,
            step: 1,
            plan_cache: PlanCache::new(),
            cluster_opts: ClusterOptions::default(),
            comm_totals: CommStatsSnapshot::default(),
            collect_metrics: false,
            pending_membership: Vec::new(),
            supervisor: None,
        })
    }

    /// Sets the cluster runtime options (receive deadlines, fault
    /// injection) used by every subsequent distributed step.
    pub fn set_cluster_options(&mut self, opts: ClusterOptions) {
        self.cluster_opts = opts;
    }

    /// Enables or disables per-step metrics collection.  When enabled,
    /// every [`StreamingSession::ingest`] returns a populated
    /// [`StepReport::metrics`]; when disabled (the default) the
    /// instrumented code paths cost one thread-local check per span.
    pub fn set_collect_metrics(&mut self, on: bool) {
        self.collect_metrics = on;
    }

    /// Whether per-step metrics collection is enabled.
    pub fn collect_metrics(&self) -> bool {
        self.collect_metrics
    }

    /// Installs the heal ladder [`StreamingSession::ingest_with_heal`]
    /// executes.  Replaces any previous supervisor, resetting its per-rank
    /// respawn budgets.
    pub fn set_heal_policy(&mut self, policy: HealPolicy) {
        self.supervisor = Some(Supervisor::new(policy));
    }

    /// The heal policy in effect, if a supervisor is installed.
    pub fn heal_policy(&self) -> Option<&HealPolicy> {
        self.supervisor.as_ref().map(Supervisor::policy)
    }

    /// The cluster runtime options in effect.
    pub fn cluster_options(&self) -> &ClusterOptions {
        &self.cluster_opts
    }

    /// Network traffic accumulated over every distributed step so far.
    pub fn comm_totals(&self) -> &CommStatsSnapshot {
        &self.comm_totals
    }

    // ---- elastic membership ----------------------------------------------

    /// Queues `count` workers to join the cluster; applied at the next
    /// ingest boundary (see [`MembershipChange`]).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] in serial mode or for
    /// `count == 0`.
    pub fn request_join(&mut self, count: usize) -> Result<()> {
        self.queue_membership(MembershipChange::Join { count })
    }

    /// Queues `count` workers to leave the cluster; applied at the next
    /// ingest boundary (see [`MembershipChange`]).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] in serial mode, for
    /// `count == 0`, or when the queue (including this change) would drop
    /// the cluster below one worker.
    pub fn request_leave(&mut self, count: usize) -> Result<()> {
        self.queue_membership(MembershipChange::Leave { count })
    }

    /// Membership transitions queued but not yet applied.
    pub fn pending_membership(&self) -> &[MembershipChange] {
        &self.pending_membership
    }

    fn queue_membership(&mut self, change: MembershipChange) -> Result<()> {
        let ExecutionMode::Distributed(cc) = &self.mode else {
            return Err(TensorError::InvalidArgument(
                "membership changes require distributed mode".into(),
            ));
        };
        let count = match change {
            MembershipChange::Join { count } | MembershipChange::Leave { count } => count,
        };
        if count == 0 {
            return Err(TensorError::InvalidArgument(
                "membership change of zero workers".into(),
            ));
        }
        // Validate the whole queue (with this change appended) at request
        // time, so apply never has to reject mid-drain.
        let mut world = cc.workers;
        for c in self
            .pending_membership
            .iter()
            .chain(std::iter::once(&change))
        {
            world = match *c {
                MembershipChange::Join { count } => world.saturating_add(count),
                MembershipChange::Leave { count } => {
                    if count >= world {
                        return Err(TensorError::InvalidArgument(format!(
                            "leaving {count} worker(s) would drop the cluster below one \
                             (world would be {world} at that point in the queue)"
                        )));
                    }
                    world - count
                }
            };
        }
        self.pending_membership.push(change);
        Ok(())
    }

    /// Applies every queued membership transition: resolves the new world
    /// size, counts the factor rows whose owner moves between the old and
    /// new placements, updates the cluster configuration, and invalidates
    /// the plan cache (the grid, and therefore every cell, is re-derived
    /// for the new world).  Called at each ingest boundary; a no-op when
    /// nothing is queued or the net world change is zero.
    ///
    /// # Errors
    /// Propagates placement-plan construction failures (the session's
    /// membership state is still advanced — the new world size is applied
    /// first, so a metrics failure cannot leave the queue half-drained).
    fn apply_membership(&mut self) -> Result<()> {
        if self.pending_membership.is_empty() {
            return Ok(());
        }
        let changes: Vec<MembershipChange> = self.pending_membership.drain(..).collect();
        let ExecutionMode::Distributed(cc) = &self.mode else {
            // Unreachable: queueing rejects serial mode.
            return Ok(());
        };
        let old_cc = cc.clone();
        let mut world = old_cc.workers;
        let mut joins = 0u64;
        let mut leaves = 0u64;
        for c in changes {
            match c {
                MembershipChange::Join { count } => {
                    world = world.saturating_add(count);
                    joins += count as u64;
                }
                MembershipChange::Leave { count } => {
                    // Validated at request time; clamp defensively anyway.
                    world = world.saturating_sub(count).max(1);
                    leaves += count as u64;
                }
            }
        }
        dismastd_obs::counter_add("membership/join", joins);
        dismastd_obs::counter_add("membership/leave", leaves);
        if world == old_cc.workers {
            return Ok(()); // net-zero change: same grid, nothing moves
        }
        if let ExecutionMode::Distributed(cc) = &mut self.mode {
            cc.workers = world;
        }
        let evicted = self.plan_cache.invalidate_all();
        dismastd_obs::counter_add("membership/plan_invalidations", evicted as u64);
        // Migrated-rows accounting: compare row ownership between the old
        // and new worlds' placement plans over the current shape.  The
        // factors themselves are a global Kruskal tensor, so "migration"
        // is an ownership re-derivation, not a data copy — the metric
        // reports how many rows changed hands.
        if !self.shape.is_empty() {
            let probe = SparseTensor::empty(self.shape.clone())?;
            let order = probe.order();
            let old_grid = dismastd_partition::GridPartition::build_with(
                &probe,
                old_cc.partitioner,
                &old_cc.resolved_parts(order),
                old_cc.workers,
                old_cc.cell_assignment,
            )?;
            let mut new_cc = old_cc;
            new_cc.workers = world;
            let new_grid = dismastd_partition::GridPartition::build_with(
                &probe,
                new_cc.partitioner,
                &new_cc.resolved_parts(order),
                new_cc.workers,
                new_cc.cell_assignment,
            )?;
            let moved: u64 = old_grid.ownership_delta(&new_grid)?.iter().sum();
            dismastd_obs::counter_add("membership/migrated_rows", moved);
        }
        Ok(())
    }

    // ---- checkpoint / recovery ------------------------------------------

    /// Captures the session's durable state.
    pub fn to_checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            cfg: self.cfg,
            mode: self.mode.clone(),
            factors: self.factors.clone(),
            shape: self.shape.clone(),
            step: self.step,
            comm_totals: self.comm_totals.clone(),
        }
    }

    /// Rebuilds a session from a checkpoint.  The plan cache starts empty
    /// (layouts are recompiled on the next ingest) and cluster options
    /// revert to defaults.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when the checkpoint is
    /// internally inconsistent (factor rank vs. configured rank).
    pub fn from_checkpoint(ckpt: SessionCheckpoint) -> Result<Self> {
        if let Some(f) = &ckpt.factors {
            if f.rank() != ckpt.cfg.rank {
                return Err(TensorError::InvalidArgument(format!(
                    "checkpoint factor rank {} does not match configured rank {}",
                    f.rank(),
                    ckpt.cfg.rank
                )));
            }
        }
        Ok(StreamingSession {
            cfg: ckpt.cfg,
            mode: ckpt.mode,
            factors: ckpt.factors,
            shape: ckpt.shape,
            step: ckpt.step,
            plan_cache: PlanCache::new(),
            cluster_opts: ClusterOptions::default(),
            comm_totals: ckpt.comm_totals,
            collect_metrics: false,
            pending_membership: Vec::new(),
            supervisor: None,
        })
    }

    /// [`StreamingSession::from_checkpoint`] with an explicit worker count
    /// for the restored cluster — restoring into a *different* world size
    /// than the checkpoint's is the supported path for recovering onto a
    /// grown or shrunk cluster.  Safe because the checkpointed factors are
    /// a global [`KruskalTensor`]: row ownership is re-derived from the new
    /// world's placement plan on the next ingest, so rows are migrated by
    /// construction, never silently mis-assigned.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when `workers == 0`, when
    /// the checkpoint is serial-mode and `workers != 1` (a serial
    /// checkpoint has no cluster to resize), or when the checkpoint is
    /// internally inconsistent.
    pub fn from_checkpoint_with_world(ckpt: SessionCheckpoint, workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(TensorError::InvalidArgument(
                "restore_with_world: workers must be >= 1".into(),
            ));
        }
        let mut ckpt = ckpt;
        match &mut ckpt.mode {
            ExecutionMode::Serial => {
                if workers != 1 {
                    return Err(TensorError::InvalidArgument(format!(
                        "cannot restore a serial checkpoint into a {workers}-worker cluster; \
                         resume distributed execution explicitly instead"
                    )));
                }
            }
            ExecutionMode::Distributed(cc) => {
                cc.workers = workers;
            }
        }
        Self::from_checkpoint(ckpt)
    }

    /// [`StreamingSession::restore`] with an explicit worker count; see
    /// [`StreamingSession::from_checkpoint_with_world`].
    ///
    /// # Errors
    /// As for [`StreamingSession::restore`] and
    /// [`StreamingSession::from_checkpoint_with_world`].
    pub fn restore_with_world(path: impl AsRef<std::path::Path>, workers: usize) -> Result<Self> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint read: {e}")))?;
        let ckpt: SessionCheckpoint = serde_json::from_str(&json)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint decode: {e}")))?;
        Self::from_checkpoint_with_world(ckpt, workers)
    }

    /// Serialises the session's durable state to `path` as JSON.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] wrapping the underlying
    /// serialisation or I/O failure.
    pub fn checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = serde_json::to_string(&self.to_checkpoint())
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint encode: {e}")))?;
        std::fs::write(path.as_ref(), json)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint write: {e}")))?;
        Ok(())
    }

    /// Rebuilds a session from a checkpoint file written by
    /// [`StreamingSession::checkpoint`].
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] on I/O or decode failure,
    /// or when the checkpoint is internally inconsistent.
    pub fn restore(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint read: {e}")))?;
        let ckpt: SessionCheckpoint = serde_json::from_str(&json)
            .map_err(|e| TensorError::InvalidArgument(format!("checkpoint decode: {e}")))?;
        Self::from_checkpoint(ckpt)
    }

    /// Rolls the durable state back to `ckpt`, keeping runtime-only state
    /// (plan cache — content-addressed, so always safe to reuse — and
    /// cluster options) intact.
    fn restore_in_place(&mut self, ckpt: SessionCheckpoint) {
        self.cfg = ckpt.cfg;
        self.mode = ckpt.mode;
        self.factors = ckpt.factors;
        self.shape = ckpt.shape;
        self.step = ckpt.step;
        self.comm_totals = ckpt.comm_totals;
    }

    /// [`StreamingSession::ingest`] wrapped in checkpoint/rollback: on a
    /// [`TensorError::ClusterFault`] the session state is restored to its
    /// pre-step checkpoint and the step replayed, up to
    /// `policy.max_retries` times.  The returned report's `retries` field
    /// records how many replays were needed.  Deterministic decompositions
    /// make a successful replay bit-identical to a fault-free run.
    ///
    /// With `policy.checkpoint_path` set, the pre-step state is also
    /// persisted to disk before the step runs.
    ///
    /// # Errors
    /// Propagates the final [`TensorError::ClusterFault`] once the retry
    /// budget is exhausted; all other errors propagate immediately.
    pub fn ingest_with_recovery(
        &mut self,
        snapshot: &SparseTensor,
        policy: &RecoveryPolicy,
    ) -> Result<StepReport> {
        // Apply queued membership changes *before* capturing the rollback
        // checkpoint: a fault-triggered replay must re-run in the already
        // transitioned world, not silently revert to the old one (the
        // queue is drained by the apply, so a rollback cannot replay it).
        self.apply_membership()?;
        let ckpt = self.to_checkpoint();
        if let Some(path) = &policy.checkpoint_path {
            self.checkpoint(path)?;
        }
        let mut retries = 0usize;
        loop {
            match self.ingest(snapshot) {
                Ok(mut report) => {
                    report.retries = retries;
                    report.heal = Some(HealReport {
                        respawns: retries,
                        backoff_ns: 0,
                        transitions: Vec::new(),
                        degraded: false,
                    });
                    return Ok(report);
                }
                Err(TensorError::ClusterFault { rank, detail }) => {
                    if retries >= policy.max_retries {
                        return Err(TensorError::ClusterFault {
                            rank,
                            detail: format!(
                                "{detail} (retry budget of {} exhausted)",
                                policy.max_retries
                            ),
                        });
                    }
                    retries += 1;
                    self.restore_in_place(ckpt.clone());
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// [`StreamingSession::ingest`] under the supervision layer: a cluster
    /// fault is healed automatically by walking the [`HealPolicy`] ladder
    /// instead of surfacing to the caller.
    ///
    /// 1. **Respawn-and-rejoin** — the session rolls back to its pre-step
    ///    checkpoint and replays the step, readmitting the crashed rank at
    ///    the step boundary (same world, ownership re-derived from the
    ///    global checkpointed factors — the identity case of an elastic
    ///    rejoin).  Each rank has a bounded respawn budget and each replay
    ///    is preceded by seeded exponential backoff spent through the
    ///    policy's [`dismastd_cluster::Clock`].
    /// 2. **Degraded-world fallback** — once a rank's budget is exhausted,
    ///    the world is shrunk by one worker via the elastic-leave path and
    ///    the step re-run there; the returned report records a typed
    ///    [`HealTransition::Degraded`] instead of the session failing.
    /// 3. Only when degradation is disallowed or the world has reached the
    ///    policy's floor does the fault propagate, annotated with the heal
    ///    history.
    ///
    /// Installs a default-policy [`Supervisor`] if
    /// [`StreamingSession::set_heal_policy`] was never called.  Per-rank
    /// budgets persist across steps: a rank that keeps dying walks down
    /// the ladder rather than resetting it every snapshot.  Because the
    /// decomposition is deterministic, a healed step is bit-identical to a
    /// fault-free run at the same final world size.
    ///
    /// # Errors
    /// Propagates [`TensorError::ClusterFault`] only when the ladder is
    /// exhausted; all other errors propagate immediately.
    pub fn ingest_with_heal(&mut self, snapshot: &SparseTensor) -> Result<StepReport> {
        if self.supervisor.is_none() {
            self.supervisor = Some(Supervisor::new(HealPolicy::default()));
        }
        // As in ingest_with_recovery: drain queued membership before the
        // rollback checkpoint so replays re-run in the transitioned world.
        self.apply_membership()?;
        let mut ckpt = self.to_checkpoint();
        let backoff_before = self.supervisor.as_ref().map_or(0, Supervisor::backoff_ns);
        let mut respawns = 0usize;
        let mut transitions: Vec<HealTransition> = Vec::new();
        loop {
            let replaying = respawns > 0 || !transitions.is_empty();
            let result = if replaying {
                let _replay = dismastd_obs::span("heal/replay");
                self.ingest(snapshot)
            } else {
                self.ingest(snapshot)
            };
            match result {
                Ok(mut report) => {
                    report.retries = respawns;
                    let spent = self.supervisor.as_ref().map_or(0, Supervisor::backoff_ns);
                    report.heal = Some(HealReport {
                        respawns,
                        backoff_ns: spent.saturating_sub(backoff_before),
                        degraded: !transitions.is_empty(),
                        transitions,
                    });
                    return Ok(report);
                }
                Err(TensorError::ClusterFault { rank, detail }) => {
                    let world = match &self.mode {
                        ExecutionMode::Distributed(cc) => cc.workers,
                        ExecutionMode::Serial => 1,
                    };
                    let action = match self.supervisor.as_mut() {
                        Some(sup) => sup.on_fault(rank, world),
                        // Unreachable (installed above); fail typed, not loud.
                        None => HealAction::GiveUp { rank },
                    };
                    match action {
                        HealAction::Respawn { backoff, .. } => {
                            if let Some(sup) = self.supervisor.as_mut() {
                                sup.back_off(backoff);
                            }
                            respawns += 1;
                            self.restore_in_place(ckpt.clone());
                        }
                        HealAction::Degrade { .. } => {
                            // Shrink through the ordinary elastic-leave
                            // path so plan invalidation and the
                            // membership/* accounting fire exactly as a
                            // voluntary departure would.
                            self.restore_in_place(ckpt.clone());
                            self.request_leave(1)?;
                            self.apply_membership()?;
                            let to_world = match &self.mode {
                                ExecutionMode::Distributed(cc) => cc.workers,
                                ExecutionMode::Serial => 1,
                            };
                            transitions.push(HealTransition::Degraded {
                                from_world: world,
                                to_world,
                            });
                            // Later rollbacks must land in the shrunk
                            // world, not resurrect the old one.
                            ckpt = self.to_checkpoint();
                        }
                        HealAction::GiveUp { .. } => {
                            return Err(TensorError::ClusterFault {
                                rank,
                                detail: format!(
                                    "{detail} (heal ladder exhausted after {respawns} respawn(s) \
                                     and {} degradation(s))",
                                    transitions.len()
                                ),
                            });
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// The distributed MTTKRP layout cache (empty in serial mode).  Exposed
    /// for inspection: `hits()`/`misses()` quantify cross-step kernel reuse.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Consumes the session, yielding the latest decomposition (checkpoint
    /// counterpart of [`StreamingSession::resume`]).
    pub fn into_factors(self) -> Option<KruskalTensor> {
        self.factors
    }

    /// The decomposition of the most recent snapshot, if any was ingested.
    pub fn factors(&self) -> Option<&KruskalTensor> {
        self.factors.as_ref()
    }

    /// Shape of the most recent snapshot.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of snapshots ingested so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// The execution mode the session decomposes with.
    pub fn mode(&self) -> &ExecutionMode {
        &self.mode
    }

    /// Predicted value at `idx` under the current model —
    /// `Σ_f Π_k A_k[i_k, f]` (e.g. a predicted rating in the paper's
    /// recommendation scenario).
    ///
    /// # Errors
    /// Returns an error before the first snapshot or for an out-of-range
    /// index.
    pub fn predict(&self, idx: &[usize]) -> Result<f64> {
        let k = self
            .factors
            .as_ref()
            .ok_or_else(|| TensorError::InvalidArgument("no snapshot ingested yet".into()))?;
        if idx.len() != k.order() || idx.iter().zip(k.shape().iter()).any(|(&i, &s)| i >= s) {
            return Err(TensorError::IndexOutOfBounds {
                index: idx.to_vec(),
                shape: k.shape(),
            });
        }
        let r = k.rank();
        let mut prod = vec![1.0f64; r];
        for (n, &i) in idx.iter().enumerate() {
            let row = k.factor(n).row(i);
            for (p, &a) in prod.iter_mut().zip(row) {
                *p *= a;
            }
        }
        Ok(prod.iter().sum())
    }

    /// Ingests the next snapshot and updates the decomposition.
    ///
    /// Snapshots must grow monotonically in every mode (Def. 4); the first
    /// snapshot triggers a full decomposition, later ones run DTD over the
    /// complement only.
    ///
    /// The step runs under the session's [`crate::NumericsPolicy`]: the
    /// snapshot passes ingest validation first (non-finite entries error
    /// under `Strict`, are dropped and counted under `Quarantine`), and the
    /// decomposition is supervised by the divergence watchdog, which
    /// re-runs a diverging attempt with a damped forgetting factor up to
    /// `watchdog.max_restarts` times before giving up.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] for non-monotone snapshots,
    /// [`TensorError::NonFiniteValue`] for invalid data under `Strict`
    /// validation, and [`TensorError::Diverged`] when the watchdog's
    /// restart budget is exhausted; propagates solver errors.  On error the
    /// session state is untouched and stays usable.
    pub fn ingest(&mut self, snapshot: &SparseTensor) -> Result<StepReport> {
        // Elastic membership: queued join/leave transitions take effect
        // here, before any of this step's placement work.
        self.apply_membership()?;
        // lint:allow(determinism, clock_hygiene): elapsed-time reporting only
        let started = Instant::now();
        // Installing the registry here makes every span/counter below — and
        // in the serial solver, which runs on this thread — land in this
        // step's collection.  On error paths the Collector's Drop discards
        // the partial data and restores any displaced registry.
        let collector = self.collect_metrics.then(dismastd_obs::begin);
        let cold_start = self.factors.is_none();

        if !cold_start {
            if snapshot.order() != self.shape.len() {
                return Err(TensorError::ShapeMismatch {
                    op: "StreamingSession::ingest",
                    left: self.shape.clone(),
                    right: snapshot.shape().to_vec(),
                });
            }
            if snapshot.shape().iter().zip(&self.shape).any(|(s, o)| s < o) {
                return Err(TensorError::InvalidArgument(format!(
                    "snapshot shrank: {:?} -> {:?} violates Def. 4",
                    self.shape,
                    snapshot.shape()
                )));
            }
        }

        // ---- validated ingest -------------------------------------------
        let (snapshot, quarantined) = {
            let _s = dismastd_obs::span("phase/validate");
            validate_snapshot(snapshot, self.cfg.numerics.validation)?
        };
        if quarantined > 0 {
            dismastd_obs::counter_add("ingest/quarantined", quarantined);
        }
        let snapshot = snapshot.as_ref();

        // The tensor the solver actually sees: the full snapshot on a cold
        // start, the relative complement `X \ X̃` afterwards.
        let work: Cow<'_, SparseTensor> = if cold_start {
            Cow::Borrowed(snapshot)
        } else {
            let _s = dismastd_obs::span("phase/complement");
            Cow::Owned(snapshot.complement(&self.shape)?)
        };
        let processed_nnz = work.nnz();

        // ---- decomposition under the divergence watchdog ----------------
        let wd = self.cfg.numerics.watchdog;
        let mut step_cfg = self.cfg;
        let mut restarts = 0usize;
        let mut numerics = NumericsReport::default();
        // Worker metrics of attempts the watchdog discarded: their compute
        // happened, so the step's accounting keeps them.
        let mut discarded_metrics = MetricsSnapshot::default();
        let outcome = loop {
            let attempt = match self.decompose_once(&work, &step_cfg, cold_start) {
                Ok(a) => a,
                Err(e) if wd.enabled && is_numeric_failure(&e) => {
                    // The solver gave up (singular system, non-finite
                    // pivot/value): same treatment as an observed
                    // divergence — damp μ and retry within budget.
                    if restarts >= wd.max_restarts {
                        return Err(TensorError::Diverged {
                            restarts,
                            detail: e.to_string(),
                        });
                    }
                    restarts += 1;
                    dismastd_obs::counter_add("watchdog/restart", 1);
                    step_cfg.forgetting *= wd.mu_damping;
                    continue;
                }
                Err(e) => return Err(e),
            };
            numerics.absorb(&attempt.numerics);
            let verdict = if wd.enabled {
                divergence_verdict(&attempt.loss_trace, attempt.kruskal.factors(), &wd)
            } else {
                None
            };
            match verdict {
                None => break attempt,
                Some(reason) => {
                    // The attempt's traffic happened whether or not its
                    // numbers were usable.
                    if let Some(c) = &attempt.comm {
                        self.comm_totals.merge(c);
                    }
                    if let Some(m) = &attempt.metrics {
                        discarded_metrics.merge(m);
                    }
                    if restarts >= wd.max_restarts {
                        return Err(TensorError::Diverged {
                            restarts,
                            detail: reason,
                        });
                    }
                    restarts += 1;
                    dismastd_obs::counter_add("watchdog/restart", 1);
                    step_cfg.forgetting *= wd.mu_damping;
                }
            }
        };

        let loss = outcome.loss_trace.last().copied().unwrap_or(0.0);
        let fit = if snapshot.is_empty() {
            1.0
        } else {
            outcome.kruskal.fit(snapshot)?
        };
        // Driver-side spans (validate, complement, serial solver) plus the
        // rank-0 worker's metrics in distributed mode.
        let metrics = collector.map(|c| {
            let mut m = c.finish();
            if let Some(wm) = &outcome.metrics {
                m.merge(wm);
            }
            if !discarded_metrics.is_empty() {
                m.merge(&discarded_metrics);
            }
            m
        });
        let report = StepReport {
            step: self.step,
            cold_start,
            snapshot_shape: snapshot.shape().to_vec(),
            snapshot_nnz: snapshot.nnz(),
            processed_nnz,
            iterations: outcome.iterations,
            loss,
            fit,
            elapsed: started.elapsed(),
            time_per_iter: if outcome.iterations == 0 {
                Duration::ZERO
            } else {
                outcome.iter_elapsed / outcome.iterations as u32
            },
            comm: outcome.comm,
            retries: 0,
            quarantined,
            watchdog_restarts: restarts,
            effective_forgetting: step_cfg.forgetting,
            numerics,
            metrics,
            heal: None,
        };
        if let Some(c) = &report.comm {
            self.comm_totals.merge(c);
        }
        self.factors = Some(outcome.kruskal);
        self.shape = snapshot.shape().to_vec();
        self.step += 1;
        Ok(report)
    }

    /// One decomposition attempt over `work` (the full snapshot on a cold
    /// start, the complement otherwise).  Pure with respect to the durable
    /// session state — only the plan cache warms up — so the watchdog can
    /// discard an attempt and retry.
    fn decompose_once(
        &mut self,
        work: &SparseTensor,
        cfg: &DecompConfig,
        cold_start: bool,
    ) -> Result<AttemptOutcome> {
        // lint:allow(determinism, clock_hygiene): elapsed-time reporting only
        let attempt_start = Instant::now();
        if cold_start {
            match &self.mode {
                ExecutionMode::Serial => {
                    let out = cp_als(work, cfg)?;
                    Ok(AttemptOutcome {
                        kruskal: out.kruskal,
                        iterations: out.iterations,
                        loss_trace: out.loss_trace,
                        comm: None,
                        iter_elapsed: attempt_start.elapsed(),
                        numerics: out.numerics,
                        metrics: None,
                    })
                }
                ExecutionMode::Distributed(cc) => {
                    let out =
                        dms_mg_with_opts(work, cfg, cc, &self.cluster_opts, &mut self.plan_cache)?;
                    Ok(AttemptOutcome {
                        kruskal: out.kruskal,
                        iterations: out.iterations,
                        loss_trace: out.loss_trace,
                        comm: Some(out.comm),
                        iter_elapsed: out.iter_elapsed,
                        numerics: out.numerics,
                        metrics: out.metrics,
                    })
                }
            }
        } else {
            let old = match &self.factors {
                Some(k) => k.factors(),
                None => {
                    return Err(TensorError::InvalidArgument(
                        "warm step without previous factors".into(),
                    ))
                }
            };
            match &self.mode {
                ExecutionMode::Serial => {
                    let out = dtd(work, old, cfg)?;
                    Ok(AttemptOutcome {
                        kruskal: out.kruskal,
                        iterations: out.iterations,
                        loss_trace: out.loss_trace,
                        comm: None,
                        iter_elapsed: attempt_start.elapsed(),
                        numerics: out.numerics,
                        metrics: None,
                    })
                }
                ExecutionMode::Distributed(cc) => {
                    let out = dismastd_with_opts(
                        work,
                        old,
                        cfg,
                        cc,
                        &self.cluster_opts,
                        &mut self.plan_cache,
                    )?;
                    Ok(AttemptOutcome {
                        kruskal: out.kruskal,
                        iterations: out.iterations,
                        loss_trace: out.loss_trace,
                        comm: Some(out.comm),
                        iter_elapsed: out.iter_elapsed,
                        numerics: out.numerics,
                        metrics: out.metrics,
                    })
                }
            }
        }
    }
}

/// What one watchdog-supervised decomposition attempt produced.
struct AttemptOutcome {
    kruskal: KruskalTensor,
    iterations: usize,
    loss_trace: Vec<f64>,
    comm: Option<CommStatsSnapshot>,
    iter_elapsed: Duration,
    numerics: NumericsReport,
    /// All ranks' worker metrics, merged (distributed mode with collection
    /// on); serial attempts record straight into the driver thread's
    /// registry instead.
    metrics: Option<MetricsSnapshot>,
}

/// Applies the configured ingest validation, returning the tensor to
/// decompose and the number of quarantined entries.
///
/// Built tensors cannot contain duplicates or out-of-bounds coordinates,
/// so at this layer validation is about non-finite values: `Strict` errors
/// on the first one (naming its coordinate), `Quarantine` rebuilds the
/// tensor without them, `Off` passes everything through.  The common
/// all-finite case borrows the input — no copy.
fn validate_snapshot(
    snapshot: &SparseTensor,
    mode: ValidationMode,
) -> Result<(Cow<'_, SparseTensor>, u64)> {
    match mode {
        ValidationMode::Off => Ok((Cow::Borrowed(snapshot), 0)),
        ValidationMode::Strict => {
            for (idx, v) in snapshot.iter() {
                if !v.is_finite() {
                    return Err(TensorError::NonFiniteValue {
                        index: idx.to_vec(),
                        value: v,
                    });
                }
            }
            Ok((Cow::Borrowed(snapshot), 0))
        }
        ValidationMode::Quarantine => {
            if snapshot.iter().all(|(_, v)| v.is_finite()) {
                return Ok((Cow::Borrowed(snapshot), 0));
            }
            let mut b =
                SparseTensorBuilder::with_capacity(snapshot.shape().to_vec(), snapshot.nnz())
                    .with_validation(ValidationMode::Quarantine);
            for (idx, v) in snapshot.iter() {
                b.push(idx, v)?;
            }
            let (clean, counts) = b.build_with_report()?;
            Ok((Cow::Owned(clean), counts.total()))
        }
    }
}

/// True for errors that mean "the numbers went bad" — the class the
/// watchdog retries with a damped forgetting factor.  Structural errors
/// (shapes, arguments, cluster faults) propagate immediately instead.
fn is_numeric_failure(e: &TensorError) -> bool {
    matches!(
        e,
        TensorError::Singular { .. }
            | TensorError::NonFinitePivot { .. }
            | TensorError::NonFiniteValue { .. }
    )
}

/// `Some(reason)` when the attempt's loss trace or factors show divergence:
/// any non-finite value, or `patience` consecutive iterations of loss
/// increase beyond the relative tolerance.
fn divergence_verdict(trace: &[f64], factors: &[Matrix], wd: &WatchdogPolicy) -> Option<String> {
    for (i, &l) in trace.iter().enumerate() {
        if !l.is_finite() {
            return Some(format!("non-finite loss {l} at iteration {i}"));
        }
    }
    for (n, f) in factors.iter().enumerate() {
        if f.as_slice().iter().any(|v| !v.is_finite()) {
            return Some(format!("non-finite entries in mode-{n} factor"));
        }
    }
    let mut streak = 0usize;
    for w in trace.windows(2) {
        if w[1] > w[0] + wd.increase_tolerance * (1.0 + w[0].abs()) {
            streak += 1;
            if streak >= wd.patience {
                return Some(format!(
                    "loss increased for {streak} consecutive iterations"
                ));
            }
        } else {
            streak = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismastd_tensor::SparseTensorBuilder;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn snapshot_pair() -> (SparseTensor, SparseTensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let full_shape = [10usize, 9, 8];
        let mut full = SparseTensorBuilder::new(full_shape.to_vec());
        for _ in 0..250 {
            let idx: Vec<usize> = full_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            full.push(&idx, rng.gen_range(0.5..1.5)).unwrap();
        }
        let full = full.build().unwrap();
        let small = full.restrict(&[7, 7, 6]).unwrap();
        (small, full)
    }

    fn cfg() -> DecompConfig {
        DecompConfig::default().with_rank(3).with_max_iters(8)
    }

    #[test]
    fn serial_session_two_steps() {
        let (s0, s1) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        assert!(sess.factors().is_none());

        let r0 = sess.ingest(&s0).unwrap();
        assert!(r0.cold_start);
        assert_eq!(r0.step, 0);
        assert_eq!(r0.processed_nnz, s0.nnz());
        assert!(r0.comm.is_none());

        let r1 = sess.ingest(&s1).unwrap();
        assert!(!r1.cold_start);
        assert_eq!(r1.step, 1);
        // Only the complement was processed.
        assert!(r1.processed_nnz < s1.nnz());
        assert_eq!(r1.processed_nnz, s1.nnz() - s0.nnz());
        assert_eq!(sess.shape(), s1.shape());
        assert_eq!(sess.steps(), 2);
        assert!(r1.fit.is_finite());
    }

    #[test]
    fn distributed_session_reports_comm() {
        let (s0, s1) = snapshot_pair();
        let mut sess =
            StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(3)));
        let r0 = sess.ingest(&s0).unwrap();
        assert!(r0.comm.is_some());
        let r1 = sess.ingest(&s1).unwrap();
        assert!(r1.comm.expect("distributed").bytes > 0);
        // The session-held plan cache compiled kernels for both steps.
        assert!(sess.plan_cache().misses() > 0);
    }

    #[test]
    fn serial_session_never_touches_plan_cache() {
        let (s0, s1) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest(&s0).unwrap();
        sess.ingest(&s1).unwrap();
        assert!(sess.plan_cache().is_empty());
        assert_eq!(sess.plan_cache().hits() + sess.plan_cache().misses(), 0);
    }

    #[test]
    fn rejects_shrinking_snapshots() {
        let (s0, s1) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest(&s1).unwrap();
        assert!(sess.ingest(&s0).is_err());
    }

    #[test]
    fn rejects_order_change() {
        let (s0, _) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest(&s0).unwrap();
        let other = SparseTensor::empty(vec![10, 10]).unwrap();
        assert!(sess.ingest(&other).is_err());
    }

    #[test]
    fn predict_requires_state_and_bounds() {
        let (s0, _) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        assert!(sess.predict(&[0, 0, 0]).is_err());
        sess.ingest(&s0).unwrap();
        assert!(sess.predict(&[0, 0, 0]).unwrap().is_finite());
        assert!(sess.predict(&[100, 0, 0]).is_err());
        assert!(sess.predict(&[0, 0]).is_err());
    }

    #[test]
    fn predict_matches_reconstruction() {
        let (s0, _) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest(&s0).unwrap();
        let k = sess.factors().unwrap();
        let dense = k.to_dense().unwrap();
        for idx in [[0usize, 0, 0], [3, 2, 1], [6, 6, 5]] {
            let p = sess.predict(&idx).unwrap();
            assert!((p - dense.get(&idx)).abs() < 1e-10);
        }
    }

    #[test]
    fn resume_round_trip_matches_continuous_session() {
        let (s0, s1) = snapshot_pair();
        // Continuous session.
        let mut cont = StreamingSession::new(cfg(), ExecutionMode::Serial);
        cont.ingest(&s0).unwrap();
        let r_cont = cont.ingest(&s1).unwrap();

        // Checkpointed session: stop after s0, resume, ingest s1.
        let mut first = StreamingSession::new(cfg(), ExecutionMode::Serial);
        first.ingest(&s0).unwrap();
        let checkpoint = first.into_factors().unwrap();
        let mut resumed =
            StreamingSession::resume(cfg(), ExecutionMode::Serial, checkpoint).unwrap();
        let r_res = resumed.ingest(&s1).unwrap();

        assert!(!r_res.cold_start);
        assert!((r_cont.loss - r_res.loss).abs() < 1e-9 * (1.0 + r_cont.loss.abs()));
        assert_eq!(r_cont.processed_nnz, r_res.processed_nnz);
    }

    #[test]
    fn resume_validates_rank() {
        let (s0, _) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest(&s0).unwrap();
        let checkpoint = sess.into_factors().unwrap();
        let wrong_rank = cfg().with_rank(7);
        assert!(StreamingSession::resume(wrong_rank, ExecutionMode::Serial, checkpoint).is_err());
    }

    #[test]
    fn checkpoint_file_round_trip() {
        let (s0, s1) = snapshot_pair();
        let mut sess =
            StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(2)));
        sess.ingest(&s0).unwrap();

        let path = std::env::temp_dir().join("dismastd_session_ckpt_test.json");
        sess.checkpoint(&path).unwrap();
        let mut restored = StreamingSession::restore(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(restored.steps(), sess.steps());
        assert_eq!(restored.shape(), sess.shape());
        assert_eq!(restored.comm_totals(), sess.comm_totals());
        assert_eq!(restored.factors(), sess.factors());

        // Both sessions ingest the next snapshot identically (deterministic
        // decomposition ⇒ bit-identical factors).
        let a = sess.ingest(&s1).unwrap();
        let b = restored.ingest(&s1).unwrap();
        assert_eq!(a.loss, b.loss);
        for (fa, fb) in sess
            .factors()
            .unwrap()
            .factors()
            .iter()
            .zip(restored.factors().unwrap().factors())
        {
            assert_eq!(fa.max_abs_diff(fb).unwrap(), 0.0);
        }
    }

    #[test]
    fn checkpoint_without_comm_policy_still_restores() {
        // A distributed checkpoint serialized before the collective-layer
        // rework carries a ClusterConfig with no `comm` field; restoring it
        // must succeed with the default policy rather than fail.
        let (s0, _) = snapshot_pair();
        let mut sess =
            StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(2)));
        sess.ingest(&s0).unwrap();
        let json = serde_json::to_string(&sess.to_checkpoint()).unwrap();
        let comm_field = format!(
            ",\"comm\":{}",
            serde_json::to_string(&dismastd_cluster::CommPolicy::default()).unwrap()
        );
        assert!(json.contains(&comm_field), "comm policy serialized");
        let legacy = json.replace(&comm_field, "");
        let ckpt: SessionCheckpoint = serde_json::from_str(&legacy).unwrap();
        let restored = StreamingSession::from_checkpoint(ckpt).unwrap();
        match restored.mode() {
            ExecutionMode::Distributed(cc) => {
                assert_eq!(cc.comm, dismastd_cluster::CommPolicy::default());
            }
            other => panic!("expected distributed mode, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_struct_round_trip_validates_rank() {
        let (s0, _) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest(&s0).unwrap();
        let mut ckpt = sess.to_checkpoint();
        assert!(StreamingSession::from_checkpoint(ckpt.clone()).is_ok());
        ckpt.cfg = ckpt.cfg.with_rank(9); // now disagrees with the factors
        assert!(StreamingSession::from_checkpoint(ckpt).is_err());
    }

    #[test]
    fn restore_rejects_missing_and_corrupt_files() {
        assert!(StreamingSession::restore("/nonexistent/dir/ckpt.json").is_err());
        let path = std::env::temp_dir().join("dismastd_corrupt_ckpt_test.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(StreamingSession::restore(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comm_totals_accumulate_across_steps() {
        let (s0, s1) = snapshot_pair();
        let mut sess =
            StreamingSession::new(cfg(), ExecutionMode::Distributed(ClusterConfig::new(3)));
        let r0 = sess.ingest(&s0).unwrap();
        let after_first = sess.comm_totals().clone();
        assert_eq!(after_first.bytes, r0.comm.as_ref().unwrap().bytes);
        let r1 = sess.ingest(&s1).unwrap();
        assert_eq!(
            sess.comm_totals().bytes,
            after_first.bytes + r1.comm.as_ref().unwrap().bytes
        );
        assert_eq!(r0.retries, 0);
        assert_eq!(r1.retries, 0);
    }

    #[test]
    fn ingest_with_recovery_is_transparent_without_faults() {
        let (s0, s1) = snapshot_pair();
        let policy = RecoveryPolicy::default();
        let mut plain = StreamingSession::new(cfg(), ExecutionMode::Serial);
        plain.ingest(&s0).unwrap();
        let a = plain.ingest(&s1).unwrap();
        let mut recovering = StreamingSession::new(cfg(), ExecutionMode::Serial);
        recovering.ingest_with_recovery(&s0, &policy).unwrap();
        let b = recovering.ingest_with_recovery(&s1, &policy).unwrap();
        assert_eq!(a.loss, b.loss);
        assert_eq!(b.retries, 0);
    }

    #[test]
    fn recovery_propagates_non_cluster_errors_immediately() {
        let (s0, s1) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        sess.ingest_with_recovery(&s1, &RecoveryPolicy::default())
            .unwrap();
        // Shrinking snapshot: an InvalidArgument, not a ClusterFault — must
        // not be retried, and the session must stay usable.
        let err = sess
            .ingest_with_recovery(&s0, &RecoveryPolicy::default())
            .unwrap_err();
        assert!(!matches!(err, TensorError::ClusterFault { .. }));
        assert_eq!(sess.steps(), 1);
    }

    #[test]
    fn divergence_verdict_flags_the_right_traces() {
        let wd = WatchdogPolicy::default(); // patience 3
        let ok: Vec<Matrix> = vec![Matrix::zeros(2, 2)];
        assert!(divergence_verdict(&[3.0, 2.0, 1.5], &ok, &wd).is_none());
        // Non-finite loss.
        assert!(divergence_verdict(&[3.0, f64::NAN], &ok, &wd)
            .unwrap()
            .contains("non-finite loss"));
        // Non-finite factor entry.
        let mut bad = Matrix::zeros(2, 2);
        bad.as_mut_slice()[3] = f64::INFINITY;
        assert!(divergence_verdict(&[1.0], &[bad], &wd)
            .unwrap()
            .contains("mode-0 factor"));
        // Sustained increase trips only after `patience` consecutive rises.
        assert!(divergence_verdict(&[1.0, 2.0, 3.0], &ok, &wd).is_none()); // 2 rises
        assert!(divergence_verdict(&[1.0, 2.0, 3.0, 4.0], &ok, &wd).is_some()); // 3 rises
                                                                                // A single improvement resets the streak.
        assert!(divergence_verdict(&[1.0, 2.0, 3.0, 2.5, 3.5, 4.5], &ok, &wd).is_none());
    }

    #[test]
    fn validate_snapshot_modes() {
        let mut b = SparseTensorBuilder::new(vec![3, 3]);
        b.push(&[0, 0], 1.0).unwrap();
        b.push(&[1, 2], f64::NAN).unwrap();
        b.push(&[2, 2], 2.0).unwrap();
        let dirty = b.build().unwrap();

        // Strict errors, naming the offending coordinate.
        match validate_snapshot(&dirty, ValidationMode::Strict) {
            Err(TensorError::NonFiniteValue { index, .. }) => assert_eq!(index, vec![1, 2]),
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
        // Quarantine drops and counts it.
        let (clean, dropped) = validate_snapshot(&dirty, ValidationMode::Quarantine).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(clean.nnz(), 2);
        // Off passes the NaN through, borrowing the input.
        let (raw, dropped) = validate_snapshot(&dirty, ValidationMode::Off).unwrap();
        assert_eq!(dropped, 0);
        assert!(matches!(raw, Cow::Borrowed(_)));

        // An already-clean tensor is borrowed in every mode.
        let mut b = SparseTensorBuilder::new(vec![2, 2]);
        b.push(&[0, 1], 1.0).unwrap();
        let clean_in = b.build().unwrap();
        for mode in [
            ValidationMode::Strict,
            ValidationMode::Quarantine,
            ValidationMode::Off,
        ] {
            let (t, dropped) = validate_snapshot(&clean_in, mode).unwrap();
            assert_eq!(dropped, 0);
            assert!(matches!(t, Cow::Borrowed(_)));
        }
    }

    #[test]
    fn step_report_carries_numerics_and_watchdog_fields() {
        let (s0, s1) = snapshot_pair();
        let mut sess = StreamingSession::new(cfg(), ExecutionMode::Serial);
        let r0 = sess.ingest(&s0).unwrap();
        assert_eq!(r0.quarantined, 0);
        assert_eq!(r0.watchdog_restarts, 0);
        assert_eq!(r0.effective_forgetting, cfg().forgetting);
        assert!(r0.numerics.cholesky_solves > 0);
        let r1 = sess.ingest(&s1).unwrap();
        assert!(!r1.numerics.escalated());
    }

    #[test]
    fn streaming_fit_stays_reasonable() {
        // Over a nested sequence the warm-started fit should not collapse.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let full_shape = [12usize, 10, 8];
        let mut b = SparseTensorBuilder::new(full_shape.to_vec());
        for _ in 0..400 {
            let idx: Vec<usize> = full_shape.iter().map(|&s| rng.gen_range(0..s)).collect();
            b.push(&idx, rng.gen_range(0.8..1.2)).unwrap();
        }
        let full = b.build().unwrap();
        let mut sess = StreamingSession::new(cfg().with_max_iters(12), ExecutionMode::Serial);
        let mut fits = Vec::new();
        for f in [0.7f64, 0.8, 0.9, 1.0] {
            let bounds: Vec<usize> = full_shape
                .iter()
                .map(|&s| ((s as f64 * f).ceil() as usize).min(s))
                .collect();
            let snap = full.restrict(&bounds).unwrap();
            let r = sess.ingest(&snap).unwrap();
            fits.push(r.fit);
        }
        // Random sparse tensors are not low-rank, so absolute fit is modest;
        // what matters is that warm-started streaming updates do not collapse
        // relative to the cold-start quality.
        assert!(fits.iter().all(|&f| f > 0.1), "fits {fits:?}");
        assert!(
            fits.last().unwrap() > &(0.5 * fits[0]),
            "fit collapsed: {fits:?}"
        );
    }
}

//! # dismastd-obs
//!
//! Lightweight observability for the DisMASTD crates: scoped span timers,
//! counters, gauges, and fixed log-scale histograms, collected into a
//! plain-data [`MetricsSnapshot`].
//!
//! ## Model
//!
//! Metrics are recorded into a **thread-local registry**.  Nothing is
//! collected until a caller installs one with [`begin`]; every recording
//! call on a thread without a registry is a no-op costing one thread-local
//! access and a branch — in particular, [`span`] does not even read the
//! clock when disabled, so instrumented kernels stay at their uninstrumented
//! speed (the disabled-mode cost contract; see DESIGN.md "Observability").
//!
//! ## Dropped-metric accounting
//!
//! A recording call on a thread with **no** registry while some *other*
//! thread is collecting is almost always a bug: a helper thread (a pool
//! worker, a cluster rank) that forgot to install a child registry, whose
//! spans and counters would vanish silently.  Such calls are tallied into
//! a process-wide atomic; [`Collector::finish`] stamps the tally observed
//! during its collection window onto
//! [`MetricsSnapshot::dropped_metrics`], and [`dropped_metrics`] exposes
//! the raw process-wide counter.  Threads that *do* install a child
//! registry hand their snapshot back to the spawning thread via
//! [`absorb`], which folds it into the installed registry so the final
//! snapshot reconciles across every participating thread.
//!
//! ```
//! use dismastd_obs as obs;
//! let collector = obs::begin();
//! {
//!     let _s = obs::span!("phase/mttkrp", 1); // labelled by mode
//!     // ... hot work ...
//! }
//! obs::counter_add("plan/rebuild", 1);
//! let snap = collector.finish();
//! assert_eq!(snap.counter_value("plan/rebuild"), 1);
//! assert!(snap.span_total_ns("phase/mttkrp") > 0);
//! ```
//!
//! Registries nest: [`begin`] displaces the current registry and
//! [`Collector::finish`] restores it, so a session-level collector and a
//! test-local collector can coexist on one thread.  Dropping a [`Collector`]
//! without calling `finish` restores the displaced registry and discards
//! the collected data (the error-path behaviour).
//!
//! ## Serialization
//!
//! [`MetricsSnapshot`] is plain data — names, labels, and integer/float
//! aggregates.  No `Instant` or other monotonic-clock state ever reaches a
//! serialized snapshot; durations are recorded as elapsed nanoseconds at
//! span drop.

#[cfg(feature = "count-alloc")]
pub mod alloc;
pub mod taxonomy;

/// Runs `f` with allocation counting suspended on this thread (see
/// [`alloc::exempt`]).  Always available: with the `count-alloc` feature
/// off this is a plain passthrough, so production call sites carry no
/// `cfg` noise.
#[inline]
pub fn alloc_exempt<T>(f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "count-alloc")]
    {
        alloc::exempt(f)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        f()
    }
}

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Live collectors, process-wide.  Dropped-metric tallying is gated on
/// this: a no-registry recording only counts as *dropped* while someone,
/// somewhere in the process, is collecting.
static ACTIVE_COLLECTORS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of metric recordings that hit a thread with no
/// installed registry while a collector was live (see the module docs).
static DROPPED: AtomicU64 = AtomicU64::new(0);

#[inline]
fn count_dropped() {
    if ACTIVE_COLLECTORS.load(Ordering::Relaxed) > 0 {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// The process-wide dropped-metrics counter (monotone; see module docs).
pub fn dropped_metrics() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Label value meaning "no label": spans/counters recorded without an
/// explicit label use this sentinel, so label `0` stays usable (mode 0).
pub const NO_LABEL: u64 = u64::MAX;

/// Histogram bucket count: bucket `0` holds zero values, bucket `i >= 1`
/// holds values with bit length `i`, i.e. the range `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

struct HistAgg {
    count: u64,
    total: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistAgg {
    fn default() -> Self {
        HistAgg {
            count: 0,
            total: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// The per-thread metrics store.  `BTreeMap` keys keep snapshots
/// deterministically ordered by `(name, label)`.
#[derive(Default)]
struct Inner {
    spans: BTreeMap<(&'static str, u64), SpanAgg>,
    counters: BTreeMap<(&'static str, u64), u64>,
    gauges: BTreeMap<(&'static str, u64), f64>,
    histograms: BTreeMap<&'static str, HistAgg>,
    /// Snapshots handed back by helper threads via [`absorb`], merged
    /// into the final snapshot at collection time.
    absorbed: MetricsSnapshot,
}

impl Inner {
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.own_snapshot();
        snap.merge(&self.absorbed);
        snap
    }

    fn own_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            spans: self
                .spans
                .iter()
                .map(|(&(name, label), agg)| SpanStat {
                    name: name.to_string(),
                    label,
                    count: agg.count,
                    total_ns: agg.total_ns,
                    max_ns: agg.max_ns,
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(&(name, label), &value)| CounterStat {
                    name: name.to_string(),
                    label,
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&(name, label), &value)| GaugeStat {
                    name: name.to_string(),
                    label,
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&name, agg)| HistogramStat {
                    name: name.to_string(),
                    count: agg.count,
                    total: agg.total,
                    buckets: agg.buckets.to_vec(),
                })
                .collect(),
            dropped_metrics: 0,
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<Option<Box<Inner>>> = const { RefCell::new(None) };
}

/// Runs `f` against the installed registry; without one, the recording is
/// a no-op that bumps the process-wide dropped tally when a collector is
/// live elsewhere.
#[inline]
fn with_inner(f: impl FnOnce(&mut Inner)) {
    REGISTRY.with(|r| match r.borrow_mut().as_mut() {
        Some(inner) => f(inner),
        None => count_dropped(),
    });
}

/// Whether this thread currently has a metrics registry installed.
#[inline]
pub fn installed() -> bool {
    REGISTRY.with(|r| r.borrow().is_some())
}

/// Installs a fresh registry on this thread and returns the handle that
/// collects it.  The previously installed registry (if any) is displaced
/// and restored by [`Collector::finish`] or the collector's `Drop`.
#[must_use = "metrics are discarded unless the collector is finished"]
pub fn begin() -> Collector {
    let prev = REGISTRY.with(|r| r.borrow_mut().replace(Box::new(Inner::default())));
    ACTIVE_COLLECTORS.fetch_add(1, Ordering::Relaxed);
    Collector {
        prev,
        active: true,
        dropped_at_begin: DROPPED.load(Ordering::Relaxed),
    }
}

/// Handle to an installed registry; see [`begin`].
pub struct Collector {
    prev: Option<Box<Inner>>,
    active: bool,
    dropped_at_begin: u64,
}

impl Collector {
    /// Uninstalls the registry, restores the displaced one, and returns
    /// everything recorded on this thread since [`begin`].
    ///
    /// The snapshot's [`MetricsSnapshot::dropped_metrics`] carries the
    /// process-wide dropped tally observed during this collection window
    /// (a zero means no thread lost a recording while this collector was
    /// live; see the module docs).
    pub fn finish(mut self) -> MetricsSnapshot {
        self.active = false;
        ACTIVE_COLLECTORS.fetch_sub(1, Ordering::Relaxed);
        let inner = REGISTRY.with(|r| std::mem::replace(&mut *r.borrow_mut(), self.prev.take()));
        let mut snap = inner.map(|i| i.snapshot()).unwrap_or_default();
        let window = DROPPED
            .load(Ordering::Relaxed)
            .saturating_sub(self.dropped_at_begin);
        snap.dropped_metrics = snap.dropped_metrics.max(window);
        snap
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        if self.active {
            // Abandoned mid-collection (error path): restore the displaced
            // registry and discard what was recorded.
            ACTIVE_COLLECTORS.fetch_sub(1, Ordering::Relaxed);
            REGISTRY.with(|r| *r.borrow_mut() = self.prev.take());
        }
    }
}

/// Folds a helper thread's finished snapshot into this thread's installed
/// registry, so spans and counters recorded on pool workers or cluster
/// ranks land in the spawning collector's final snapshot.  Without an
/// installed registry the snapshot is lost and counted as one dropped
/// recording.
pub fn absorb(snap: &MetricsSnapshot) {
    REGISTRY.with(|r| match r.borrow_mut().as_mut() {
        Some(inner) => inner.absorbed.merge(snap),
        None => count_dropped(),
    });
}

/// Scoped timer: measures from creation to drop and records into the
/// thread's registry.  When no registry is installed the guard holds no
/// clock reading at all — creation and drop are each one thread-local
/// access plus a branch.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    label: u64,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            with_inner(|inner| {
                let agg = self.spans_entry(inner);
                agg.count += 1;
                agg.total_ns += ns;
                agg.max_ns = agg.max_ns.max(ns);
            });
        }
    }
}

impl SpanGuard {
    fn spans_entry<'a>(&self, inner: &'a mut Inner) -> &'a mut SpanAgg {
        inner.spans.entry((self.name, self.label)).or_default()
    }
}

/// Starts an unlabelled span.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, NO_LABEL)
}

/// Starts a span labelled by a small integer (a mode, a tier, a rank).
#[inline]
pub fn span_with(name: &'static str, label: u64) -> SpanGuard {
    let start = if installed() {
        Some(Instant::now())
    } else {
        count_dropped();
        None
    };
    SpanGuard { name, label, start }
}

/// `span!("name")` or `span!("name", label)` — sugar over [`span`] /
/// [`span_with`]; the label expression is cast to `u64`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $label:expr) => {
        $crate::span_with($name, $label as u64)
    };
}

/// Adds `delta` to an unlabelled counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    counter_add_with(name, NO_LABEL, delta);
}

/// Adds `delta` to a labelled counter.
#[inline]
pub fn counter_add_with(name: &'static str, label: u64, delta: u64) {
    with_inner(|inner| *inner.counters.entry((name, label)).or_insert(0) += delta);
}

/// Sets an unlabelled gauge to `value` (last write wins within a thread).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    gauge_set_with(name, NO_LABEL, value);
}

/// Sets a labelled gauge.
#[inline]
pub fn gauge_set_with(name: &'static str, label: u64, value: f64) {
    with_inner(|inner| {
        inner.gauges.insert((name, label), value);
    });
}

/// Records one observation into a fixed log-scale histogram (bucket = bit
/// length of `value`; see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    with_inner(|inner| {
        let agg = inner.histograms.entry(name).or_default();
        agg.count += 1;
        agg.total += value;
        agg.buckets[bucket_index(value)] += 1;
    });
}

/// Bucket index for a histogram value: `0` for zero, otherwise the bit
/// length (so bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

// ---- snapshot ------------------------------------------------------------

/// Aggregate of one `(name, label)` span: call count, total and maximum
/// elapsed nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    pub name: String,
    /// [`NO_LABEL`] when the span was unlabelled.
    pub label: u64,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// One `(name, label)` counter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    pub name: String,
    /// [`NO_LABEL`] when the counter was unlabelled.
    pub label: u64,
    pub value: u64,
}

/// One `(name, label)` gauge value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    pub name: String,
    /// [`NO_LABEL`] when the gauge was unlabelled.
    pub label: u64,
    pub value: f64,
}

/// One histogram: observation count, sum, and log-scale bucket counts
/// (bucket `0` = zero values, bucket `i` = values in `[2^(i-1), 2^i)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramStat {
    pub name: String,
    pub count: u64,
    pub total: u64,
    pub buckets: Vec<u64>,
}

/// Everything one registry collected, sorted by `(name, label)`.
///
/// Plain data: safe to clone, compare, serialize, and merge across threads
/// (worker ranks) or steps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub spans: Vec<SpanStat>,
    pub counters: Vec<CounterStat>,
    pub gauges: Vec<GaugeStat>,
    pub histograms: Vec<HistogramStat>,
    /// Process-wide recordings observed to hit a registry-less thread
    /// during this snapshot's collection window (see [`dropped_metrics`]).
    /// Zero means every recording made while collecting landed in *some*
    /// registry.  Windows overlap (a worker's window nests inside the
    /// driver's), so [`merge`](Self::merge) takes the max, never the sum.
    pub dropped_metrics: u64,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.  Deliberately ignores
    /// [`dropped_metrics`](Self::dropped_metrics): the field describes
    /// process-wide losses, not this registry's contents.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Total nanoseconds across every label of the named span.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_ns)
            .sum()
    }

    /// Total nanoseconds of all `phase/`-prefixed spans.  Phase spans are
    /// non-overlapping by convention (see DESIGN.md), so on a single
    /// thread this sum is bounded by the enclosing wall-clock interval.
    pub fn phase_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with("phase/"))
            .map(|s| s.total_ns)
            .sum()
    }

    /// Sum across every label of the named counter.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The named gauge's value for a given label, if recorded.
    pub fn gauge_value(&self, name: &str, label: u64) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.label == label)
            .map(|g| g.value)
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds `other` into `self`: span counts/totals add (max of maxes),
    /// counters add, gauges keep the larger value, histograms add
    /// bucket-wise.  Used to combine per-rank worker snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for s in &other.spans {
            match self
                .spans
                .iter_mut()
                .find(|m| m.name == s.name && m.label == s.label)
            {
                Some(m) => {
                    m.count += s.count;
                    m.total_ns += s.total_ns;
                    m.max_ns = m.max_ns.max(s.max_ns);
                }
                None => self.spans.push(s.clone()),
            }
        }
        for c in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|m| m.name == c.name && m.label == c.label)
            {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self
                .gauges
                .iter_mut()
                .find(|m| m.name == g.name && m.label == g.label)
            {
                Some(m) => m.value = m.value.max(g.value),
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => {
                    m.count += h.count;
                    m.total += h.total;
                    if m.buckets.len() < h.buckets.len() {
                        m.buckets.resize(h.buckets.len(), 0);
                    }
                    for (d, &s) in m.buckets.iter_mut().zip(&h.buckets) {
                        *d += s;
                    }
                }
                None => self.histograms.push(h.clone()),
            }
        }
        // Collection windows overlap (worker windows nest inside the
        // driver's, and both read one process-wide counter), so the max
        // is the loss bound — summing would double-count.
        self.dropped_metrics = self.dropped_metrics.max(other.dropped_metrics);
        self.spans
            .sort_by(|a, b| (&a.name, a.label).cmp(&(&b.name, b.label)));
        self.counters
            .sort_by(|a, b| (&a.name, a.label).cmp(&(&b.name, b.label)));
        self.gauges
            .sort_by(|a, b| (&a.name, a.label).cmp(&(&b.name, b.label)));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Human-readable multi-line report.
    pub fn to_text(&self) -> String {
        fn key(name: &str, label: u64) -> String {
            if label == NO_LABEL {
                name.to_string()
            } else {
                format!("{name}[{label}]")
            }
        }
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<28} count={:<6} total={:.3}ms max={:.3}ms\n",
                    key(&s.name, s.label),
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.max_ns as f64 / 1e6,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<28} {}\n", key(&c.name, c.label), c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {:<28} {}\n", key(&g.name, g.label), g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.total as f64 / h.count as f64
                };
                out.push_str(&format!(
                    "  {:<28} count={} total={} mean={mean:.1}\n",
                    h.name, h.count, h.total
                ));
            }
        }
        if self.dropped_metrics > 0 {
            out.push_str(&format!(
                "dropped_metrics: {} (recordings hit a thread with no registry)\n",
                self.dropped_metrics
            ));
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// JSON export of the full snapshot.
    ///
    /// # Errors
    /// Propagates the serializer's error (not reachable for this data).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!installed());
        {
            let s = span("phase/test");
            assert!(s.start.is_none(), "no clock read when disabled");
        }
        counter_add("x", 1);
        histogram_record("h", 7);
        // Nothing was installed, so a fresh collector starts empty.
        let snap = begin().finish();
        assert!(snap.is_empty());
    }

    #[test]
    fn spans_counters_gauges_histograms_round_trip() {
        let c = begin();
        {
            let _a = span!("phase/alpha");
            let _b = span!("kernel/beta", 2);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        counter_add("plan/rebuild", 2);
        counter_add_with("solve/tier", 1, 3);
        gauge_set("mem/bytes", 123.0);
        histogram_record("comm/msg_bytes", 0);
        histogram_record("comm/msg_bytes", 1);
        histogram_record("comm/msg_bytes", 800);
        let snap = c.finish();
        assert!(!installed());

        assert!(snap.span_total_ns("phase/alpha") >= 1_000_000);
        assert!(snap.span_total_ns("kernel/beta") >= 1_000_000);
        assert_eq!(snap.counter_value("plan/rebuild"), 2);
        assert_eq!(snap.counter_value("solve/tier"), 3);
        assert_eq!(snap.gauge_value("mem/bytes", NO_LABEL), Some(123.0));
        let h = snap.histogram("comm/msg_bytes").expect("recorded");
        assert_eq!(h.count, 3);
        assert_eq!(h.total, 801);
        assert_eq!(h.buckets[0], 1); // value 0
        assert_eq!(h.buckets[1], 1); // value 1
        assert_eq!(h.buckets[10], 1); // 800 in [512, 1024)
    }

    #[test]
    fn phase_total_sums_only_phase_spans() {
        let c = begin();
        {
            let _p = span("phase/a");
            let _k = span("kernel/b");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = c.finish();
        assert_eq!(snap.phase_total_ns(), snap.span_total_ns("phase/a"));
        assert!(
            snap.phase_total_ns() < snap.span_total_ns("phase/a") + snap.span_total_ns("kernel/b")
        );
    }

    #[test]
    fn collectors_nest_and_restore() {
        let outer = begin();
        counter_add("outer", 1);
        {
            let inner = begin();
            counter_add("inner", 1);
            let snap = inner.finish();
            assert_eq!(snap.counter_value("inner"), 1);
            assert_eq!(snap.counter_value("outer"), 0);
        }
        // The outer registry is restored and still collecting.
        counter_add("outer", 1);
        let snap = outer.finish();
        assert_eq!(snap.counter_value("outer"), 2);
        assert_eq!(snap.counter_value("inner"), 0);
        assert!(!installed());
    }

    #[test]
    fn dropped_collector_discards_and_restores() {
        let outer = begin();
        {
            let _abandoned = begin();
            counter_add("lost", 5);
            // dropped without finish()
        }
        assert!(installed(), "outer registry restored");
        counter_add("kept", 1);
        let snap = outer.finish();
        assert_eq!(snap.counter_value("lost"), 0);
        assert_eq!(snap.counter_value("kept"), 1);
    }

    #[test]
    fn merge_combines_and_sorts() {
        let a = {
            let c = begin();
            counter_add("n", 1);
            {
                let _s = span!("phase/x", 0);
            }
            histogram_record("h", 4);
            c.finish()
        };
        let b = {
            let c = begin();
            counter_add("n", 2);
            counter_add("b-only", 7);
            {
                let _s = span!("phase/x", 0);
            }
            histogram_record("h", 4);
            c.finish()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.counter_value("n"), 3);
        assert_eq!(m.counter_value("b-only"), 7);
        let span_x = m
            .spans
            .iter()
            .find(|s| s.name == "phase/x")
            .expect("merged");
        assert_eq!(span_x.count, 2);
        assert_eq!(
            m.span_total_ns("phase/x"),
            a.span_total_ns("phase/x") + b.span_total_ns("phase/x")
        );
        let h = m.histogram("h").expect("merged");
        assert_eq!(h.count, 2);
        assert_eq!(h.total, 8);
        assert_eq!(h.buckets[3], 2);
        // Deterministic ordering after merge.
        let names: Vec<&str> = m.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["b-only", "n"]);
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let c = begin();
        {
            let _s = span!("phase/io", 3);
        }
        counter_add("events", 9);
        gauge_set("ratio", 0.5);
        histogram_record("sizes", 100);
        let snap = c.finish();
        let json = snap.to_json().expect("serializable");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        let text = snap.to_text();
        assert!(text.contains("phase/io[3]"));
        assert!(text.contains("events"));
    }

    #[test]
    fn bucket_index_covers_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn registries_are_per_thread_and_leaks_are_counted() {
        let c = begin();
        counter_add("main", 1);
        let before = dropped_metrics();
        std::thread::spawn(|| {
            assert!(!installed(), "registry must not leak across threads");
            counter_add("other", 1); // no registry: dropped, and counted
        })
        .join()
        .expect("thread ok");
        assert!(
            dropped_metrics() > before,
            "a cross-thread recording while collecting must be tallied"
        );
        let snap = c.finish();
        assert_eq!(snap.counter_value("main"), 1);
        assert_eq!(snap.counter_value("other"), 0);
        assert!(
            snap.dropped_metrics >= 1,
            "the collection window must report the loss"
        );
    }

    #[test]
    fn absorb_folds_a_child_snapshot_into_the_collector() {
        let c = begin();
        counter_add("parent", 1);
        let child = std::thread::spawn(|| {
            let child = begin();
            counter_add("parent", 2);
            counter_add("child-only", 5);
            {
                let _s = span!("kernel/child");
            }
            child.finish()
        })
        .join()
        .expect("thread ok");
        absorb(&child);
        let snap = c.finish();
        assert_eq!(snap.counter_value("parent"), 3);
        assert_eq!(snap.counter_value("child-only"), 5);
        assert!(snap.spans.iter().any(|s| s.name == "kernel/child"));
    }

    #[test]
    fn merge_takes_the_max_of_dropped_tallies() {
        let mut a = MetricsSnapshot {
            dropped_metrics: 3,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            dropped_metrics: 7,
            ..MetricsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped_metrics, 7, "overlapping windows: max, not sum");
        assert!(a.is_empty(), "dropped tally alone is not recorded data");
        assert!(a.to_text().contains("dropped_metrics: 7"));
    }
}

//! The registered metric taxonomy.
//!
//! Every span, counter, gauge, and histogram name used by the DisMASTD
//! crates must be listed here.  The registry serves two purposes:
//!
//! 1. **Static analysis** — `dismastd-xtask`'s L3 lint resolves every
//!    string literal passed to [`span`](crate::span) /
//!    [`counter_add`](crate::counter_add) / … against this table, so a
//!    typo'd label (`"phase/solv"`) is a build-gate failure instead of a
//!    silently missing metric.
//! 2. **Documentation** — the table is the single place that says which
//!    instrument families exist and what their prefixes mean.
//!
//! Families:
//! - `kernel/*` — per-kernel hot-loop spans (labelled by mode where
//!   applicable).
//! - `phase/*`  — algorithm phases of DTD / distributed ALS / the
//!   streaming session.
//! - `comm/*`   — collective-communication spans and wire-size
//!   histograms.
//! - `plan/*`, `watchdog/*`, `ingest/*`, `solve/*` — event counters for
//!   plan caching (including the adaptive layout selector's choices),
//!   divergence restarts, quarantined ingest, and the solve-tier
//!   escalation ladder.
//! - `pool/*` — intra-worker thread-pool events (chunks executed).
//! - `sim/*` — deterministic-simulation scheduler events (messages on the
//!   virtual wire, partition holds, time advances, deadlock wakes).
//! - `membership/*` — elastic worker join/leave events and the ownership
//!   migration / plan-invalidation work they trigger.
//! - `heal/*` — the supervision layer's crash-heal ladder: respawn
//!   replays, backoff spent, degraded-world transitions, and terminal
//!   give-ups.
//!
//! Adding a metric means adding its name to the matching table below in
//! the same change that introduces the call site; the L3 lint fails
//! otherwise.

/// Registered span names (scoped timers).
pub const SPANS: &[&str] = &[
    // comm family: one span per collective primitive; the allreduce_*
    // algorithm spans and the exchange post/wait halves nest inside their
    // parent primitive's span.
    "comm/allreduce",
    "comm/allreduce_halving",
    "comm/allreduce_ring",
    "comm/barrier",
    "comm/broadcast",
    "comm/exchange",
    "comm/exchange_post",
    "comm/exchange_wait",
    "comm/gather",
    // kernel family: MTTKRP kernels and plan construction.
    "kernel/mttkrp_naive",
    "kernel/mttkrp_plan",
    "kernel/plan_build",
    // phase family: DTD / distributed ALS / session phases.
    "phase/complement",
    "phase/exchange",
    "phase/gather",
    "phase/gram",
    "phase/loss",
    "phase/mttkrp",
    "phase/partition",
    "phase/plan_build",
    "phase/setup",
    "phase/solve",
    "phase/validate",
    // heal family: one span per replayed ingest attempt of the heal loop.
    "heal/replay",
];

/// Registered counter names (monotone event tallies).
pub const COUNTERS: &[&str] = &[
    // comm family: wire size of compressed frames and rows downcast to
    // f32 (logical sizes stay in the comm/msg_bytes histogram).
    "comm/compressed_bytes",
    "comm/downcast_rows",
    // heal family: supervision-ladder decisions and the backoff they cost.
    "heal/backoff_ns",
    "heal/degraded",
    "heal/giveup",
    "heal/respawn",
    "ingest/quarantined",
    // membership family: elastic join/leave and the migration work.
    "membership/join",
    "membership/leave",
    "membership/migrated_rows",
    "membership/plan_invalidations",
    // plan family: cache traffic and the adaptive per-cell layout
    // selector's choices (COO kernel vs sorted-run plan).
    "plan/adaptive_coo",
    "plan/adaptive_plan",
    "plan/cache_hit",
    "plan/rebuild",
    // pool family: intra-worker thread-pool work items.
    "pool/chunks",
    // sim family: virtual-network scheduler events.
    "sim/deadlock_wakes",
    "sim/held_messages",
    "sim/messages",
    "sim/rejoin_delays",
    "sim/time_advances",
    "solve/tier",
    "watchdog/restart",
];

/// Registered gauge names (point-in-time values).  None are currently
/// emitted by the production crates; the table exists so the L3 lint has
/// a resolution target the moment one is added.
pub const GAUGES: &[&str] = &[];

/// Registered histogram names (log₂-bucketed distributions).
/// `comm/msg_bytes` records every remote message at its *logical*
/// (flat-equivalent) size, so it reconciles exactly with
/// `CommStats::bytes` whether or not compression fired;
/// `comm/wire_bytes` records compressed frames at their encoded size.
pub const HISTOGRAMS: &[&str] = &["comm/msg_bytes", "comm/wire_bytes"];

/// Instrument kind, used to select the table a name must resolve in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    Span,
    Counter,
    Gauge,
    Histogram,
}

impl InstrumentKind {
    /// The registry table for this instrument kind.
    pub fn table(self) -> &'static [&'static str] {
        match self {
            InstrumentKind::Span => SPANS,
            InstrumentKind::Counter => COUNTERS,
            InstrumentKind::Gauge => GAUGES,
            InstrumentKind::Histogram => HISTOGRAMS,
        }
    }
}

/// True when `name` is a registered instrument of the given kind.
pub fn is_registered(kind: InstrumentKind, name: &str) -> bool {
    kind.table().contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_within_family_and_duplicate_free() {
        for table in [SPANS, COUNTERS, GAUGES, HISTOGRAMS] {
            let mut seen = std::collections::BTreeSet::new();
            for name in table {
                assert!(seen.insert(*name), "duplicate taxonomy entry {name}");
            }
        }
    }

    #[test]
    fn every_name_carries_a_known_family_prefix() {
        const FAMILIES: &[&str] = &[
            "kernel/",
            "phase/",
            "comm/",
            "plan/",
            "pool/",
            "watchdog/",
            "ingest/",
            "solve/",
            "sim/",
            "membership/",
            "heal/",
        ];
        for table in [SPANS, COUNTERS, GAUGES, HISTOGRAMS] {
            for name in table {
                assert!(
                    FAMILIES.iter().any(|f| name.starts_with(f)),
                    "taxonomy entry {name} lacks a registered family prefix"
                );
            }
        }
    }

    #[test]
    fn lookup_matches_tables() {
        assert!(is_registered(InstrumentKind::Span, "phase/mttkrp"));
        assert!(is_registered(InstrumentKind::Counter, "solve/tier"));
        assert!(is_registered(InstrumentKind::Histogram, "comm/msg_bytes"));
        assert!(!is_registered(InstrumentKind::Span, "phase/solv"));
        assert!(!is_registered(InstrumentKind::Counter, "phase/mttkrp"));
    }
}

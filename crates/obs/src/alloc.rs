//! Feature-gated counting global allocator (`count-alloc`).
//!
//! [`CountingAlloc`] wraps the system allocator and tallies every
//! allocation into a per-thread counter, so a test can pin an
//! allocation-free steady state exactly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dismastd_obs::alloc::CountingAlloc = dismastd_obs::alloc::CountingAlloc;
//!
//! warm_up();
//! let before = dismastd_obs::alloc::allocation_count();
//! hot_loop();
//! assert_eq!(dismastd_obs::alloc::allocation_count(), before);
//! ```
//!
//! Counters are thread-local: each cluster rank audits its own loop
//! without cross-thread noise.  Only allocations count — `dealloc` is
//! free, so dropping a warm buffer never trips the audit.
//!
//! [`exempt`] suspends counting for one closure on the current thread.
//! It scopes out infrastructure the audit deliberately ignores — the
//! channel-node allocation inside a transport send — while everything
//! around it stays counted.  Production code calls the crate-root
//! [`crate::alloc_exempt`], which compiles to a plain call when the
//! feature is off.
//!
//! The thread-locals are `const`-initialised: their first access from
//! inside the allocator cannot itself allocate, so the hook never
//! re-enters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Allocations observed on this thread while not [`exempt`].
    static COUNT: Cell<u64> = const { Cell::new(0) };
    /// Nesting depth of [`exempt`] scopes; counting is off above zero.
    static EXEMPT_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// System-allocator wrapper that counts per-thread allocations.
pub struct CountingAlloc;

#[inline]
fn record() {
    EXEMPT_DEPTH.with(|d| {
        if d.get() == 0 {
            COUNT.with(|c| c.set(c.get() + 1));
        }
    });
}

// SAFETY: defers every operation to `System`; the bookkeeping around it
// touches only const-initialised thread-local `Cell`s, which never
// allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocations counted on the current thread so far (monotone; exempt
/// scopes and `dealloc` excluded).
pub fn allocation_count() -> u64 {
    COUNT.with(Cell::get)
}

/// Resets the current thread's allocation counter to zero.
pub fn reset_allocation_count() {
    COUNT.with(|c| c.set(0));
}

/// Runs `f` with allocation counting suspended on this thread.  Nests;
/// the counter resumes when the outermost scope exits, even on unwind.
pub fn exempt<T>(f: impl FnOnce() -> T) -> T {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            EXEMPT_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    EXEMPT_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    // No `#[global_allocator]` here — installing one is the binary's
    // choice, and the test crate's harness should stay on the system
    // allocator.  These tests exercise the counter plumbing directly.

    #[test]
    fn exempt_scopes_nest_and_restore() {
        let base = allocation_count();
        exempt(|| {
            record(); // suppressed
            exempt(record); // suppressed, nested
            record(); // still suppressed after inner scope
        });
        assert_eq!(allocation_count(), base);
        record();
        assert_eq!(allocation_count(), base + 1);
    }

    #[test]
    fn reset_zeroes_the_thread_counter() {
        record();
        assert!(allocation_count() > 0);
        reset_allocation_count();
        assert_eq!(allocation_count(), 0);
    }
}

//! CLI for the workspace lint & audit driver; see the crate docs.

use dismastd_xtask::{analyze, workspace, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("audit") => audit(&args[1..]),
        _ => {
            eprintln!("usage: dismastd-xtask <lint|analyze|audit> [options]");
            eprintln!(
                "  lint    [--files <f.rs>…] [--json|--github]   L1-L5 invariant lints (workspace by default)"
            );
            eprintln!(
                "  analyze [--write-budget] [--json|--github]    L6-L8 interprocedural audits (call graph)"
            );
            eprintln!("  audit   [--loom-only|--tsan-only]             loom barrier model + TSan chaos run");
            ExitCode::from(2)
        }
    }
}

/// How findings are rendered: human `file:line:col`, one JSON object
/// per line, or GitHub workflow annotations.
#[derive(Clone, Copy, PartialEq)]
enum Output {
    Human,
    Json,
    Github,
}

impl Output {
    /// Extracts `--json`/`--github` from `args`, returning the mode and
    /// the remaining arguments.
    fn extract(args: &[String]) -> (Output, Vec<String>) {
        let mut mode = Output::Human;
        let mut rest = Vec::new();
        for a in args {
            match a.as_str() {
                "--json" => mode = Output::Json,
                "--github" => mode = Output::Github,
                _ => rest.push(a.clone()),
            }
        }
        (mode, rest)
    }

    fn emit(self, d: &Diagnostic) {
        match self {
            Output::Human => println!("{d}"),
            Output::Json => println!("{}", d.to_json()),
            Output::Github => println!("{}", d.to_github()),
        }
    }
}

fn workspace_root() -> PathBuf {
    // The binary is built from the workspace, so the compile-time
    // manifest dir is always two levels below the root; fall back to a
    // cwd walk when the binary was relocated.
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled.join("Cargo.toml").exists() {
        return compiled;
    }
    std::env::current_dir()
        .ok()
        .and_then(|d| workspace::find_root(&d))
        .unwrap_or_else(|| PathBuf::from("."))
}

fn lint(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let (out, args) = Output::extract(args);
    let (diags, files) = if args.first().map(String::as_str) == Some("--files") {
        let mut diags = Vec::new();
        for f in &args[1..] {
            let path = PathBuf::from(f);
            match std::fs::read_to_string(&path) {
                Ok(src) => {
                    diags.extend(dismastd_xtask::lint_source(
                        &path,
                        &src,
                        dismastd_xtask::LintScope::ALL,
                    ));
                }
                Err(e) => {
                    eprintln!("error: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (diags, args.len() - 1)
    } else {
        match workspace::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    };
    for d in &diags {
        out.emit(d);
    }
    if diags.is_empty() {
        if out == Output::Human {
            println!("xtask lint: {files} files clean (L1 panic-path, L2 determinism, L3 span-taxonomy, L4 error-hygiene, L5 clock-hygiene)");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} violation(s) across {files} files; \
             acknowledge deliberate ones with `// lint:allow(<name>): <reason>`",
            diags.len()
        );
        ExitCode::FAILURE
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let (out, args) = Output::extract(args);
    if args.first().map(String::as_str) == Some("--write-budget") {
        let files = match workspace::analyzed_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        };
        let analysis = workspace::analyze_files(&files);
        let path = root.join(workspace::BUDGET_PATH);
        if let Err(e) = std::fs::write(&path, analyze::render_budget(&analysis.budget)) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "xtask analyze: wrote {} budget entries to {}",
            analysis.budget.len(),
            workspace::BUDGET_PATH
        );
        return ExitCode::SUCCESS;
    }
    let (analysis, files) = match workspace::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &analysis.diags {
        out.emit(d);
    }
    if analysis.diags.is_empty() {
        if out == Output::Human {
            println!(
                "xtask analyze: {} fns across {files} files clean (L6 collective-order, \
                 L7 panic-budget: {} entries matched, L8 alloc-hygiene)",
                analysis.fn_count,
                analysis.budget.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask analyze: {} violation(s) across {files} files; hoist/fix the code, add \
             `// lint:allow(<name>): <reason>`, or (L7 only, after review) run \
             `cargo run -p dismastd-xtask -- analyze --write-budget`",
            analysis.diags.len()
        );
        ExitCode::FAILURE
    }
}

fn audit(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let only = args.first().map(String::as_str);
    let mut failed = false;

    if only != Some("--tsan-only") {
        println!("==> loom barrier model (RUSTFLAGS=--cfg loom)");
        let status = Command::new("cargo")
            .current_dir(&root)
            .args(["test", "-p", "dismastd-cluster", "--test", "loom_barrier"])
            .env("RUSTFLAGS", "--cfg loom")
            .status();
        match status {
            Ok(s) if s.success() => println!("loom model: ok"),
            Ok(s) => {
                eprintln!("loom model failed: {s}");
                failed = true;
            }
            Err(e) => {
                eprintln!("loom model could not run: {e}");
                failed = true;
            }
        }
    }

    if only != Some("--loom-only") {
        println!("==> ThreadSanitizer chaos run (scripts/tsan.sh)");
        let status = Command::new("bash")
            .current_dir(&root)
            .arg("scripts/tsan.sh")
            .status();
        match status {
            Ok(s) if s.success() => println!("tsan: ok"),
            Ok(s) => {
                eprintln!("tsan failed: {s}");
                failed = true;
            }
            Err(e) => {
                eprintln!("tsan could not run: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

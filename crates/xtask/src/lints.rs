//! The project lints, L1–L5, over the token stream of [`crate::lexer`].
//!
//! Each lint walks a [`LexedFile`], skips tokens inside test regions,
//! and emits [`Diagnostic`]s with exact `file:line:col` positions.  A
//! violation can be acknowledged in place with an escape-hatch comment:
//!
//! ```text
//! let t = Instant::now(); // lint:allow(determinism): timeout backstop only
//! ```
//!
//! The directive suppresses the named lint on its own line or, when it
//! stands alone on a line (attribute style), on the next code line
//! below it — blank lines and further comments in between don't break
//! the binding.  A reason after the `:` is mandatory by convention
//! (reviewed like any other comment) but not machine-enforced.
//!
//! The interprocedural lints L6–L8 live in [`crate::analyze`]; their
//! [`LintId`]s and allow-directive plumbing are shared from here.

use crate::lexer::{LexedFile, Token, TokenKind};
use dismastd_obs::taxonomy::{self, InstrumentKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifies one lint; the `name` doubles as the allow-directive key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// L1: no `unwrap`/`expect`/panic-macros/panicking payload
    /// converters in production code.
    PanicPath,
    /// L2: no nondeterministic containers, clocks, or RNG in the crates
    /// feeding the bit-identical distributed path.
    Determinism,
    /// L3: every obs span/counter/gauge/histogram label resolves in the
    /// registered taxonomy.
    SpanTaxonomy,
    /// L4: public fallible APIs return the typed project errors, not
    /// `Box<dyn Error>`.
    ErrorHygiene,
    /// L5: no raw OS-clock calls (`Instant::now`, `SystemTime::now`,
    /// `thread::sleep`) outside the clock module — time must flow
    /// through the `Clock` abstraction so simulation can virtualise it.
    ClockHygiene,
    /// L6: no collective call reachable from `worker_body` may sit
    /// under a branch conditioned on rank-local state (interprocedural;
    /// see [`crate::analyze`]).
    CollectiveOrder,
    /// L7: the transitive panic surface of every public API matches the
    /// checked-in budget file (interprocedural).
    PanicReachability,
    /// L8: nothing reachable from the steady-state MTTKRP/exchange/gram
    /// entry points calls an allocating constructor or method
    /// (interprocedural).
    AllocHygiene,
}

impl LintId {
    pub fn code(self) -> &'static str {
        match self {
            LintId::PanicPath => "L1",
            LintId::Determinism => "L2",
            LintId::SpanTaxonomy => "L3",
            LintId::ErrorHygiene => "L4",
            LintId::ClockHygiene => "L5",
            LintId::CollectiveOrder => "L6",
            LintId::PanicReachability => "L7",
            LintId::AllocHygiene => "L8",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LintId::PanicPath => "panic_path",
            LintId::Determinism => "determinism",
            LintId::SpanTaxonomy => "span_taxonomy",
            LintId::ErrorHygiene => "error_hygiene",
            LintId::ClockHygiene => "clock_hygiene",
            LintId::CollectiveOrder => "collective_order",
            LintId::PanicReachability => "panic_reachability",
            LintId::AllocHygiene => "alloc_hygiene",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "panic_path" => Some(LintId::PanicPath),
            "determinism" => Some(LintId::Determinism),
            "span_taxonomy" => Some(LintId::SpanTaxonomy),
            "error_hygiene" => Some(LintId::ErrorHygiene),
            "clock_hygiene" => Some(LintId::ClockHygiene),
            "collective_order" => Some(LintId::CollectiveOrder),
            "panic_reachability" => Some(LintId::PanicReachability),
            "alloc_hygiene" => Some(LintId::AllocHygiene),
            _ => None,
        }
    }
}

/// One lint finding at an exact source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: u32,
    pub col: u32,
    pub lint: LintId,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}({}): {}",
            self.file.display(),
            self.line,
            self.col,
            self.lint.code(),
            self.lint.name(),
            self.message
        )
    }
}

impl Diagnostic {
    /// One JSON object per diagnostic (one line, no trailing newline),
    /// for `--json` consumers.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"col":{},"code":"{}","lint":"{}","message":"{}"}}"#,
            json_escape(&self.file.display().to_string()),
            self.line,
            self.col,
            self.lint.code(),
            self.lint.name(),
            json_escape(&self.message)
        )
    }

    /// A GitHub Actions workflow annotation (`::error …`), for
    /// `--github` mode: failures render inline on the PR diff.
    pub fn to_github(&self) -> String {
        format!(
            "::error file={},line={},col={},title={}({})::{}",
            self.file.display(),
            self.line,
            self.col,
            self.lint.code(),
            self.lint.name(),
            github_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The workflow-command data encoding: `%`, CR, LF must be escaped.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Which lints run on a file; see [`crate::workspace`] for the per-crate
/// scoping table.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintScope {
    pub panic_path: bool,
    pub determinism: bool,
    pub span_taxonomy: bool,
    pub error_hygiene: bool,
    pub clock_hygiene: bool,
}

impl LintScope {
    pub const ALL: LintScope = LintScope {
        panic_path: true,
        determinism: true,
        span_taxonomy: true,
        error_hygiene: true,
        clock_hygiene: true,
    };
}

/// Lints one file's source under the given scope, returning every
/// unsuppressed diagnostic in source order.
pub fn lint_source(path: &Path, src: &str, scope: LintScope) -> Vec<Diagnostic> {
    let file = crate::lexer::lex(src);
    let allows = collect_allows(&file);
    let mut diags = Vec::new();
    if scope.panic_path {
        l1_panic_path(path, &file, &mut diags);
    }
    if scope.determinism {
        l2_determinism(path, &file, &mut diags);
    }
    if scope.span_taxonomy {
        l3_span_taxonomy(path, &file, &mut diags);
    }
    if scope.error_hygiene {
        l4_error_hygiene(path, &file, &mut diags);
    }
    if scope.clock_hygiene {
        l5_clock_hygiene(path, &file, &mut diags);
    }
    diags.retain(|d| !is_allowed(&allows, d.lint, d.line));
    diags.sort_by_key(|d| (d.line, d.col, d.lint));
    diags
}

/// Parses `lint:allow(name[, name…])` directives out of the comments.
///
/// A *trailing* directive (code precedes it on the line) covers its own
/// line; a *standalone* comment line covers the next code line below it
/// (attribute style — intervening blank or comment-only lines don't
/// break the binding).  Shared with [`crate::analyze`] so the
/// interprocedural lints honour the same escape hatch.
pub(crate) fn collect_allows(file: &LexedFile) -> BTreeMap<u32, BTreeSet<LintId>> {
    let code_lines: BTreeSet<u32> = file.tokens.iter().map(|t| t.line).collect();
    let mut allows: BTreeMap<u32, BTreeSet<LintId>> = BTreeMap::new();
    for c in &file.comments {
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[start + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let target = if code_lines.contains(&c.line) {
            c.line
        } else {
            // Standalone: bind to the next line that carries code; fall
            // back to the adjacent line when the file ends in comments.
            code_lines
                .range(c.line + 1..)
                .next()
                .copied()
                .unwrap_or(c.line + 1)
        };
        for name in rest[..end].split(',') {
            if let Some(id) = LintId::from_name(name.trim()) {
                allows.entry(target).or_default().insert(id);
            }
        }
    }
    allows
}

/// A violation is suppressed when a directive targets its line.
fn is_allowed(allows: &BTreeMap<u32, BTreeSet<LintId>>, lint: LintId, line: u32) -> bool {
    allows.get(&line).is_some_and(|set| set.contains(&lint))
}

fn diag(path: &Path, t: &Token, lint: LintId, message: String) -> Diagnostic {
    Diagnostic {
        file: path.to_path_buf(),
        line: t.line,
        col: t.col,
        lint,
        message,
    }
}

/// True when token `i` is an identifier with the given text.
fn is_ident(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct(c))
}

// ---- L1: panic-path ------------------------------------------------------

/// Methods whose mere presence on a production path is a violation:
/// `.name(` panics instead of surfacing a typed error.  L7 reuses this
/// set to count reachable panic sites.
pub(crate) const L1_METHODS: &[(&str, &str)] = &[
    (
        "unwrap",
        "use `?`, a typed error, or a handled match instead",
    ),
    (
        "expect",
        "use `?`, a typed error, or a handled match instead",
    ),
    ("unwrap_err", "use a handled match instead"),
    ("expect_err", "use a handled match instead"),
    (
        "unwrap_unchecked",
        "unchecked unwrap hides the panic as UB; use a typed error",
    ),
    (
        "into_f64",
        "panicking payload converter; use `try_into_f64` and propagate the ClusterError",
    ),
    (
        "into_u64",
        "panicking payload converter; use `try_into_u64` and propagate the ClusterError",
    ),
];

/// Macros that abort the process on a reachable path (shared with L7).
pub(crate) const L1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn l1_panic_path(path: &Path, file: &LexedFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test_code(t) {
            continue;
        }
        // `.method(` — require the receiver dot so `fn expect(` defs and
        // plain idents stay clean.
        if i > 0 && is_punct(toks, i - 1, '.') && is_punct(toks, i + 1, '(') {
            if let Some((_, hint)) = L1_METHODS.iter().find(|(m, _)| *m == t.text) {
                out.push(diag(
                    path,
                    t,
                    LintId::PanicPath,
                    format!("`.{}()` can panic on a production path; {}", t.text, hint),
                ));
            }
        }
        // `macro!(` — panic-family macros.
        if is_punct(toks, i + 1, '!') && L1_MACROS.contains(&t.text.as_str()) {
            out.push(diag(
                path,
                t,
                LintId::PanicPath,
                format!(
                    "`{}!` aborts on a reachable path; return a typed error instead",
                    t.text
                ),
            ));
        }
    }
}

// ---- L2: determinism -----------------------------------------------------

const L2_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap on the bit-identical path",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet on the bit-identical path",
    ),
    (
        "RandomState",
        "randomized hasher breaks replayability; use a BTree container",
    ),
    (
        "DefaultHasher",
        "hasher seeding is process-local; use a seeded/stable hash",
    ),
    (
        "SystemTime",
        "wall-clock reads are nondeterministic; thread a logical timestamp instead",
    ),
    (
        "Instant",
        "monotonic-clock reads are nondeterministic; keep them off factor math",
    ),
    (
        "thread_rng",
        "OS-seeded RNG breaks replayability; use a seeded ChaCha RNG",
    ),
    (
        "from_entropy",
        "OS-seeded RNG breaks replayability; use a seeded ChaCha RNG",
    ),
];

/// Thread-creation entry points (`thread::<name>`) covered by the
/// confinement rule below.
const L2_THREAD_ENTRY: &[&str] = &["spawn", "Builder", "scope"];

/// Modules sanctioned to create threads: the worker pool owns the
/// intra-rank lanes and the cluster runtime owns the per-rank threads.
/// The exemption is per-rule — every other L2 check still applies there.
fn may_spawn_threads(path: &Path) -> bool {
    path.file_name()
        .is_some_and(|f| f == "pool.rs" || f == "runtime.rs")
}

fn l2_determinism(path: &Path, file: &LexedFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let may_spawn = may_spawn_threads(path);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test_code(t) {
            continue;
        }
        if let Some((_, hint)) = L2_IDENTS.iter().find(|(m, _)| *m == t.text) {
            out.push(diag(
                path,
                t,
                LintId::Determinism,
                format!("`{}` in a deterministic crate; {}", t.text, hint),
            ));
        }
        // Threading confinement: `thread::spawn` / `thread::Builder` /
        // `thread::scope` outside the sanctioned modules.  Ad-hoc threads
        // bypass the pool's chunk accounting and the runtime's rank
        // supervision, and recordings made on them are silently dropped
        // (`::` lexes as two `:` puncts).
        if !may_spawn
            && t.text == "thread"
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
            && toks.get(i + 3).is_some_and(|n| {
                n.kind == TokenKind::Ident && L2_THREAD_ENTRY.contains(&n.text.as_str())
            })
        {
            let entry = &toks[i + 3].text;
            out.push(diag(
                path,
                t,
                LintId::Determinism,
                format!(
                    "`thread::{entry}` outside pool.rs/runtime.rs; spawn through \
                     `ThreadPool` (or the cluster runtime) so chunk accounting \
                     and metric absorption stay intact"
                ),
            ));
        }
        // `rand::random` — the implicitly thread-seeded helper (`::`
        // lexes as two `:` puncts).
        if t.text == "random"
            && i >= 3
            && is_ident(toks, i - 3, "rand")
            && is_punct(toks, i - 2, ':')
            && is_punct(toks, i - 1, ':')
        {
            out.push(diag(
                path,
                t,
                LintId::Determinism,
                "`rand::random` is thread-seeded; use a seeded ChaCha RNG".to_string(),
            ));
        }
    }
}

// ---- L3: span taxonomy ---------------------------------------------------

const L3_CALLS: &[(&str, InstrumentKind)] = &[
    ("span", InstrumentKind::Span),
    ("span_with", InstrumentKind::Span),
    ("counter_add", InstrumentKind::Counter),
    ("counter_add_with", InstrumentKind::Counter),
    ("gauge_set", InstrumentKind::Gauge),
    ("gauge_set_with", InstrumentKind::Gauge),
    ("histogram_record", InstrumentKind::Histogram),
];

fn l3_span_taxonomy(path: &Path, file: &LexedFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test_code(t) {
            continue;
        }
        let Some(&(_, kind)) = L3_CALLS.iter().find(|(m, _)| *m == t.text) else {
            continue;
        };
        // `name("label"` or the `span!("label"` macro form.
        let lit_idx = if is_punct(toks, i + 1, '(') {
            i + 2
        } else if is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '(') {
            i + 3
        } else {
            continue;
        };
        let Some(lit) = toks.get(lit_idx) else {
            continue;
        };
        if lit.kind != TokenKind::Str {
            continue; // dynamic name: out of scope for the static table
        }
        if !taxonomy::is_registered(kind, &lit.text) {
            let family = kind.table();
            let suggestion = closest_label(&lit.text, family)
                .map(|s| format!("; did you mean \"{s}\"?"))
                .unwrap_or_default();
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: lit.line,
                col: lit.col,
                lint: LintId::SpanTaxonomy,
                message: format!(
                    "\"{}\" is not a registered {:?} label (see dismastd_obs::taxonomy){}",
                    lit.text, kind, suggestion
                ),
            });
        }
    }
}

/// Cheap nearest-neighbour over the registry for "did you mean" hints:
/// smallest edit distance, accepted when within 3 edits.
fn closest_label(name: &str, table: &[&'static str]) -> Option<&'static str> {
    table
        .iter()
        .map(|cand| (edit_distance(name, cand), *cand))
        .min()
        .filter(|(d, _)| *d <= 3)
        .map(|(_, c)| c)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

// ---- L4: error hygiene ---------------------------------------------------

fn l4_error_hygiene(path: &Path, file: &LexedFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || t.text != "Box" || file.in_test_code(t) {
            continue;
        }
        if !(is_punct(toks, i + 1, '<') && is_ident(toks, i + 2, "dyn")) {
            continue;
        }
        // Scan the generic argument to its matching `>`, looking for a
        // trait name ending in `Error`.
        let mut depth = 0isize;
        let mut j = i + 1;
        let mut names_error = false;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident if toks[j].text.ends_with("Error") => names_error = true,
                TokenKind::Punct(';') | TokenKind::Punct('{') => break,
                _ => {}
            }
            j += 1;
        }
        if names_error {
            out.push(diag(
                path,
                t,
                LintId::ErrorHygiene,
                "`Box<dyn …Error>` erases the typed error surface; return \
                 ClusterError / TensorError (or a crate error enum) instead"
                    .to_string(),
            ));
        }
    }
}

// ---- L5: clock hygiene ---------------------------------------------------

/// `Qualifier::method(` call patterns that read or burn real time.
/// Everywhere in scope, such calls must route through the
/// `dismastd_cluster::clock::Clock` abstraction so simulated runs stay
/// on virtual time; `clock.rs` itself is the one sanctioned home.
const L5_CALLS: &[(&str, &str, &str)] = &[
    (
        "thread",
        "sleep",
        "route delays through `Clock::sleep` so simulation can virtualise them",
    ),
    (
        "Instant",
        "now",
        "route time reads through `Clock::now_ns` so simulation can virtualise them",
    ),
    (
        "SystemTime",
        "now",
        "route time reads through `Clock::now_ns` so simulation can virtualise them",
    ),
];

fn l5_clock_hygiene(path: &Path, file: &LexedFile, out: &mut Vec<Diagnostic>) {
    // The clock module IS the real/virtual time boundary; it alone may
    // touch the OS clock.
    if path.file_name().is_some_and(|f| f == "clock.rs") {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test_code(t) {
            continue;
        }
        // `Qualifier :: method (` — `::` lexes as two `:` puncts.
        for &(qualifier, method, hint) in L5_CALLS {
            if t.text == qualifier
                && is_punct(toks, i + 1, ':')
                && is_punct(toks, i + 2, ':')
                && is_ident(toks, i + 3, method)
                && is_punct(toks, i + 4, '(')
            {
                out.push(diag(
                    path,
                    t,
                    LintId::ClockHygiene,
                    format!("`{qualifier}::{method}()` bypasses the clock abstraction; {hint}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, scope: LintScope) -> Vec<Diagnostic> {
        lint_source(Path::new("mem.rs"), src, scope)
    }

    #[test]
    fn l1_flags_unwrap_but_not_doc_comments_or_tests() {
        let src = "\
/// Example: `x.unwrap()` is fine in docs.
fn prod(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod t { fn f(x: Option<u32>) { x.unwrap(); } }
";
        let d = run(
            src,
            LintScope {
                panic_path: true,
                ..Default::default()
            },
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].lint, LintId::PanicPath);
    }

    #[test]
    fn l1_allow_directive_suppresses() {
        let src = "\
fn prod(x: Option<u32>) -> u32 {
    // lint:allow(panic_path): invariant — caller checked is_some
    x.unwrap()
}
fn prod2(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(panic_path): ditto
fn prod3(x: Option<u32>) -> u32 { x.unwrap() }
";
        let d = run(
            src,
            LintScope {
                panic_path: true,
                ..Default::default()
            },
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn standalone_allow_binds_across_blank_and_comment_lines() {
        let src = "\
fn prod(x: Option<u32>) -> u32 {
    // lint:allow(panic_path): invariant — caller checked is_some

    // (the blank line and this comment must not break the binding)
    x.unwrap()
}
";
        let d = run(
            src,
            LintScope {
                panic_path: true,
                ..Default::default()
            },
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn multi_lint_directive_covers_each_named_lint_only() {
        let src = "\
fn f() {
    let t = std::time::Instant::now(); // lint:allow(determinism, clock_hygiene): backstop
    let u = std::time::Instant::now(); // lint:allow(determinism): half-covered
    let _ = (t, u);
}
";
        let scope = LintScope {
            determinism: true,
            clock_hygiene: true,
            ..Default::default()
        };
        let d = run(src, scope);
        let got: Vec<(LintId, u32)> = d.iter().map(|d| (d.lint, d.line)).collect();
        assert_eq!(got, vec![(LintId::ClockHygiene, 3)], "{d:?}");
    }

    #[test]
    fn l2_flags_hash_containers_and_clocks() {
        let src = "\
use std::collections::HashMap;
fn now() -> std::time::SystemTime { std::time::SystemTime::now() }
";
        let d = run(
            src,
            LintScope {
                determinism: true,
                ..Default::default()
            },
        );
        let names: Vec<u32> = d.iter().map(|d| d.line).collect();
        assert!(names.contains(&1) && names.contains(&2), "{d:?}");
    }

    #[test]
    fn l3_flags_unregistered_label_with_suggestion() {
        let src = "fn f() { let _s = dismastd_obs::span(\"phase/solv\"); }";
        let d = run(
            src,
            LintScope {
                span_taxonomy: true,
                ..Default::default()
            },
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("phase/solve"), "{}", d[0].message);
    }

    #[test]
    fn l3_accepts_registered_labels_and_macro_form() {
        let src = "\
fn f() {
    let _a = dismastd_obs::span(\"phase/mttkrp\");
    let _b = dismastd_obs::span!(\"kernel/plan_build\");
    dismastd_obs::counter_add(\"plan/rebuild\", 1);
}
";
        let d = run(
            src,
            LintScope {
                span_taxonomy: true,
                ..Default::default()
            },
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l5_flags_raw_clock_calls_but_exempts_the_clock_module() {
        let src = "\
use std::time::Duration;
pub fn nap() { std::thread::sleep(Duration::from_millis(5)); }
pub fn stamp() -> u64 { let t = std::time::Instant::now(); t.elapsed().as_nanos() as u64 }
pub fn sleepless(clock: &dyn Clock) { clock.sleep(0, Duration::from_millis(5)); }
";
        let scope = LintScope {
            clock_hygiene: true,
            ..Default::default()
        };
        let d = run(src, scope);
        let got: Vec<(LintId, u32)> = d.iter().map(|d| (d.lint, d.line)).collect();
        assert_eq!(
            got,
            vec![(LintId::ClockHygiene, 2), (LintId::ClockHygiene, 3)],
            "{d:?}"
        );
        // The clock module is the sanctioned boundary and lints clean.
        let exempt = lint_source(Path::new("clock.rs"), src, scope);
        assert!(exempt.is_empty(), "{exempt:?}");
    }

    #[test]
    fn l4_flags_box_dyn_error_but_not_box_dyn_any() {
        let src = "\
pub fn bad() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
pub fn fine(p: Box<dyn std::any::Any + Send>) { let _ = p; }
";
        let d = run(
            src,
            LintScope {
                error_hygiene: true,
                ..Default::default()
            },
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }
}

//! Workspace discovery and the per-crate lint scoping table.
//!
//! Scoping rationale (see DESIGN.md "Static analysis & determinism
//! audit"):
//!
//! - **L1 panic-path** covers every production crate — the solve,
//!   ingest, comm, observability, bench, and example surfaces.  The old
//!   grep audit hand-listed sixteen files; this table covers whole
//!   source trees, so a new file is audited the moment it exists.
//! - **L2 determinism** covers the crates that feed the bit-identical
//!   serial-vs-distributed factor path: `tensor`, `partition`, `core`,
//!   `cluster`.  `data`, `obs`, and `bench` may use wall clocks and
//!   hash containers freely.
//! - **L3 span-taxonomy** covers every crate that emits metrics.
//! - **L4 error-hygiene** covers the crates whose public APIs promise
//!   typed errors: `cluster`, `core`, `tensor`.
//! - **L5 clock-hygiene** rides with the full scope (`tensor`, `core`,
//!   `cluster`): raw `Instant::now` / `SystemTime::now` /
//!   `thread::sleep` calls must route through the `Clock` abstraction
//!   so the deterministic simulator can virtualise time;
//!   `cluster/src/clock.rs` is the one sanctioned home.
//!
//! The integration-test crate (`tests/`) and `vendor/` are deliberately
//! out of scope: the former is all test code, the latter is third-party
//! stand-ins.

use crate::analyze::{self, Analysis, AnalyzeConfig};
use crate::lints::{lint_source, Diagnostic, LintScope};
use std::path::{Path, PathBuf};

/// One lint target: a directory tree and the lints that apply to it.
pub struct ScopedDir {
    pub dir: &'static str,
    pub scope: LintScope,
}

/// The scoping table, workspace-root-relative.
pub fn scoped_dirs() -> Vec<ScopedDir> {
    let l1 = LintScope {
        panic_path: true,
        span_taxonomy: true,
        ..Default::default()
    };
    let det = LintScope {
        panic_path: true,
        determinism: true,
        span_taxonomy: true,
        ..Default::default()
    };
    let full = LintScope::ALL;
    vec![
        ScopedDir {
            dir: "crates/tensor/src",
            scope: full,
        },
        ScopedDir {
            dir: "crates/partition/src",
            scope: det,
        },
        ScopedDir {
            dir: "crates/core/src",
            scope: full,
        },
        ScopedDir {
            dir: "crates/cluster/src",
            scope: full,
        },
        ScopedDir {
            dir: "crates/data/src",
            scope: l1,
        },
        ScopedDir {
            dir: "crates/obs/src",
            scope: l1,
        },
        ScopedDir {
            dir: "crates/bench/src",
            scope: l1,
        },
        // Criterion harnesses are test-adjacent: they run offline on
        // compile-time-constant inputs and panic-at-setup is their
        // designed failure mode, so only the taxonomy lint applies.
        ScopedDir {
            dir: "crates/bench/benches",
            scope: LintScope {
                span_taxonomy: true,
                ..Default::default()
            },
        },
        ScopedDir {
            dir: "examples",
            scope: l1,
        },
    ]
}

/// Locates the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All `.rs` files under `dir`, recursively, in sorted order (stable
/// diagnostics across runs and machines).
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Directories indexed into the interprocedural call graph (L6–L8).
/// Everything the distributed solve path can reach is here; bench,
/// examples, and the xtask itself are not part of that graph.
pub fn analyzed_dirs() -> Vec<&'static str> {
    vec![
        "crates/tensor/src",
        "crates/partition/src",
        "crates/core/src",
        "crates/cluster/src",
        "crates/data/src",
        "crates/obs/src",
    ]
}

/// Workspace-root-relative location of the L7 panic budget.
pub const BUDGET_PATH: &str = "crates/xtask/panic_budget.txt";

/// Reads every analyzed source file as `(root-relative path, source)`.
pub fn analyzed_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    for dir in analyzed_dirs() {
        let dir = root.join(dir);
        if !dir.exists() {
            continue;
        }
        for path in rust_files(&dir) {
            let src = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push((rel, src));
        }
    }
    Ok(files)
}

/// Runs the interprocedural audits (L6/L8 findings + the L7 surface
/// checked against the on-disk budget).  Budget mismatches are appended
/// to `Analysis::diags`; a missing budget file reads as empty, so every
/// entry reports as unbudgeted until `--write-budget` creates it.
pub fn analyze_workspace(root: &Path) -> std::io::Result<(Analysis, usize)> {
    let files = analyzed_files(root)?;
    let count = files.len();
    let mut analysis = analyze_files(&files);
    let on_disk = std::fs::read_to_string(root.join(BUDGET_PATH)).unwrap_or_default();
    let mut budget_diags =
        analyze::compare_budget(&analysis.budget, &on_disk, Path::new(BUDGET_PATH));
    analysis.diags.append(&mut budget_diags);
    Ok((analysis, count))
}

/// The pure-file entry used by both [`analyze_workspace`] and the
/// fixture tests: workspace configuration, no budget comparison.
pub fn analyze_files(files: &[(PathBuf, String)]) -> Analysis {
    analyze::analyze_files(files, &AnalyzeConfig::workspace())
}

/// Lints the whole workspace rooted at `root`.  Returns the diagnostics
/// and the number of files examined.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut diags = Vec::new();
    let mut files = 0usize;
    for scoped in scoped_dirs() {
        let dir = root.join(scoped.dir);
        if !dir.exists() {
            continue;
        }
        for path in rust_files(&dir) {
            let src = std::fs::read_to_string(&path)?;
            files += 1;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            diags.extend(lint_source(&rel, &src, scoped.scope));
        }
    }
    Ok((diags, files))
}

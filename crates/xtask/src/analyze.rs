//! The interprocedural lints (L6–L8) over [`crate::graph::CallGraph`],
//! plus the panic-budget workflow.
//!
//! | lint | name                | invariant |
//! |------|---------------------|-----------|
//! | L6   | `collective_order`  | no collective call reachable from `worker_body` sits under a rank-conditioned branch |
//! | L7   | `panic_reachability`| the transitive panic surface of every public API matches the checked-in budget |
//! | L8   | `alloc_hygiene`     | nothing reachable from the steady-state entry points calls an allocating constructor/method |
//!
//! Every diagnostic carries one full call chain (`file:line:col` per
//! hop) from an entry point to the offending site, so a violation three
//! calls deep reads like a stack trace.  See DESIGN.md §12 for the
//! resolution model and its limits.

use crate::graph::{CallGraph, CallKind, CallSite, FnDef};
use crate::lexer;
use crate::lints::{self, Diagnostic, LintId};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// The collective/barrier primitives (and their posted halves): a call
/// site with one of these names is a collective site wherever it
/// appears; a function containing one *performs* collectives.
pub const COLLECTIVES: &[&str] = &[
    "barrier",
    "try_barrier",
    "exchange",
    "try_exchange",
    "post_exchange",
    "post_exchange_framed",
    "post_exchange_framed_drain",
    "complete_exchange",
    "complete_exchange_into",
    "broadcast",
    "try_broadcast",
    "gather",
    "try_gather",
    "allreduce_sum",
    "try_allreduce_sum",
    "try_allreduce_sum_with",
    "allreduce_sum_scalar",
    "try_allreduce_sum_scalar",
    "allreduce_max_scalar",
    "try_allreduce_max_scalar",
];

/// Allocating methods (`.name(` receiver syntax) denied on the
/// steady-state graph.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `Type::fn(` constructor forms denied on the steady-state graph.
const ALLOC_QUAL_TYPES: &[&str] = &[
    "Vec", "String", "Box", "Arc", "Rc", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];
const ALLOC_QUAL_FNS: &[&str] = &["new", "with_capacity", "from", "from_elem"];

/// What to analyze: entry points, sanctioned boundaries, and the public
/// surface under budget.  [`AnalyzeConfig::workspace`] is the real
/// configuration; fixtures construct their own.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Function names rooting the collective-order audit (L6).
    pub l6_entries: Vec<String>,
    /// File *names* housing the collective implementations; their
    /// internals legitimately branch on `self.rank` (root vs leaf roles)
    /// and are not re-audited (L6).
    pub l6_exempt_files: Vec<String>,
    /// Path prefixes whose `pub fn`s carry panic-budget entries (L7).
    pub l7_pub_prefixes: Vec<String>,
    /// Function names rooting the steady-state allocation audit (L8);
    /// `Qual::name` restricts to one impl.
    pub l8_entries: Vec<String>,
    /// Path prefixes L8 does not descend into: observability is
    /// sanctioned (near-zero when disabled, bounded when on) and the
    /// simulator virtualises the transport outside production.
    pub l8_skip_prefixes: Vec<String>,
    /// Functions (`Qual::name` or `name`) L8 treats as graph leaves.
    /// This trims the name-based method over-approximation: e.g. a
    /// `pool.run(…)` method call also resolves to `Cluster::run`, which
    /// would drag the whole one-shot cluster bootstrap into the
    /// steady-state graph.
    pub l8_stop_fns: Vec<String>,
    /// Direct crate-dependency edges (`crate -> deps`) installed as the
    /// graph's layering filter: a name match that would require a call
    /// edge the crate DAG forbids is dropped.  Mirrors the `[dependencies]`
    /// sections of the workspace manifests; keep in sync when crates
    /// gain or lose dependencies.
    pub crate_deps: Vec<(String, Vec<String>)>,
}

impl AnalyzeConfig {
    /// The workspace configuration: `worker_body` roots the collective
    /// audit, the steady-state MTTKRP/gram/exchange kernels root the
    /// allocation audit, and the typed-error crates carry the budget.
    pub fn workspace() -> Self {
        let own = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        AnalyzeConfig {
            l6_entries: own(&["worker_body"]),
            l6_exempt_files: own(&["runtime.rs"]),
            l7_pub_prefixes: own(&["crates/tensor/src", "crates/core/src", "crates/cluster/src"]),
            l8_entries: own(&[
                "mttkrp_into",
                "local_gram_partials",
                "allreduce_grams",
                "encode_outgoing",
                "complete_refresh",
                "post_exchange_framed_drain",
                "complete_exchange_into",
                "try_allreduce_sum_with",
            ]),
            l8_skip_prefixes: own(&["crates/obs/src", "crates/cluster/src/sim.rs"]),
            // Name-collision pruning: method calls resolve by name, so a
            // handful of common names drag unrelated (and allocating)
            // one-shot or builder code into the steady-state graph.
            l8_stop_fns: own(&[
                // `.run(…)` on a ThreadPool also resolves to the one-shot
                // Cluster bootstrap; setup allocations are not steady state.
                "Cluster::run",
                // `Vec::push` on kernel scratch also resolves to the
                // ingest-time COO builder.
                "SparseTensorBuilder::push",
                // `.shape()` accessors also resolve to the KruskalTensor
                // accessor, which collects a fresh Vec for callers.
                "KruskalTensor::shape",
                // `slice::get` on plan metadata also resolves to the
                // random-access COO probe (test/debug surface).
                "SparseTensor::get",
                // Raw-pointer `.add(…)` arithmetic in the unsafe kernels
                // also resolves to elementwise `Matrix::add`.
                "Matrix::add",
            ]),
            crate_deps: vec![
                ("obs".to_string(), vec![]),
                ("tensor".to_string(), vec!["obs".to_string()]),
                (
                    "partition".to_string(),
                    vec!["tensor".to_string(), "obs".to_string()],
                ),
                ("data".to_string(), vec!["tensor".to_string()]),
                ("cluster".to_string(), vec!["obs".to_string()]),
                (
                    "core".to_string(),
                    vec![
                        "tensor".to_string(),
                        "partition".to_string(),
                        "cluster".to_string(),
                        "obs".to_string(),
                    ],
                ),
            ],
        }
    }
}

/// One `pub fn` whose transitive panic surface is non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetEntry {
    pub file: PathBuf,
    /// `Qual::name` display form.
    pub name: String,
    /// Distinct reachable panic sites (own body included).
    pub count: usize,
    /// Definition site, for anchoring mismatch diagnostics.
    pub line: u32,
    pub col: u32,
}

/// Result of one analysis pass: L6/L8 findings (allow-filtered) and the
/// freshly computed L7 surface, to be compared against the on-disk
/// budget by [`compare_budget`].
#[derive(Debug, Default)]
pub struct Analysis {
    pub diags: Vec<Diagnostic>,
    pub budget: Vec<BudgetEntry>,
    pub fn_count: usize,
}

/// Runs L6–L8 over the given `(workspace-relative path, source)` set.
pub fn analyze_files(files: &[(PathBuf, String)], cfg: &AnalyzeConfig) -> Analysis {
    let mut graph = CallGraph::build(files);
    graph.set_crate_deps(&cfg.crate_deps);
    let graph = graph;
    // `lint:allow` directives, per file, from a second lex (cheap, and
    // keeps the graph builder comment-free).
    let mut allows: BTreeMap<&Path, BTreeMap<u32, BTreeSet<LintId>>> = BTreeMap::new();
    for (path, src) in files {
        allows.insert(path.as_path(), lints::collect_allows(&lexer::lex(src)));
    }
    let allowed = |lint: LintId, file: &Path, line: u32| {
        allows
            .get(file)
            .and_then(|m| m.get(&line))
            .is_some_and(|set| set.contains(&lint))
    };

    let mut diags = Vec::new();
    l6_collective_order(&graph, cfg, &allowed, &mut diags);
    l8_alloc_hygiene(&graph, cfg, &allowed, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    Analysis {
        diags,
        budget: l7_panic_surface(&graph, cfg),
        fn_count: graph.fns.len(),
    }
}

fn file_name_in(def: &FnDef, names: &[String]) -> bool {
    def.file
        .file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| names.iter().any(|n| n == f))
}

fn path_has_prefix(def: &FnDef, prefixes: &[String]) -> bool {
    let p = def.file.to_string_lossy().replace('\\', "/");
    prefixes.iter().any(|pre| p.starts_with(pre.as_str()))
}

// ---- L6: collective order ------------------------------------------------

fn l6_collective_order(
    graph: &CallGraph,
    cfg: &AnalyzeConfig,
    allowed: &impl Fn(LintId, &Path, u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    // Fixpoint: a function performs collectives when it contains a
    // collective-named call site or calls something that does.
    let n = graph.fns.len();
    let mut performs = vec![false; n];
    for (i, f) in graph.fns.iter().enumerate() {
        if f.calls.iter().any(is_collective_site) {
            performs[i] = true;
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if performs[i] {
                continue;
            }
            let transitively = graph.fns[i]
                .calls
                .iter()
                .any(|c| graph.resolve(i, c).iter().any(|&t| performs[t]));
            if transitively {
                performs[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let roots: Vec<usize> = cfg
        .l6_entries
        .iter()
        .flat_map(|e| find_entry(graph, e))
        .collect();
    let parents = graph.reach(&roots, |def| !file_name_in(def, &cfg.l6_exempt_files));
    for &i in parents.keys() {
        let def = &graph.fns[i];
        if file_name_in(def, &cfg.l6_exempt_files) {
            continue;
        }
        for call in &def.calls {
            let Some(branch) = &call.rank_branch else {
                continue;
            };
            let verb = if is_collective_site(call) {
                "is a collective"
            } else if graph.resolve(i, call).iter().any(|&t| performs[t]) {
                "performs collectives"
            } else {
                continue;
            };
            if allowed(LintId::CollectiveOrder, &def.file, call.line) {
                continue;
            }
            out.push(Diagnostic {
                file: def.file.clone(),
                line: call.line,
                col: call.col,
                lint: LintId::CollectiveOrder,
                message: format!(
                    "`{}` {} under a rank-conditioned branch (`{}` at line {}); every rank \
                     must reach the same collective sequence — hoist the call or broadcast \
                     the decision [chain: {}]",
                    call.name,
                    verb,
                    branch.excerpt,
                    branch.line,
                    graph.chain(&parents, i)
                ),
            });
        }
    }
}

fn is_collective_site(call: &CallSite) -> bool {
    !matches!(call.kind, CallKind::Macro) && COLLECTIVES.contains(&call.name.as_str())
}

/// Entry spec: `name` or `Qual::name`.
fn find_entry(graph: &CallGraph, spec: &str) -> Vec<usize> {
    match spec.split_once("::") {
        Some((q, n)) => graph.find(Some(q), n),
        None => graph.find(None, spec),
    }
}

/// Whether a definition matches a `name` / `Qual::name` spec.
fn matches_spec(def: &FnDef, spec: &str) -> bool {
    match spec.split_once("::") {
        Some((q, n)) => def.qual.as_deref() == Some(q) && def.name == n,
        None => def.qual.is_none() && def.name == spec,
    }
}

// ---- L7: panic reachability ----------------------------------------------

fn l7_panic_surface(graph: &CallGraph, cfg: &AnalyzeConfig) -> Vec<BudgetEntry> {
    let mut entries = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.is_pub || !path_has_prefix(f, &cfg.l7_pub_prefixes) {
            continue;
        }
        let parents = graph.reach(&[i], |_| true);
        let mut sites: BTreeSet<(PathBuf, u32, u32)> = BTreeSet::new();
        for &j in parents.keys() {
            let def = &graph.fns[j];
            for call in &def.calls {
                if is_panic_site(call) {
                    sites.insert((def.file.clone(), call.line, call.col));
                }
            }
        }
        if !sites.is_empty() {
            entries.push(BudgetEntry {
                file: f.file.clone(),
                name: f.display_name(),
                count: sites.len(),
                line: f.line,
                col: f.col,
            });
        }
    }
    entries.sort_by(|a, b| (&a.file, &a.name, a.line).cmp(&(&b.file, &b.name, b.line)));
    entries.dedup_by(|a, b| a.file == b.file && a.name == b.name && a.count == b.count);
    entries
}

fn is_panic_site(call: &CallSite) -> bool {
    match call.kind {
        CallKind::Method => lints::L1_METHODS.iter().any(|(m, _)| *m == call.name),
        CallKind::Macro => lints::L1_MACROS.contains(&call.name.as_str()),
        _ => false,
    }
}

/// Renders the budget file for the given surface.
pub fn render_budget(entries: &[BudgetEntry]) -> String {
    let mut out = String::from(
        "# L7 panic-reachability budget: one line per public API whose transitive\n\
         # call graph reaches a panic site (`unwrap`/`expect`/panic macros/panicking\n\
         # converters — the L1 token set, `lint:allow`ed sites included).  A PR that\n\
         # grows a count, or adds an unbudgeted public API that reaches a panic,\n\
         # fails `xtask analyze`.  After review, refresh with:\n\
         #   cargo run -p dismastd-xtask -- analyze --write-budget\n\
         # format: <count> <file> <Qual::fn>\n",
    );
    for e in entries {
        out.push_str(&format!("{} {} {}\n", e.count, e.file.display(), e.name));
    }
    out
}

/// Compares the computed surface against the on-disk budget text,
/// emitting one diagnostic per mismatch.  `budget_path` anchors
/// stale-entry findings.
pub fn compare_budget(
    entries: &[BudgetEntry],
    on_disk: &str,
    budget_path: &Path,
) -> Vec<Diagnostic> {
    let refresh =
        "review, then refresh with `cargo run -p dismastd-xtask -- analyze --write-budget`";
    let mut budgeted: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for (lineno, line) in on_disk.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let (Some(count), Some(file), Some(name)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if let Ok(count) = count.parse::<usize>() {
            budgeted.insert(
                (file.to_string(), name.to_string()),
                (count, lineno as u32 + 1),
            );
        }
    }
    let mut diags = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for e in entries {
        let key = (e.file.display().to_string(), e.name.clone());
        seen.insert(key.clone());
        match budgeted.get(&key) {
            Some(&(count, _)) if count == e.count => {}
            Some(&(count, _)) => {
                let how = if e.count > count { "grew" } else { "shrank" };
                diags.push(Diagnostic {
                    file: e.file.clone(),
                    line: e.line,
                    col: e.col,
                    lint: LintId::PanicReachability,
                    message: format!(
                        "panic surface of `{}` {how}: {count} budgeted, {} reachable panic \
                         site(s); {refresh}",
                        e.name, e.count
                    ),
                });
            }
            None => {
                diags.push(Diagnostic {
                    file: e.file.clone(),
                    line: e.line,
                    col: e.col,
                    lint: LintId::PanicReachability,
                    message: format!(
                        "public `{}` reaches {} panic site(s) but has no budget entry; {refresh}",
                        e.name, e.count
                    ),
                });
            }
        }
    }
    for ((file, name), &(_, lineno)) in &budgeted {
        if !seen.contains(&(file.clone(), name.clone())) {
            diags.push(Diagnostic {
                file: budget_path.to_path_buf(),
                line: lineno,
                col: 1,
                lint: LintId::PanicReachability,
                message: format!(
                    "stale budget entry `{name}` ({file}): no matching public function \
                     reaches a panic site any more; {refresh}"
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

// ---- L8: hot-path allocation hygiene -------------------------------------

fn l8_alloc_hygiene(
    graph: &CallGraph,
    cfg: &AnalyzeConfig,
    allowed: &impl Fn(LintId, &Path, u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let roots: Vec<usize> = cfg
        .l8_entries
        .iter()
        .flat_map(|e| find_entry(graph, e))
        .collect();
    let stopped = |def: &FnDef| cfg.l8_stop_fns.iter().any(|s| matches_spec(def, s));
    let parents = graph.reach(&roots, |def| {
        !path_has_prefix(def, &cfg.l8_skip_prefixes) && !stopped(def)
    });
    for &i in parents.keys() {
        let def = &graph.fns[i];
        if path_has_prefix(def, &cfg.l8_skip_prefixes) || stopped(def) {
            continue;
        }
        for call in &def.calls {
            let Some(what) = alloc_site(call) else {
                continue;
            };
            if allowed(LintId::AllocHygiene, &def.file, call.line) {
                continue;
            }
            out.push(Diagnostic {
                file: def.file.clone(),
                line: call.line,
                col: call.col,
                lint: LintId::AllocHygiene,
                message: format!(
                    "{what} on the steady-state path; preallocate or pool instead, or carry \
                     a reasoned `lint:allow(alloc_hygiene)` [chain: {}]",
                    graph.chain(&parents, i)
                ),
            });
        }
    }
}

fn alloc_site(call: &CallSite) -> Option<String> {
    match &call.kind {
        CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
            Some(format!("`.{}()` allocates", call.name))
        }
        CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("`{}!` allocates", call.name))
        }
        CallKind::Qualified(q)
            if ALLOC_QUAL_TYPES.contains(&q.as_str())
                && ALLOC_QUAL_FNS.contains(&call.name.as_str()) =>
        {
            Some(format!("`{}::{}` allocates", q, call.name))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AnalyzeConfig {
        AnalyzeConfig {
            l6_entries: vec!["worker_body".into()],
            l6_exempt_files: vec!["runtime.rs".into()],
            l7_pub_prefixes: vec!["src".into()],
            l8_entries: vec!["hot".into()],
            l8_skip_prefixes: vec!["src/obs".into()],
            l8_stop_fns: vec![],
            crate_deps: vec![],
        }
    }

    fn run(src: &str) -> Analysis {
        analyze_files(&[(PathBuf::from("src/a.rs"), src.to_string())], &cfg())
    }

    #[test]
    fn l6_flags_rank_branched_collectives_and_transitive_helpers() {
        let a = run("\
fn worker_body(ctx: &mut Ctx, me: usize) {
    if me == 0 {
        ctx.try_barrier();
        helper(ctx);
    }
    ctx.try_barrier();
}
fn helper(ctx: &mut Ctx) { ctx.try_broadcast(0, None); }
");
        let lines: Vec<(LintId, u32)> = a.diags.iter().map(|d| (d.lint, d.line)).collect();
        assert_eq!(
            lines,
            vec![(LintId::CollectiveOrder, 3), (LintId::CollectiveOrder, 4)],
            "{:#?}",
            a.diags
        );
        assert!(a.diags[1].message.contains("performs collectives"));
        assert!(a.diags[0]
            .message
            .contains("chain: worker_body (src/a.rs:1:4)"));
    }

    #[test]
    fn l7_counts_distinct_reachable_panic_sites() {
        let a = run("\
pub fn api(x: Option<u32>) -> u32 {
    inner(x);
    x.unwrap()
}
fn inner(x: Option<u32>) { x.expect(\"set\"); }
");
        assert_eq!(a.budget.len(), 1);
        assert_eq!(a.budget[0].name, "api");
        assert_eq!(a.budget[0].count, 2);
        let clean = compare_budget(
            &a.budget,
            &render_budget(&a.budget),
            Path::new("budget.txt"),
        );
        assert!(clean.is_empty(), "{clean:#?}");
        let grown = compare_budget(&a.budget, "1 src/a.rs api\n", Path::new("budget.txt"));
        assert_eq!(grown.len(), 1);
        assert!(grown[0].message.contains("grew"), "{}", grown[0].message);
    }

    #[test]
    fn l8_flags_allocations_with_chain_and_honours_allow() {
        let a = run("\
fn hot(xs: &[f64]) {
    warm(xs);
}
fn warm(xs: &[f64]) {
    let _v = xs.to_vec();
    let _w = xs.to_vec(); // lint:allow(alloc_hygiene): measured, cold
    let _b = Vec::with_capacity(4);
}
");
        let lines: Vec<(LintId, u32)> = a.diags.iter().map(|d| (d.lint, d.line)).collect();
        assert_eq!(
            lines,
            vec![(LintId::AllocHygiene, 5), (LintId::AllocHygiene, 7)],
            "{:#?}",
            a.diags
        );
        assert!(a.diags[0]
            .message
            .contains("hot (src/a.rs:1:4) -> warm (called at src/a.rs:2:5)"));
    }
}

//! A small Rust lexer + structural pass, purpose-built for the lint
//! engine.
//!
//! The build environment vendors every dependency, so `syn` is not
//! available; instead this module tokenizes Rust source precisely enough
//! for the project lints: comments (line, doc, nested block) are
//! separated from code, string/char/lifetime ambiguities are resolved,
//! and a structural pass over the token stream marks the line ranges
//! belonging to `#[cfg(test)]` / `#[test]` items so lints only fire on
//! production code.
//!
//! This supersedes the old `sed '/#\[cfg(test)\]/q'` gate, which stopped
//! at the *first* test module and left any code after it unaudited; the
//! structural pass here tracks every test item individually, wherever it
//! sits in the file.

/// Kinds the lints care about; everything else is `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); the
    /// token's `text` holds the *inner* (raw, unescaped) contents.
    Str,
    /// Numeric or char literal.
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct(char),
}

/// One lexed token with its source position (1-based line/column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line or block), carrying the line it *starts* on; used
/// for `lint:allow(...)` escape-hatch directives.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexed file: code tokens, comments, and (after
/// [`mark_test_regions`]) the set of lines that belong to test items.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// `test_lines[i]` is true when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` / `#[test]` item (attribute line included).
    pub test_lines: Vec<bool>,
}

impl LexedFile {
    /// Whether the token at `idx` sits inside a test item.
    pub fn in_test_code(&self, token: &Token) -> bool {
        self.test_lines
            .get(token.line as usize - 1)
            .copied()
            .unwrap_or(false)
    }
}

/// Lexes `src` and marks test regions.  Never fails: unterminated
/// constructs consume to end-of-file, which is the useful behaviour for
/// a linter (rustc rejects such files anyway).
pub fn lex(src: &str) -> LexedFile {
    let mut lx = Lexer::new(src);
    lx.run();
    let line_count = src.lines().count().max(1);
    let mut file = LexedFile {
        tokens: lx.tokens,
        comments: lx.comments,
        test_lines: vec![false; line_count],
    };
    mark_test_regions(&mut file);
    file
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col, 0),
                'r' | 'b' | 'c' if self.string_prefix().is_some() => {
                    // r"…", r#"…"#, b"…", br#"…"#, c"…" — consume the
                    // prefix then the (possibly raw) string body.
                    let (prefix_len, hashes) = self.string_prefix().expect("checked");
                    if hashes == usize::MAX {
                        // Not actually a string start (e.g. ident `r` or
                        // `b` followed by something else) — fall through.
                        self.ident(line, col);
                    } else {
                        for _ in 0..prefix_len {
                            self.bump();
                        }
                        self.string(line, col, hashes);
                    }
                }
                '\'' => self.lifetime_or_char(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), c.to_string(), line, col);
                }
            }
        }
    }

    /// When positioned on `r`/`b`/`c`, decides whether a string literal
    /// starts here.  Returns `(chars_before_quote, raw_hash_count)`;
    /// `usize::MAX` hashes means "not a string".
    fn string_prefix(&self) -> Option<(usize, usize)> {
        let mut i = 0;
        // Optional byte/C prefix, optional raw marker, in either order
        // rustc accepts: b, r, br, rb(c not legal but harmless), c, cr.
        let mut saw_r = false;
        for _ in 0..2 {
            match self.peek(i) {
                Some('r') if !saw_r => {
                    saw_r = true;
                    i += 1;
                }
                Some('b') | Some('c') if i == 0 => {
                    i += 1;
                }
                _ => break,
            }
        }
        if i == 0 {
            return None;
        }
        let mut hashes = 0;
        if saw_r {
            while self.peek(i + hashes) == Some('#') {
                hashes += 1;
            }
        }
        if self.peek(i + hashes) == Some('"') {
            Some((i + hashes, if saw_r { hashes } else { 0 }))
        } else {
            Some((0, usize::MAX))
        }
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment { text, line });
    }

    /// Consumes a string body starting at the opening quote; `hashes` is
    /// the raw-string hash count (0 = escaped string).
    fn string(&mut self, line: u32, col: u32, hashes: usize) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if hashes == 0 && c == '\\' {
                // Escaped string: skip the escape pair verbatim.
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            if c == '"' {
                let mut matched = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Str, text, line, col);
    }

    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        // `'a` (lifetime) vs `'a'` (char) vs `'\n'` (escaped char).
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
        } else {
            // Char literal: consume to the closing quote, honouring
            // escapes.
            self.bump();
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(c);
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                    continue;
                }
                self.bump();
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            self.push(TokenKind::Literal, text, line, col);
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Raw identifier r#ident.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                && !text.contains('.')
            {
                // Fractional part — but never swallow `..` ranges.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line, col);
    }
}

/// Marks the line ranges of `#[cfg(test)]` / `#[test]` items in
/// `file.test_lines`.
///
/// An attribute is a test marker when it is `#[test]` or a `#[cfg(...)]`
/// whose predicate mentions `test` outside a `not(...)`
/// (`#[cfg_attr(test, ...)]` is *not* a marker: the item itself always
/// compiles).  The marked region runs from the attribute to the end of
/// the annotated item — its balanced `{ … }` block, or the terminating
/// `;` for block-less items.
fn mark_test_regions(file: &mut LexedFile) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Punct('#')
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('['))
        {
            let attr_start_line = toks[i].line;
            // Find the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let attr_tokens = &toks[i + 2..j.min(toks.len())];
            if is_test_marker(attr_tokens) {
                // Skip any further stacked attributes, then mark the item.
                let mut k = j + 1;
                while k < toks.len()
                    && toks[k].kind == TokenKind::Punct('#')
                    && toks.get(k + 1).map(|t| t.kind) == Some(TokenKind::Punct('['))
                {
                    let mut d = 0usize;
                    while k < toks.len() {
                        match toks[k].kind {
                            TokenKind::Punct('[') => d += 1,
                            TokenKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Scan to the item body: the first `{` opens it; a `;`
                // first means a block-less item.
                let mut end_line = attr_start_line;
                while k < toks.len() {
                    match toks[k].kind {
                        TokenKind::Punct(';') => {
                            end_line = toks[k].line;
                            break;
                        }
                        TokenKind::Punct('{') => {
                            let mut d = 0usize;
                            while k < toks.len() {
                                match toks[k].kind {
                                    TokenKind::Punct('{') => d += 1,
                                    TokenKind::Punct('}') => {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            end_line = toks.get(k).map(|t| t.line).unwrap_or(end_line);
                            break;
                        }
                        _ => k += 1,
                    }
                }
                for line in attr_start_line..=end_line {
                    if let Some(slot) = file.test_lines.get_mut(line as usize - 1) {
                        *slot = true;
                    }
                }
                i = j + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
}

/// Decides whether attribute contents (tokens between `#[` and `]`) mark
/// test-only code.
fn is_test_marker(attr: &[Token]) -> bool {
    let first = match attr.first() {
        Some(t) if t.kind == TokenKind::Ident => t.text.as_str(),
        _ => return false,
    };
    if first == "test" && attr.len() == 1 {
        return true;
    }
    if first != "cfg" {
        return false;
    }
    // Inside cfg(...): `test` counts unless it appears under not(...).
    let mut not_depth: isize = -1; // paren depth at which a not(...) opened
    let mut depth: isize = 0;
    for (idx, t) in attr.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if not_depth >= 0 && depth <= not_depth {
                    not_depth = -1;
                }
            }
            TokenKind::Ident
                if t.text == "not"
                    && attr.get(idx + 1).map(|n| n.kind) == Some(TokenKind::Punct('(')) =>
            {
                not_depth = depth;
            }
            TokenKind::Ident if t.text == "test" && not_depth < 0 => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_produce_code_tokens() {
        let f = lex(r##"
// a comment with .unwrap()
/* block .expect( */
let s = "str with .unwrap()";
let r = r#"raw "q" with .expect("#;
"##);
        assert!(f
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "expect"));
        assert_eq!(f.comments.len(), 2);
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "x"));
    }

    #[test]
    fn every_test_module_is_marked_not_just_the_first() {
        let src = "\
fn prod1() { }
#[cfg(test)]
mod t1 { fn a() {} }
fn prod2() { }
#[cfg(test)]
mod t2 { fn b() {} }
fn prod3() { }
";
        let f = lex(src);
        let marked: Vec<usize> = f
            .test_lines
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(marked, vec![2, 3, 5, 6]);
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_are_not_test_markers() {
        let src = "\
#[cfg(not(test))]
fn prod() { }
#[cfg_attr(test, allow(dead_code))]
fn also_prod() { }
#[cfg(any(test, feature = \"x\"))]
fn testish() { }
";
        let f = lex(src);
        assert!(!f.test_lines[0] && !f.test_lines[1], "cfg(not(test))");
        assert!(!f.test_lines[2] && !f.test_lines[3], "cfg_attr");
        assert!(f.test_lines[4] && f.test_lines[5], "cfg(any(test, ..))");
    }
}

//! # dismastd-xtask
//!
//! The workspace's static-analysis and audit driver:
//!
//! ```text
//! cargo run -p dismastd-xtask -- lint     # L1–L5 per-file invariant lints
//! cargo run -p dismastd-xtask -- analyze  # L6–L8 interprocedural audits
//! cargo run -p dismastd-xtask -- audit    # loom barrier model + TSan chaos run
//! ```
//!
//! The lints replace the old `sed`/`grep` gates in `scripts/check.sh`
//! with a token-level parse of every production crate:
//!
//! | lint | name                | invariant |
//! |------|---------------------|-----------|
//! | L1   | `panic_path`        | no `unwrap`/`expect`/panic-macros/panicking payload converters in production code |
//! | L2   | `determinism`       | no hash containers, wall clocks, or OS-seeded RNG in the bit-identical crates |
//! | L3   | `span_taxonomy`     | every obs label resolves in `dismastd_obs::taxonomy` |
//! | L4   | `error_hygiene`     | public fallible APIs return typed errors, not `Box<dyn Error>` |
//! | L5   | `clock_hygiene`     | raw OS-clock calls only inside the `Clock` abstraction |
//! | L6   | `collective_order`  | no collective reachable from `worker_body` under a rank-conditioned branch |
//! | L7   | `panic_reachability`| transitive panic surface of public APIs matches the checked-in budget |
//! | L8   | `alloc_hygiene`     | the steady-state MTTKRP/exchange/gram graph is allocation-free |
//!
//! L1–L5 are per-file token scans ([`lints`]); L6–L8 run over a
//! workspace-wide call graph ([`graph`], [`analyze`]) and attach a full
//! `file:line:col` call chain to every finding.
//!
//! Escape hatch: `// lint:allow(<name>): <reason>` on the violating
//! line, or standalone on the line above (attribute style).  L7 has no
//! allows — its escape hatch is the reviewed budget file.
//!
//! Both `lint` and `analyze` take `--json` (one JSON object per
//! diagnostic line) and `--github` (workflow annotations).

pub mod analyze;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod workspace;

pub use analyze::{analyze_files, Analysis, AnalyzeConfig, BudgetEntry};
pub use graph::CallGraph;
pub use lints::{lint_source, Diagnostic, LintId, LintScope};

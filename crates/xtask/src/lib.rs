//! # dismastd-xtask
//!
//! The workspace's static-analysis and audit driver:
//!
//! ```text
//! cargo run -p dismastd-xtask -- lint    # L1–L4 invariant lints
//! cargo run -p dismastd-xtask -- audit   # loom barrier model + TSan chaos run
//! ```
//!
//! The lints replace the old `sed`/`grep` gates in `scripts/check.sh`
//! with a token-level parse of every production crate:
//!
//! | lint | name            | invariant |
//! |------|-----------------|-----------|
//! | L1   | `panic_path`    | no `unwrap`/`expect`/panic-macros/panicking payload converters in production code |
//! | L2   | `determinism`   | no hash containers, wall clocks, or OS-seeded RNG in the bit-identical crates |
//! | L3   | `span_taxonomy` | every obs label resolves in `dismastd_obs::taxonomy` |
//! | L4   | `error_hygiene` | public fallible APIs return typed errors, not `Box<dyn Error>` |
//!
//! Escape hatch: `// lint:allow(<name>): <reason>` on the violating
//! line or the line directly above.

pub mod lexer;
pub mod lints;
pub mod workspace;

pub use lints::{lint_source, Diagnostic, LintId, LintScope};

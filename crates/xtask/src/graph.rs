//! Workspace symbol index and call graph over [`crate::lexer`] token
//! streams — the substrate of the interprocedural lints (L6–L8).
//!
//! With no `syn` in the offline build environment, functions and call
//! sites are recovered structurally from the token stream: a scope stack
//! tracks `impl`/`trait` blocks (providing the qualifier of method
//! definitions), function bodies (attributing call sites to their
//! enclosing function, closures included), and conditional blocks
//! (`if`/`else if`/`match`/`while`), whose condition tokens are kept so
//! the collective-order lint can ask "is this branch conditioned on
//! rank-local state?".
//!
//! ## Resolution model (documented approximation)
//!
//! Calls resolve **by name**, not by type:
//!
//! - `Qualifier::name(...)` with an uppercase qualifier resolves to
//!   definitions of `name` inside an `impl Qualifier`/`trait Qualifier`
//!   block (with `Self` rewritten to the caller's own qualifier); no
//!   match means the call is external (`Vec::new`, `String::from`, …).
//! - `module::name(...)` (lowercase qualifier) and bare `name(...)`
//!   calls resolve to free functions named `name` anywhere in the
//!   indexed set.
//! - `.name(...)` method calls resolve to **every** indexed method of
//!   that name, whatever the receiver type — a deliberate
//!   over-approximation: reachability may include methods the receiver
//!   can never dispatch to, which errs on the side of auditing too much.
//!   Trait-object and generic dispatch are covered by the same rule.
//! - Macro invocations are leaves (`vec!`, `format!` matter to L8 as
//!   allocation sites, not as edges).
//!
//! Test regions (`#[cfg(test)]` / `#[test]`, as marked by the lexer)
//! contribute neither definitions nor call sites, but their braces still
//! feed the scope tracker so surrounding items stay correctly nested.

use crate::lexer::{LexedFile, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(` — method syntax.
    Method,
    /// `Qual::name(` — the immediate qualifier segment is kept.
    Qualified(String),
    /// `name(` — a free-function (or tuple-struct) call.
    Bare,
    /// `name!(`, `name![`, `name!{` — macro invocation (a leaf edge).
    Macro,
}

/// The innermost enclosing conditional whose condition mentions
/// rank-local state (`me`, `rank`, `my_rank`).
#[derive(Debug, Clone)]
pub struct RankBranch {
    /// Line of the `if`/`match`/`while` keyword.
    pub line: u32,
    /// The condition, re-joined from its tokens (for diagnostics).
    pub excerpt: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub kind: CallKind,
    pub line: u32,
    pub col: u32,
    /// Set when the call sits under a rank-conditioned branch.
    pub rank_branch: Option<RankBranch>,
}

/// One function definition discovered in the indexed set.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl`/`trait` subject type, `None` for free functions.
    pub qual: Option<String>,
    pub file: PathBuf,
    /// Position of the function's *name* token.
    pub line: u32,
    pub col: u32,
    /// `pub` without a visibility restriction (`pub(crate)` etc. do not
    /// count as public API surface).
    pub is_pub: bool,
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// `Qual::name` or bare `name` — the display form used in
    /// diagnostics and the panic-budget file.
    pub fn display_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph: every indexed function plus name-based
/// resolution indices.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual_name: BTreeMap<(String, String), Vec<usize>>,
    /// Transitive crate-dependency closure: `caller crate -> crates it
    /// may call into`.  Empty = no layering filter (fixtures).
    crate_deps: BTreeMap<String, BTreeSet<String>>,
}

/// Crate key of a workspace-relative path (`crates/<name>/…`).
fn crate_of(path: &Path) -> Option<&str> {
    path.to_str()?.strip_prefix("crates/")?.split('/').next()
}

impl CallGraph {
    /// Builds the graph from `(path, source)` pairs.  Paths should be
    /// workspace-relative so diagnostics and budget entries are stable
    /// across machines.
    pub fn build<P: AsRef<Path>, S: AsRef<str>>(files: &[(P, S)]) -> CallGraph {
        let mut graph = CallGraph::default();
        for (path, src) in files {
            let lexed = crate::lexer::lex(src.as_ref());
            extract_fns(path.as_ref(), &lexed, &mut graph.fns);
        }
        for (i, f) in graph.fns.iter().enumerate() {
            graph.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(q) = &f.qual {
                graph
                    .by_qual_name
                    .entry((q.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        graph
    }

    /// Installs the crate-dependency layering filter from *direct*
    /// edges (`crate -> its dependencies`); the transitive closure is
    /// computed here.  With the filter set, [`CallGraph::resolve`]
    /// drops name matches that would require an edge the crate DAG
    /// forbids — e.g. a `.shape()` in `tensor` can never land on an
    /// impl in `core`, because `tensor` does not depend on `core`.
    pub fn set_crate_deps(&mut self, direct: &[(String, Vec<String>)]) {
        let mut closure: BTreeMap<String, BTreeSet<String>> = direct
            .iter()
            .map(|(c, deps)| (c.clone(), deps.iter().cloned().collect()))
            .collect();
        loop {
            let mut grew = false;
            let snapshot = closure.clone();
            for deps in closure.values_mut() {
                let extra: BTreeSet<String> = deps
                    .iter()
                    .filter_map(|d| snapshot.get(d))
                    .flatten()
                    .filter(|e| !deps.contains(*e))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    deps.extend(extra);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        self.crate_deps = closure;
    }

    /// Whether the layering filter permits `caller -> target`.  Files
    /// outside `crates/` are unconstrained.
    fn edge_allowed(&self, caller: usize, target: usize) -> bool {
        if self.crate_deps.is_empty() {
            return true;
        }
        let (Some(a), Some(b)) = (
            crate_of(&self.fns[caller].file),
            crate_of(&self.fns[target].file),
        ) else {
            return true;
        };
        a == b || self.crate_deps.get(a).is_some_and(|s| s.contains(b))
    }

    /// Indices of every definition named `name` (optionally restricted
    /// to a qualifier) — entry-point lookup for the lints.
    pub fn find(&self, qual: Option<&str>, name: &str) -> Vec<usize> {
        match qual {
            Some(q) => self
                .by_qual_name
                .get(&(q.to_string(), name.to_string()))
                .cloned()
                .unwrap_or_default(),
            None => self.by_name.get(name).cloned().unwrap_or_default(),
        }
    }

    /// Resolves one call site from `caller` to candidate definitions
    /// (empty for external calls and macros); see the module docs for
    /// the name-based approximation rules.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let mut out = self.resolve_unfiltered(caller, call);
        out.retain(|&t| self.edge_allowed(caller, t));
        out
    }

    fn resolve_unfiltered(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let candidates = |name: &str| self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[]);
        match &call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Method => candidates(&call.name)
                .iter()
                .copied()
                .filter(|&i| self.fns[i].qual.is_some())
                .collect(),
            CallKind::Bare => candidates(&call.name)
                .iter()
                .copied()
                .filter(|&i| self.fns[i].qual.is_none())
                .collect(),
            CallKind::Qualified(q) => {
                let q = if q == "Self" {
                    match &self.fns[caller].qual {
                        Some(own) => own.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    q.clone()
                };
                if q.chars().next().is_some_and(char::is_uppercase) {
                    self.by_qual_name
                        .get(&(q, call.name.clone()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    // `module::name` / `crate_name::name`: a free-fn path.
                    candidates(&call.name)
                        .iter()
                        .copied()
                        .filter(|&i| self.fns[i].qual.is_none())
                        .collect()
                }
            }
        }
    }

    /// Breadth-first reachability from `roots`.  `expand(def)` gates
    /// whether a definition's own call sites are traversed (lints use
    /// this to stop at sanctioned boundary modules).  Returns, for every
    /// reached definition, the edge it was first discovered through:
    /// `(caller index, call line, call col)` — `None` for roots — so
    /// diagnostics can print one full call chain per finding.
    pub fn reach(
        &self,
        roots: &[usize],
        mut expand: impl FnMut(&FnDef) -> bool,
    ) -> BTreeMap<usize, Option<(usize, u32, u32)>> {
        let mut seen: BTreeMap<usize, Option<(usize, u32, u32)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if seen.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            if !expand(&self.fns[i]) {
                continue;
            }
            // Clone the call list so resolution can borrow the graph.
            let calls = self.fns[i].calls.clone();
            for call in &calls {
                for target in self.resolve(i, call) {
                    if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(target) {
                        e.insert(Some((i, call.line, call.col)));
                        queue.push_back(target);
                    }
                }
            }
        }
        seen
    }

    /// Renders the discovery chain from a root to `def` as
    /// `root (file:line:col) -> … -> def (file:line:col)`, where every
    /// hop after the first shows the *call site* inside the previous
    /// function.  The definition's own name token anchors the first hop.
    pub fn chain(
        &self,
        parents: &BTreeMap<usize, Option<(usize, u32, u32)>>,
        def: usize,
    ) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = def;
        loop {
            match parents.get(&cur) {
                Some(Some((parent, line, col))) => {
                    let f = &self.fns[cur];
                    hops.push(format!(
                        "{} (called at {}:{}:{})",
                        f.display_name(),
                        self.fns[*parent].file.display(),
                        line,
                        col
                    ));
                    cur = *parent;
                }
                _ => {
                    let f = &self.fns[cur];
                    hops.push(format!(
                        "{} ({}:{}:{})",
                        f.display_name(),
                        f.file.display(),
                        f.line,
                        f.col
                    ));
                    break;
                }
            }
        }
        hops.reverse();
        hops.join(" -> ")
    }
}

/// Idents that can be followed by `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "in",
    "move", "ref", "mut", "as", "use", "where", "impl", "fn", "pub", "struct", "enum", "trait",
    "type", "mod", "const", "static", "unsafe", "async", "await", "dyn", "crate", "super", "self",
    "Self", "box", "yield",
];

/// Condition idents that mark a branch as rank-local: the per-worker
/// identity names used across the runtime and solver.
const RANK_IDENTS: &[&str] = &["me", "rank", "my_rank"];

/// What a `{` opened, for the scope stack.
#[derive(Debug, Clone)]
enum Scope {
    /// `impl Type { … }` / `trait Type { … }` — subject type name.
    Impl(String),
    /// A function body; the value restores `current_fn` on pop.
    Fn(Option<usize>),
    /// An `if`/`match`/`while` (or `else`) block.
    Branch {
        rank_local: bool,
        info: RankBranch,
    },
    Other,
}

/// A conditional header being scanned: everything between the keyword
/// and the block-opening `{` at parenthesis/bracket depth zero.
struct PendingBranch {
    line: u32,
    rank_local: bool,
    excerpt: String,
    depth: i32,
}

/// Extracts every function definition (with call sites and branch
/// context) from one lexed file into `out`.
fn extract_fns(path: &Path, file: &LexedFile, out: &mut Vec<FnDef>) {
    let toks = &file.tokens;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut current_fn: Option<usize> = None;
    // Pending headers, attached when their opening `{` arrives.
    let mut pending_impl: Option<String> = None;
    let mut pending_fn: Option<usize> = None;
    let mut pending_branch: Option<PendingBranch> = None;
    // Rank-locality inherited by an `else` / `else if` continuation.
    let mut else_inherits: Option<(bool, RankBranch)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        // Condition scan: accumulate until the block-opening `{`.
        if let Some(pb) = pending_branch.as_mut() {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => pb.depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => pb.depth -= 1,
                TokenKind::Punct('{') if pb.depth == 0 => {
                    let pb = pending_branch.take().expect("checked above");
                    let inherited = else_inherits.take().map(|(r, _)| r).unwrap_or(false);
                    scopes.push(Scope::Branch {
                        rank_local: pb.rank_local || inherited,
                        info: RankBranch {
                            line: pb.line,
                            excerpt: pb.excerpt.trim().to_string(),
                        },
                    });
                    i += 1;
                    continue;
                }
                TokenKind::Ident if RANK_IDENTS.contains(&t.text.as_str()) => {
                    pb.rank_local = true;
                }
                _ => {}
            }
            if pb.excerpt.len() < 60 {
                // Space only between word-like tokens, so `me == 0`
                // renders as `me==0`, not `me = = 0`.
                let wordy = !matches!(t.kind, TokenKind::Punct(_));
                if wordy
                    && pb
                        .excerpt
                        .ends_with(|c: char| c.is_alphanumeric() || c == '_' || c == '"')
                {
                    pb.excerpt.push(' ');
                }
                pb.excerpt.push_str(&t.text);
            }
            // Calls inside the condition still belong to the *enclosing*
            // branch context, so fall through to the call scan below.
        }

        match t.kind {
            TokenKind::Punct('{') => {
                if let Some(q) = pending_impl.take() {
                    scopes.push(Scope::Impl(q));
                } else if let Some(def) = pending_fn.take() {
                    scopes.push(Scope::Fn(current_fn));
                    current_fn = Some(def);
                } else if let Some((rank_local, info)) = else_inherits.take() {
                    // Bare `else { … }`: the arm is conditioned on the
                    // same state as the `if` it completes.
                    scopes.push(Scope::Branch { rank_local, info });
                } else {
                    scopes.push(Scope::Other);
                }
            }
            TokenKind::Punct('}') => {
                match scopes.pop() {
                    Some(Scope::Fn(prev)) => current_fn = prev,
                    // `} else` continues the same conditional.
                    Some(Scope::Branch { rank_local, info })
                        if is_ident_at(file, i + 1, "else") =>
                    {
                        else_inherits = Some((rank_local, info));
                    }
                    _ => {}
                }
            }
            TokenKind::Punct(';') => {
                // A signature without a body (trait method declaration).
                pending_fn = None;
            }
            TokenKind::Ident => {
                let in_test = file.in_test_code(t);
                match t.text.as_str() {
                    "impl" | "trait" => {
                        // Only item-position `impl`/`trait` opens a
                        // block: `impl Trait` in a signature (param or
                        // return position) has a pending fn, and inside
                        // a body it's a type, not an item.
                        if pending_branch.is_none() && pending_fn.is_none() && current_fn.is_none()
                        {
                            pending_impl = impl_subject(file, i);
                        }
                    }
                    "fn" => {
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokenKind::Ident && !in_test {
                                let qual = scopes.iter().rev().find_map(|s| match s {
                                    Scope::Impl(q) => Some(q.clone()),
                                    _ => None,
                                });
                                out.push(FnDef {
                                    name: name_tok.text.clone(),
                                    qual,
                                    file: path.to_path_buf(),
                                    line: name_tok.line,
                                    col: name_tok.col,
                                    is_pub: is_public_fn(file, i),
                                    calls: Vec::new(),
                                });
                                pending_fn = Some(out.len() - 1);
                            } else if name_tok.kind == TokenKind::Ident {
                                // Test-region fn: keep the scope stack
                                // honest without indexing it.
                                pending_fn = None;
                            }
                        }
                    }
                    "if" | "match" | "while" => {
                        if current_fn.is_some() && pending_branch.is_none() {
                            // `if let` / `while let` headers scan the same
                            // way; `else if` keeps `else_inherits` pending
                            // so the new branch ORs it in on push.
                            pending_branch = Some(PendingBranch {
                                line: t.line,
                                rank_local: false,
                                excerpt: String::new(),
                                depth: 0,
                            });
                        }
                    }
                    _ => {
                        if let (Some(def), false) = (current_fn, in_test) {
                            if let Some(call) = call_at(file, i) {
                                let rank_branch = scopes.iter().rev().find_map(|s| match s {
                                    Scope::Branch {
                                        rank_local: true,
                                        info,
                                    } => Some(info.clone()),
                                    _ => None,
                                });
                                out[def].calls.push(CallSite {
                                    rank_branch,
                                    ..call
                                });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn is_ident_at(file: &LexedFile, i: usize, text: &str) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn is_punct_at(file: &LexedFile, i: usize, c: char) -> bool {
    file.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct(c))
}

/// The subject type of an `impl`/`trait` header at token `i`: the last
/// path segment of the implemented-on type (after `for` when present),
/// scanning to the opening `{` with generic parameters skipped.
fn impl_subject(file: &LexedFile, i: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut j = i + 1;
    let mut subject: Option<String> = None;
    let mut after_for = false;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => {
                // `->` never appears in an impl header's type position;
                // a bare `>` always closes a generic list here.
                angle -= 1;
            }
            TokenKind::Punct('{') if angle <= 0 => break,
            TokenKind::Punct(';') => break,
            TokenKind::Ident if angle == 0 => {
                if t.text == "for" {
                    after_for = true;
                    subject = None;
                } else if t.text == "where" {
                    break;
                } else if after_for || subject.is_none() || is_punct_at(file, j - 1, ':') {
                    // First segment, or a later `::` path segment —
                    // keep the last one seen at angle depth 0.
                    subject = Some(t.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    subject
}

/// Whether the `fn` at token `i` is `pub` without a restriction.
/// Modifier idents (`const`, `unsafe`, `async`, `extern`) and ABI
/// strings may sit between `pub` and `fn`.
fn is_public_fn(file: &LexedFile, i: usize) -> bool {
    let toks = &file.tokens;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokenKind::Ident
                if matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern") =>
            {
                continue;
            }
            TokenKind::Str => continue, // extern "C"
            TokenKind::Ident if t.text == "pub" => {
                // `pub(crate)` / `pub(super)` / `pub(in …)` restrict
                // visibility: not public API surface.
                return !is_punct_at(file, j + 1, '(');
            }
            TokenKind::Punct(')') => {
                // Stepping back over `pub(crate)`'s restriction from the
                // right lands here; walk to its `(` and keep going.
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].kind {
                        TokenKind::Punct(')') => depth += 1,
                        TokenKind::Punct('(') => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            _ => return false,
        }
    }
    false
}

/// Classifies the ident at token `i` as a call site, if it is one.
fn call_at(file: &LexedFile, i: usize) -> Option<CallSite> {
    let toks = &file.tokens;
    let t = &toks[i];
    if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    // Macro invocation: `name!(` / `name![` / `name!{`.
    if is_punct_at(file, i + 1, '!')
        && toks.get(i + 2).is_some_and(|n| {
            matches!(
                n.kind,
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{')
            )
        })
    {
        return Some(CallSite {
            name: t.text.clone(),
            kind: CallKind::Macro,
            line: t.line,
            col: t.col,
            rank_branch: None,
        });
    }
    // Skip a turbofish (`::<…>`) between the name and the arguments.
    let mut j = i + 1;
    if is_punct_at(file, j, ':') && is_punct_at(file, j + 1, ':') && is_punct_at(file, j + 2, '<') {
        let mut angle = 0i32;
        j += 2;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') if !is_punct_at(file, j - 1, '-') => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    if !is_punct_at(file, j, '(') {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if i > 0 && is_ident_at(file, i - 1, "fn") {
        return None;
    }
    let kind = if i > 0 && is_punct_at(file, i - 1, '.') {
        CallKind::Method
    } else if i >= 3
        && is_punct_at(file, i - 1, ':')
        && is_punct_at(file, i - 2, ':')
        && toks.get(i - 3).is_some_and(|q| q.kind == TokenKind::Ident)
    {
        CallKind::Qualified(toks[i - 3].text.clone())
    } else {
        CallKind::Bare
    };
    Some(CallSite {
        name: t.text.clone(),
        kind,
        line: t.line,
        col: t.col,
        rank_branch: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        CallGraph::build(&[("g.rs", src)])
    }

    #[test]
    fn extracts_free_fns_methods_and_quals() {
        let g = graph_of(
            "\
pub fn free() { helper(); }
fn helper() {}
impl Widget {
    pub fn new() -> Self { Widget }
    fn spin(&self) { self.twirl(); Self::new(); }
    fn twirl(&self) {}
}
impl Display for Widget { fn fmt(&self) { write!(f, \"w\") } }
",
        );
        let names: Vec<String> = g.fns.iter().map(FnDef::display_name).collect();
        assert_eq!(
            names,
            vec![
                "free",
                "helper",
                "Widget::new",
                "Widget::spin",
                "Widget::twirl",
                "Widget::fmt"
            ]
        );
        assert!(g.fns[0].is_pub && !g.fns[1].is_pub);
        let spin = &g.fns[3];
        assert_eq!(spin.calls.len(), 2);
        assert_eq!(spin.calls[0].kind, CallKind::Method);
        // `Self::new()` resolves through the caller's own qualifier.
        let targets = g.resolve(3, &spin.calls[1]);
        assert_eq!(targets, vec![2]);
    }

    #[test]
    fn rank_branches_mark_calls_and_else_arms_inherit() {
        let g = graph_of(
            "\
fn body(me: usize) {
    if me == 0 {
        decide();
    } else {
        follow();
    }
    if ready {
        always();
    }
    match me { _ => arm() }
}
",
        );
        let calls = &g.fns[0].calls;
        assert!(calls[0].rank_branch.is_some(), "then-arm is rank-local");
        assert!(calls[1].rank_branch.is_some(), "else-arm inherits");
        assert!(calls[2].rank_branch.is_none(), "plain branch is fine");
        assert!(calls[3].rank_branch.is_some(), "match on rank state");
        assert!(calls[0]
            .rank_branch
            .as_ref()
            .is_some_and(|b| b.excerpt.contains("me")));
    }

    #[test]
    fn test_regions_contribute_no_defs_or_calls() {
        let g = graph_of(
            "\
fn prod() { go(); }
#[cfg(test)]
mod t {
    fn helper() { prod(); }
}
",
        );
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].calls.len(), 1);
    }

    #[test]
    fn reach_records_parent_edges_for_chains() {
        let g = graph_of(
            "\
fn a() { b(); }
fn b() { c(); }
fn c() {}
",
        );
        let parents = g.reach(&[0], |_| true);
        assert_eq!(parents.len(), 3);
        let chain = g.chain(&parents, 2);
        assert_eq!(
            chain,
            "a (g.rs:1:4) -> b (called at g.rs:1:10) -> c (called at g.rs:2:10)"
        );
    }

    #[test]
    fn turbofish_and_macros_are_recognised() {
        let g = graph_of("fn f() { let v = items.collect::<Vec<_>>(); let w = vec![0u8; 4]; }");
        let calls = &g.fns[0].calls;
        assert_eq!(calls[0].name, "collect");
        assert_eq!(calls[0].kind, CallKind::Method);
        assert_eq!(calls[1].name, "vec");
        assert_eq!(calls[1].kind, CallKind::Macro);
    }
}

//! Fixture-driven tests for the invariant lints.
//!
//! Each file under `tests/fixtures/` trips exactly one lint at known
//! lines (or none, for `clean.rs`); the assertions pin the `file:line`
//! diagnostics so a lint regression shows up as a test diff, not as a
//! silently narrower audit.  The final test lints the real workspace —
//! the tool's own dogfood gate.

use dismastd_xtask::{lint_source, LintId, LintScope};
use std::path::{Path, PathBuf};

fn fixture_diags(name: &str) -> Vec<dismastd_xtask::Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    lint_source(&PathBuf::from(name), &src, LintScope::ALL)
}

/// Asserts the diagnostics are exactly `(lint, line)` in order, and that
/// each renders with the `file:line:` prefix the CI log promises.
fn assert_exact(name: &str, expected: &[(LintId, u32)]) {
    let diags = fixture_diags(name);
    let got: Vec<(LintId, u32)> = diags.iter().map(|d| (d.lint, d.line)).collect();
    assert_eq!(
        got,
        expected,
        "{name} diagnostics:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    for d in &diags {
        let rendered = d.to_string();
        assert!(
            rendered.starts_with(&format!("{name}:{}:", d.line)),
            "diagnostic must lead with file:line, got {rendered}"
        );
        assert!(
            rendered.contains(&format!("{}({})", d.lint.code(), d.lint.name())),
            "diagnostic must name its lint, got {rendered}"
        );
    }
}

#[test]
fn l1_flags_unwrap_expect_and_panic_but_honours_allow_and_tests() {
    assert_exact(
        "l1_panic.rs",
        &[
            (LintId::PanicPath, 4),
            (LintId::PanicPath, 8),
            (LintId::PanicPath, 12),
        ],
    );
}

#[test]
fn l1_still_audits_code_after_an_inline_test_module() {
    // The sed-based audit stopped at the first `#[cfg(test)]`; both the
    // function before it and the one after must be flagged.
    assert_exact(
        "l1_after_test_module.rs",
        &[(LintId::PanicPath, 10), (LintId::PanicPath, 22)],
    );
}

#[test]
fn l2_flags_hash_containers_and_wall_clocks() {
    // Line 10's `SystemTime::now()` trips both the determinism lint (the
    // ident) and the clock-hygiene lint (the call) under the full scope.
    assert_exact(
        "l2_determinism.rs",
        &[
            (LintId::Determinism, 3),
            (LintId::Determinism, 10),
            (LintId::ClockHygiene, 10),
        ],
    );
}

#[test]
fn l2_confines_raw_thread_creation_to_the_sanctioned_modules() {
    // `thread::spawn`, `thread::Builder`, and `thread::scope` all trip the
    // confinement rule; the allow directive and test code stay clean, and
    // the HashMap lines prove the rest of L2 still fires in this file.
    assert_exact(
        "l2_threading.rs",
        &[
            (LintId::Determinism, 5),
            (LintId::Determinism, 9),
            (LintId::Determinism, 13),
            (LintId::Determinism, 21),
            (LintId::Determinism, 22),
        ],
    );
}

#[test]
fn l2_threading_exemption_is_per_rule_in_pool_and_runtime() {
    // Linting the same source as `pool.rs` / `runtime.rs` drops only the
    // thread-creation diagnostics — the HashMap violations must survive,
    // or the exemption would be a blanket L2 opt-out.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/l2_threading.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    for sanctioned in ["pool.rs", "runtime.rs"] {
        let diags = lint_source(&PathBuf::from(sanctioned), &src, LintScope::ALL);
        let got: Vec<(LintId, u32)> = diags.iter().map(|d| (d.lint, d.line)).collect();
        assert_eq!(
            got,
            vec![(LintId::Determinism, 21), (LintId::Determinism, 22)],
            "{sanctioned}: {diags:?}"
        );
    }
}

#[test]
fn l3_flags_unregistered_labels_with_a_suggestion() {
    assert_exact(
        "l3_taxonomy.rs",
        &[(LintId::SpanTaxonomy, 8), (LintId::SpanTaxonomy, 12)],
    );
    let diags = fixture_diags("l3_taxonomy.rs");
    assert!(
        diags[0].message.contains("phase/mttkrp"),
        "near-miss should suggest the registered label: {}",
        diags[0].message
    );
    assert!(
        diags[1].message.contains("plan/cache_hit"),
        "near-miss should suggest the registered label: {}",
        diags[1].message
    );
}

#[test]
fn l4_flags_leaked_box_dyn_error_only() {
    assert_exact("l4_boxdyn.rs", &[(LintId::ErrorHygiene, 5)]);
}

#[test]
fn l5_flags_raw_clock_calls_but_honours_allow_and_tests() {
    // Line 8's `Instant::now()` also trips L2 under the full scope —
    // pinned here so the cross-hit stays visible.
    assert_exact(
        "l5_clock.rs",
        &[
            (LintId::ClockHygiene, 4),
            (LintId::Determinism, 8),
            (LintId::ClockHygiene, 8),
        ],
    );
}

#[test]
fn allow_placements_trailing_and_standalone_both_bind_per_lint() {
    // Lines 7 (trailing) and 12 (under a standalone allow) are excused;
    // the unprotected control on line 16 still fires, and line 21's
    // multi-lint `SystemTime::now()` keeps its L2 finding because the
    // standalone allow names only `clock_hygiene`.
    assert_exact(
        "allow_placement.rs",
        &[(LintId::PanicPath, 16), (LintId::Determinism, 21)],
    );
}

#[test]
fn clean_fixture_is_clean_under_the_full_scope() {
    assert_exact("clean.rs", &[]);
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean_input() {
    let exe = env!("CARGO_BIN_EXE_dismastd-xtask");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");

    let bad = std::process::Command::new(exe)
        .args(["lint", "--files"])
        .arg(fixtures.join("l1_panic.rs"))
        .output()
        .expect("xtask runs");
    assert!(!bad.status.success(), "violations must fail the build");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("l1_panic.rs:4:") && stdout.contains("L1(panic_path)"),
        "diagnostics must carry file:line, got:\n{stdout}"
    );

    let clean = std::process::Command::new(exe)
        .args(["lint", "--files"])
        .arg(fixtures.join("clean.rs"))
        .output()
        .expect("xtask runs");
    assert!(
        clean.status.success(),
        "clean input must exit 0, stderr:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );
}

#[test]
fn the_workspace_itself_lints_clean() {
    let root = dismastd_xtask::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let (diags, files) = dismastd_xtask::workspace::lint_workspace(&root).expect("walk succeeds");
    assert!(
        files >= 40,
        "expected to scan the whole workspace, saw {files} files"
    );
    assert!(
        diags.is_empty(),
        "the workspace must lint clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

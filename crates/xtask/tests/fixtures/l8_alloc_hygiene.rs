//! L8 fixture: allocating calls one hop below the steady-state entry,
//! with both allow placements honoured and a pooled path staying clean.

fn hot(xs: &[f64], pool: &mut Pool) {
    stage(xs, pool);
}

fn stage(xs: &[f64], pool: &mut Pool) {
    let _method = xs.to_vec();
    let _qualified = Vec::with_capacity(4);
    let _macro_site = format!("{xs:?}");
    let _trailing = xs.to_vec(); // lint:allow(alloc_hygiene): pins the trailing form
    // lint:allow(alloc_hygiene): pins the standalone attribute-style form
    let _standalone = xs.to_vec();
    let recycled = pool.take();
    pool.put(recycled);
}

//! Clean fixture: no lint fires even under the full scope.

use std::collections::BTreeMap;

/// Per-key occurrence counts, deterministically ordered.
pub fn histogram(keys: &[u32]) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for &k in keys {
        *out.entry(k).or_insert(0) += 1;
    }
    out
}

/// A typed fallible API: no `Box<dyn Error>`, no panics.
pub fn checked_div(a: u64, b: u64) -> Result<u64, String> {
    if b == 0 {
        return Err("division by zero".into());
    }
    Ok(a / b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn counts() {
        assert_eq!(super::histogram(&[1, 1, 2]).len(), 2);
        assert_eq!(super::checked_div(6, 3).unwrap(), 2);
    }
}

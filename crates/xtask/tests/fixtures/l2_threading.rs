//! Fixture: L2 threading confinement — raw thread creation outside
//! `pool.rs` / `runtime.rs`, plus proof the exemption is per-rule.

pub fn bad_spawn() {
    std::thread::spawn(|| {}).join().ok();
}

pub fn bad_builder() {
    let _b = std::thread::Builder::new();
}

pub fn bad_scope() {
    std::thread::scope(|_s| {});
}

pub fn allowed() {
    // lint:allow(determinism): supervised one-off worker
    std::thread::spawn(|| {}).join().ok();
}

pub fn still_checked() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_may_spawn() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}

//! L3 fixture: instrument labels must come from the registered taxonomy.

pub fn registered_label() {
    dismastd_obs::span("phase/mttkrp", || ());
}

pub fn misspelled_span() {
    dismastd_obs::span("phase/mtkrp", || ());
}

pub fn misspelled_counter() {
    dismastd_obs::counter_add("plan/cache_hits", 1);
}

//! L7 fixture: one public API with a two-site transitive panic surface
//! (own `unwrap` plus the helper's `expect`) and one panic-free API.

pub fn risky(x: Option<u32>) -> u32 {
    helper(x);
    x.unwrap()
}

pub fn safe(x: u32) -> u32 {
    x + 1
}

fn helper(x: Option<u32>) {
    x.expect("set");
}

//! L4 fixture: `Box<dyn Error>` must not leak from typed public APIs.

use std::error::Error;

pub fn leaky() -> Result<(), Box<dyn Error>> {
    Ok(())
}

pub fn unrelated_trait_object(p: Box<dyn std::any::Any + Send>) -> usize {
    let _ = p;
    0
}

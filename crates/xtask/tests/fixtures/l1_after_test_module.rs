//! Regression fixture for the `sed '/#\[cfg(test)\]/q'` blind spot.
//!
//! The grep audit this tool replaced truncated every file at its first
//! inline `#[cfg(test)]` marker, so production code declared *after* a
//! test module was never audited.  The lexer marks only the balanced
//! braces of the test item itself, so `after_the_test_module` below is
//! in scope and must be flagged.

pub fn before(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn inside_tests_is_exempt() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}

pub fn after_the_test_module(v: Option<u32>) -> u32 {
    v.unwrap()
}

//! L2 fixture: nondeterminism sources in bit-reproducible crates.

use std::collections::HashMap;

pub fn deterministic() -> u64 {
    42
}

pub fn now_millis() -> u128 {
    let clock = std::time::SystemTime::now();
    clock
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

//! L5 fixture: raw OS-clock calls outside the clock module.

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos()
}

pub fn sanctioned() {
    // lint:allow(clock_hygiene): escape-hatch check for the fixture
    std::thread::sleep(std::time::Duration::from_millis(1));
}

#[cfg(test)]
mod t {
    pub fn tests_may_sleep_for_real() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

//! Clean under the interprocedural audits: the worker performs its
//! collective unconditionally and the hot kernel writes through
//! preallocated storage; no public function reaches a panic site.

fn worker_body(ctx: &mut Ctx, buf: &mut [f64]) {
    hot(buf);
    ctx.try_allreduce_sum(buf);
}

fn hot(buf: &mut [f64]) {
    for v in buf.iter_mut() {
        *v += 1.0;
    }
}

pub fn scale(buf: &mut [f64], s: f64) {
    for v in buf.iter_mut() {
        *v *= s;
    }
}

//! L1 fixture: panic paths in non-test code must be flagged.

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second(r: Result<u32, ()>) -> u32 {
    r.expect("boom")
}

pub fn third() {
    panic!("nope");
}

pub fn allowed(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic_path): fixture — deliberately acknowledged
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}

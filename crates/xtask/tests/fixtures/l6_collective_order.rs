//! L6 fixture: collectives reached under rank-conditioned branches.
//! `worker_body` roots the audit; `decide` is guilty transitively; the
//! final broadcast carries the sanctioned rank-0-decides allow.

fn worker_body(ctx: &mut Ctx, me: usize) {
    ctx.try_allreduce_sum(buf);
    if me == 0 {
        ctx.try_barrier();
        decide(ctx);
    }
    if me == 0 {
        // lint:allow(collective_order): rank 0 decides; every peer mirrors with a recv
        ctx.try_broadcast(0, payload);
    }
}

fn decide(ctx: &mut Ctx) {
    ctx.try_broadcast(0, None);
}

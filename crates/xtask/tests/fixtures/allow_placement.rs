//! Allow-placement fixture: the trailing and standalone `lint:allow`
//! forms, a guilty control proving the allows are not a blanket filter,
//! and a multi-lint line where allowing one lint must leave the other
//! live (allows are scoped per lint, not per line).

fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(panic_path): pins the trailing form
}

fn standalone(x: Option<u32>) -> u32 {
    // lint:allow(panic_path): pins the standalone attribute-style form
    x.unwrap()
}

fn unprotected(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn multi() {
    // lint:allow(clock_hygiene): pins per-lint scoping on a multi-lint line
    let _ = std::time::SystemTime::now();
}

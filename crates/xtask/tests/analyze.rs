//! Fixture-driven tests for the interprocedural audits (L6–L8).
//!
//! Each fixture under `tests/fixtures/` trips one audit at pinned
//! `file:line:col` positions with pinned call chains (or none, for the
//! clean fixture), so a graph regression shows up as a test diff, not a
//! silently narrower audit.  The final tests run the real workspace —
//! the dogfood gate — and pin the CLI's `--json`/`--github` renderings
//! that CI consumes.

use dismastd_xtask::{analyze, analyze_files, Analysis, AnalyzeConfig, LintId};
use std::path::{Path, PathBuf};

/// Fixture analogue of [`AnalyzeConfig::workspace`]: same entry names,
/// no workspace-specific exemptions, and the fixture dir as the L7
/// public surface.
fn fixture_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        l6_entries: vec!["worker_body".into()],
        l6_exempt_files: vec![],
        l7_pub_prefixes: vec!["fixtures".into()],
        l8_entries: vec!["hot".into()],
        l8_skip_prefixes: vec![],
        l8_stop_fns: vec![],
        crate_deps: vec![],
    }
}

fn analyze_fixture(name: &str) -> Analysis {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    // Workspace-relative style path, as the real driver passes them.
    analyze_files(
        &[(PathBuf::from("fixtures").join(name), src)],
        &fixture_cfg(),
    )
}

/// Asserts the findings are exactly `(lint, line, col)` in order.
fn assert_sites(a: &Analysis, name: &str, expected: &[(LintId, u32, u32)]) {
    let got: Vec<(LintId, u32, u32)> = a.diags.iter().map(|d| (d.lint, d.line, d.col)).collect();
    assert_eq!(
        got,
        expected,
        "{name} findings:\n{}",
        a.diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn l6_flags_branched_collectives_with_chains_and_honours_the_allow() {
    let a = analyze_fixture("l6_collective_order.rs");
    assert_sites(
        &a,
        "l6_collective_order.rs",
        &[
            (LintId::CollectiveOrder, 8, 13),
            (LintId::CollectiveOrder, 9, 9),
        ],
    );
    // Line 8 is the direct collective; line 9 is the transitive helper.
    // Line 13's broadcast is rank-0-decides and carries the allow.
    assert!(
        a.diags[0].message.contains("`try_barrier` is a collective")
            && a.diags[0].message.contains("`me==0` at line 7"),
        "direct finding must name the collective and the branch: {}",
        a.diags[0].message
    );
    assert!(
        a.diags[1].message.contains("`decide` performs collectives"),
        "transitive finding must name the helper: {}",
        a.diags[1].message
    );
    for d in &a.diags {
        assert!(
            d.message
                .contains("chain: worker_body (fixtures/l6_collective_order.rs:5:4)"),
            "finding must carry the entry-point chain: {}",
            d.message
        );
    }
}

#[test]
fn l7_budgets_the_transitive_panic_surface_of_public_fns() {
    let a = analyze_fixture("l7_panic_surface.rs");
    assert_sites(&a, "l7_panic_surface.rs", &[]);
    // `risky` reaches its own unwrap plus the helper's expect; `safe`
    // and the private helper carry no entry.
    assert_eq!(a.budget.len(), 1, "{:#?}", a.budget);
    let e = &a.budget[0];
    assert_eq!(
        (e.name.as_str(), e.count, e.line, e.col),
        ("risky", 2, 4, 8),
        "{e:#?}"
    );
    assert_eq!(e.file, PathBuf::from("fixtures/l7_panic_surface.rs"));

    // A fresh budget rendering round-trips clean…
    let budget_file = Path::new("budget.txt");
    let rendered = analyze::render_budget(&a.budget);
    assert!(analyze::compare_budget(&a.budget, &rendered, budget_file).is_empty());

    // …growth beyond the recorded count fails…
    let grown = analyze::compare_budget(
        &a.budget,
        "1 fixtures/l7_panic_surface.rs risky\n",
        budget_file,
    );
    assert_eq!(grown.len(), 1);
    assert_eq!(grown[0].lint, LintId::PanicReachability);
    assert!(grown[0].message.contains("grew"), "{}", grown[0].message);

    // …an empty budget reports the API as unbudgeted…
    let unbudgeted = analyze::compare_budget(&a.budget, "", budget_file);
    assert_eq!(unbudgeted.len(), 1);
    assert!(
        unbudgeted[0].message.contains("no budget entry"),
        "{}",
        unbudgeted[0].message
    );

    // …and an entry whose API went panic-free reports as stale, anchored
    // to its budget-file line.
    let stale = analyze::compare_budget(
        &a.budget,
        &format!("{rendered}3 fixtures/l7_panic_surface.rs gone\n"),
        budget_file,
    );
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].file, budget_file);
    assert!(stale[0].message.contains("stale"), "{}", stale[0].message);
}

#[test]
fn l8_flags_allocations_with_chains_and_honours_both_allow_placements() {
    let a = analyze_fixture("l8_alloc_hygiene.rs");
    assert_sites(
        &a,
        "l8_alloc_hygiene.rs",
        &[
            (LintId::AllocHygiene, 9, 22),
            (LintId::AllocHygiene, 10, 27),
            (LintId::AllocHygiene, 11, 23),
        ],
    );
    // Lines 9–11 cover the three site kinds (method, qualified ctor,
    // macro); lines 12 and 14 carry the trailing and standalone allows;
    // the pool take/put pair stays clean.
    assert!(a.diags[0].message.contains("`.to_vec()` allocates"));
    assert!(a.diags[1]
        .message
        .contains("`Vec::with_capacity` allocates"));
    assert!(a.diags[2].message.contains("`format!` allocates"));
    for d in &a.diags {
        assert!(
            d.message.contains(
                "chain: hot (fixtures/l8_alloc_hygiene.rs:4:4) -> \
                 stage (called at fixtures/l8_alloc_hygiene.rs:5:5)"
            ),
            "finding must carry the full call chain: {}",
            d.message
        );
    }
}

#[test]
fn clean_fixture_produces_no_findings_and_an_empty_budget() {
    let a = analyze_fixture("analyze_clean.rs");
    assert_sites(&a, "analyze_clean.rs", &[]);
    assert!(a.budget.is_empty(), "{:#?}", a.budget);
    assert_eq!(a.fn_count, 3, "all three fns must enter the graph");
}

#[test]
fn the_workspace_itself_analyzes_clean_against_the_checked_in_budget() {
    let root = dismastd_xtask::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let (analysis, files) =
        dismastd_xtask::workspace::analyze_workspace(&root).expect("walk succeeds");
    assert!(
        files >= 40,
        "expected to analyze the whole workspace, saw {files} files"
    );
    assert!(
        analysis.fn_count >= 400,
        "expected the full call graph, saw {} fns",
        analysis.fn_count
    );
    assert!(
        !analysis.budget.is_empty(),
        "the workspace has a non-empty panic surface by construction"
    );
    assert!(
        analysis.diags.is_empty(),
        "the workspace must analyze clean (budget included):\n{}",
        analysis
            .diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn cli_analyze_exits_zero_on_the_workspace() {
    let exe = env!("CARGO_BIN_EXE_dismastd-xtask");
    let out = std::process::Command::new(exe)
        .arg("analyze")
        .output()
        .expect("xtask runs");
    assert!(
        out.status.success(),
        "analyze must pass on the workspace:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("entries matched"),
        "summary must confirm the budget matched, got:\n{stdout}"
    );
}

#[test]
fn cli_json_and_github_render_one_machine_line_per_diagnostic() {
    let exe = env!("CARGO_BIN_EXE_dismastd-xtask");
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/l1_panic.rs");

    let json = std::process::Command::new(exe)
        .args(["lint", "--json", "--files"])
        .arg(&fixture)
        .output()
        .expect("xtask runs");
    assert!(
        !json.status.success(),
        "violations must still fail the build"
    );
    let stdout = String::from_utf8_lossy(&json.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON object per diagnostic:\n{stdout}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line must be a standalone JSON object: {line}"
        );
        assert!(
            line.contains(r#""code":"L1""#) && line.contains(r#""lint":"panic_path""#),
            "JSON must carry code and lint name: {line}"
        );
        assert!(
            line.contains(r#""line":"#) && line.contains(r#""col":"#),
            "JSON must carry the position: {line}"
        );
    }

    let github = std::process::Command::new(exe)
        .args(["lint", "--github", "--files"])
        .arg(&fixture)
        .output()
        .expect("xtask runs");
    assert!(!github.status.success());
    let stdout = String::from_utf8_lossy(&github.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one annotation per diagnostic:\n{stdout}");
    for line in &lines {
        assert!(
            line.starts_with("::error file=") && line.contains("title=L1(panic_path)"),
            "each line must be a GitHub annotation: {line}"
        );
    }
}

//! Sparse-tensor I/O: a plain COO text format plus JSON via serde.
//!
//! The text format matches the de-facto standard used by FROSTT/SPLATT-style
//! tools: a header `%shape I1 I2 … IN`, then one `i1 i2 … iN value` line per
//! nonzero (1-based indices, as those tools expect).

use dismastd_tensor::{Result, SparseTensor, SparseTensorBuilder, TensorError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Writes `tensor` in COO text format.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] wrapping any I/O failure.
pub fn write_coo_text(tensor: &SparseTensor, w: impl Write) -> Result<()> {
    let mut w = BufWriter::new(w);
    let io_err = |e: std::io::Error| TensorError::InvalidArgument(format!("io error: {e}"));
    write!(w, "%shape").map_err(io_err)?;
    for &s in tensor.shape() {
        write!(w, " {s}").map_err(io_err)?;
    }
    writeln!(w).map_err(io_err)?;
    for (idx, v) in tensor.iter() {
        for &i in idx {
            write!(w, "{} ", i + 1).map_err(io_err)?;
        }
        writeln!(w, "{v}").map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a tensor written by [`write_coo_text`].
///
/// Lines starting with `#` and `%`-prefixed lines other than the `%shape`
/// header (the FROSTT comment convention) are skipped, as are blank lines.
/// Indices are 1-based on disk.  Exactly one `%shape` header is allowed: a
/// second one is rejected rather than silently discarding everything parsed
/// before it.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] on malformed input, a duplicate
/// `%shape` header, or I/O error.
pub fn read_coo_text(r: impl Read) -> Result<SparseTensor> {
    let reader = BufReader::new(r);
    let bad = |msg: String| TensorError::InvalidArgument(msg);
    let mut state: Option<(Vec<usize>, SparseTensorBuilder)> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| bad(format!("io error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("%shape") {
            if state.is_some() {
                return Err(bad(format!(
                    "line {}: duplicate %shape header (one header per file)",
                    lineno + 1
                )));
            }
            let dims: std::result::Result<Vec<usize>, _> =
                rest.split_whitespace().map(str::parse).collect();
            let dims = dims.map_err(|e| bad(format!("line {}: bad shape: {e}", lineno + 1)))?;
            if dims.is_empty() {
                return Err(bad("empty shape header".into()));
            }
            state = Some((dims.clone(), SparseTensorBuilder::new(dims)));
            continue;
        }
        if line.starts_with('%') {
            // FROSTT-style comment line.
            continue;
        }
        let (shape, builder) = state
            .as_mut()
            .ok_or_else(|| bad("data before %shape header".into()))?;
        let mut parts = line.split_whitespace();
        let mut idx = Vec::with_capacity(shape.len());
        for _ in 0..shape.len() {
            let tok = parts
                .next()
                .ok_or_else(|| bad(format!("line {}: too few fields", lineno + 1)))?;
            let i: usize = tok
                .parse()
                .map_err(|e| bad(format!("line {}: bad index: {e}", lineno + 1)))?;
            if i == 0 {
                return Err(bad(format!("line {}: indices are 1-based", lineno + 1)));
            }
            idx.push(i - 1);
        }
        let vtok = parts
            .next()
            .ok_or_else(|| bad(format!("line {}: missing value", lineno + 1)))?;
        let v: f64 = vtok
            .parse()
            .map_err(|e| bad(format!("line {}: bad value: {e}", lineno + 1)))?;
        if parts.next().is_some() {
            return Err(bad(format!("line {}: too many fields", lineno + 1)));
        }
        builder.push(&idx, v)?;
    }
    state
        .ok_or_else(|| bad("missing %shape header".into()))?
        .1
        .build()
}

/// Serialises a tensor to a JSON string (exact `f64` round trip via serde).
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] on serialisation failure.
pub fn to_json(tensor: &SparseTensor) -> Result<String> {
    serde_json::to_string(tensor).map_err(|e| TensorError::InvalidArgument(format!("json: {e}")))
}

/// Deserialises a tensor from [`to_json`] output.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] on parse failure.
pub fn from_json(s: &str) -> Result<SparseTensor> {
    serde_json::from_str(s).map_err(|e| TensorError::InvalidArgument(format!("json: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        let mut b = SparseTensorBuilder::new(vec![3, 4, 2]);
        b.push(&[0, 0, 0], 1.5).unwrap();
        b.push(&[2, 3, 1], -0.25).unwrap();
        b.push(&[1, 2, 0], 42.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn text_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_coo_text(&t, &mut buf).unwrap();
        let back = read_coo_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_format_is_one_based() {
        let t = sample();
        let mut buf = Vec::new();
        write_coo_text(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("%shape 3 4 2\n"));
        assert!(text.contains("1 1 1 1.5"));
        assert!(text.contains("3 4 2 -0.25"));
    }

    #[test]
    fn read_skips_comments_and_blanks() {
        let text = "# comment\n\n%shape 2 2\n# another\n1 1 3.0\n\n2 2 4.0\n";
        let t = read_coo_text(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 0]).unwrap(), 3.0);
        assert_eq!(t.get(&[1, 1]).unwrap(), 4.0);
    }

    #[test]
    fn read_rejects_malformed() {
        assert!(read_coo_text("1 1 1.0\n".as_bytes()).is_err()); // no header
        assert!(read_coo_text("%shape\n".as_bytes()).is_err()); // empty shape
        assert!(read_coo_text("%shape 2 2\n1 1\n".as_bytes()).is_err()); // missing value
        assert!(read_coo_text("%shape 2 2\n0 1 2.0\n".as_bytes()).is_err()); // 0-based
        assert!(read_coo_text("%shape 2 2\n1 1 1.0 9\n".as_bytes()).is_err()); // extra field
        assert!(read_coo_text("%shape 2 2\n3 1 1.0\n".as_bytes()).is_err()); // out of bounds
        assert!(read_coo_text("%shape 2 2\n1 x 1.0\n".as_bytes()).is_err()); // bad index
    }

    #[test]
    fn duplicate_shape_header_is_a_typed_error_not_data_loss() {
        // A second %shape used to silently reset the builder, discarding
        // every nonzero parsed before it.
        let text = "%shape 2 2\n1 1 3.0\n%shape 2 2\n2 2 4.0\n";
        let err = read_coo_text(text.as_bytes()).unwrap_err();
        match err {
            TensorError::InvalidArgument(msg) => {
                assert!(msg.contains("duplicate %shape"), "msg = {msg}");
                assert!(msg.contains("line 3"), "msg = {msg}");
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
        // Even a differing second header is rejected the same way.
        let text = "%shape 2 2\n1 1 3.0\n%shape 9 9\n";
        assert!(read_coo_text(text.as_bytes()).is_err());
    }

    #[test]
    fn percent_comment_lines_are_skipped() {
        // FROSTT convention: % starts a comment; only %shape is structural.
        let text = "% exported by frostt\n%shape 2 2\n% nnz: 2\n1 1 3.0\n%trailer\n2 2 4.0\n";
        let t = read_coo_text(text.as_bytes()).unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 0]).unwrap(), 3.0);
        assert_eq!(t.get(&[1, 1]).unwrap(), 4.0);
    }

    #[test]
    fn trailing_junk_is_rejected() {
        // Extra fields after the value, and non-numeric trailing tokens.
        assert!(read_coo_text("%shape 2 2\n1 1 1.0 junk\n".as_bytes()).is_err());
        assert!(read_coo_text("%shape 2 2\n1 1 1.0 2 2 2.0\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_and_headerless_files_are_rejected() {
        assert!(read_coo_text("".as_bytes()).is_err());
        assert!(read_coo_text("\n\n# only comments\n% and these\n".as_bytes()).is_err());
    }

    #[test]
    fn adversarial_round_trip_survives_comment_injection() {
        // Round-trip a tensor, then splice comments between every line; the
        // parse must be unchanged.
        let t = sample();
        let mut buf = Vec::new();
        write_coo_text(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let noisy: String = text
            .lines()
            .flat_map(|l| [l, "% noise", "# more noise", ""])
            .collect::<Vec<_>>()
            .join("\n");
        let back = read_coo_text(noisy.as_bytes()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let s = to_json(&t).unwrap();
        let back = from_json(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("{not json").is_err());
    }

    #[test]
    fn empty_tensor_round_trips() {
        let t = SparseTensor::empty(vec![5, 5]).unwrap();
        let mut buf = Vec::new();
        write_coo_text(&t, &mut buf).unwrap();
        let back = read_coo_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }
}

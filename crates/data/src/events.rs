//! Event-log ingestion — multi-aspect streams as they arrive in practice.
//!
//! [`StreamSequence`](crate::stream::StreamSequence) cuts a finished tensor
//! into nested boxes; real systems instead see an ordered **event log**
//! (`⟨user, product, time, rating⟩` tuples in the paper's introduction) in
//! which new indices appear in every mode as the log advances.  [`EventLog`]
//! materialises snapshot tensors from arbitrary prefixes of such a log:
//! the snapshot's shape is the smallest box containing every event seen so
//! far, so consecutive snapshot *shapes* grow monotonically in all modes.
//!
//! One modelling boundary worth knowing: Def. 4 assumes the previous
//! snapshot is *frozen* (`X^(T-1)` is exactly the restriction of `X^(T)`),
//! but a real log can deliver a late event whose indices lie inside an
//! already-materialised box (an old user rating an old product).  DTD's
//! complement pass never revisits the old box, so such in-box arrivals are
//! absorbed only through the `μ`-weighted approximation of the history —
//! the same treatment the paper implicitly gives them.  [`EventLog::in_box_events`]
//! counts them so callers can monitor how far a log strays from the ideal
//! model.

use crate::synth::ZipfSampler;
use dismastd_tensor::{Result, SparseTensor, SparseTensorBuilder, TensorError};
use rand::Rng;

/// One observed entry of the growing tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Index tuple (one coordinate per mode).
    pub idx: Vec<usize>,
    /// Observed value (duplicate indices are summed at snapshot time).
    pub value: f64,
}

/// An ordered log of tensor events.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    order: usize,
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log for order-`order` events.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyShape`] for order 0.
    pub fn new(order: usize) -> Result<Self> {
        if order == 0 {
            return Err(TensorError::EmptyShape);
        }
        Ok(EventLog {
            order,
            events: Vec::new(),
        })
    }

    /// Appends one event.
    ///
    /// # Errors
    /// Returns a shape error when the index arity is wrong.
    pub fn push(&mut self, idx: &[usize], value: f64) -> Result<()> {
        if idx.len() != self.order {
            return Err(TensorError::ShapeMismatch {
                op: "EventLog::push",
                left: vec![self.order],
                right: vec![idx.len()],
            });
        }
        self.events.push(Event {
            idx: idx.to_vec(),
            value,
        });
        Ok(())
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The smallest shape containing the first `n` events (all-zero for an
    /// empty prefix).
    pub fn shape_after(&self, n: usize) -> Vec<usize> {
        let mut shape = vec![0usize; self.order];
        for e in &self.events[..n.min(self.events.len())] {
            for (s, &i) in shape.iter_mut().zip(&e.idx) {
                *s = (*s).max(i + 1);
            }
        }
        shape
    }

    /// Materialises the snapshot after the first `n` events.
    ///
    /// # Errors
    /// Propagates builder errors (none expected for well-formed logs).
    pub fn snapshot_after(&self, n: usize) -> Result<SparseTensor> {
        let n = n.min(self.events.len());
        let shape = self.shape_after(n);
        let mut b = SparseTensorBuilder::with_capacity(shape, n);
        for e in &self.events[..n] {
            b.push(&e.idx, e.value)?;
        }
        b.build()
    }

    /// Materialises snapshots at the given event-count cuts.
    ///
    /// Cuts must be non-decreasing; the resulting snapshots are nested
    /// (Def. 4) because each is a prefix of the next.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] on decreasing cuts.
    pub fn snapshots(&self, cuts: &[usize]) -> Result<Vec<SparseTensor>> {
        for w in cuts.windows(2) {
            if w[0] > w[1] {
                return Err(TensorError::InvalidArgument(
                    "cuts must be non-decreasing".into(),
                ));
            }
        }
        cuts.iter().map(|&c| self.snapshot_after(c)).collect()
    }

    /// Counts events in `prefix..n` that fall inside the box spanned by the
    /// first `prefix` events — the late in-box arrivals that the
    /// multi-aspect streaming model (Def. 4) assumes away.
    pub fn in_box_events(&self, prefix: usize, n: usize) -> usize {
        let old_shape = self.shape_after(prefix);
        let n = n.min(self.events.len());
        self.events[prefix.min(n)..n]
            .iter()
            .filter(|e| e.idx.iter().zip(&old_shape).all(|(&i, &s)| i < s))
            .count()
    }

    /// Synthesises a growth log: events whose index ceilings expand over
    /// time in **every** mode (new users/products/timestamps keep
    /// appearing), with Zipf-skewed popularity inside the known population.
    ///
    /// `final_shape` is the population at the end of the log; mode-`k`
    /// index `i` becomes available once `⌊(events_so_far / total)^growth ·
    /// final_shape[k]⌋ > i`, so small `growth` fronts-loads the expansion.
    ///
    /// # Errors
    /// Returns [`TensorError::EmptyShape`] for an empty shape.
    pub fn synthetic_growth(
        final_shape: &[usize],
        num_events: usize,
        exponents: &[f64],
        growth: f64,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if final_shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        if exponents.len() != final_shape.len() {
            return Err(TensorError::InvalidArgument(
                "one Zipf exponent per mode required".into(),
            ));
        }
        let samplers: Vec<ZipfSampler> = final_shape
            .iter()
            .zip(exponents)
            .map(|(&s, &e)| ZipfSampler::new(s, e))
            .collect();
        let mut log = EventLog::new(final_shape.len())?;
        let mut idx = vec![0usize; final_shape.len()];
        for t in 0..num_events {
            // Population known at event t.
            let frac = ((t + 1) as f64 / num_events as f64).powf(growth);
            for ((i, s), sampler) in idx.iter_mut().zip(final_shape).zip(&samplers) {
                let ceiling = ((*s as f64 * frac).ceil() as usize).clamp(1, *s);
                // Rejection-sample within the known population.
                loop {
                    let cand = sampler.sample(rng);
                    if cand < ceiling {
                        *i = cand;
                        break;
                    }
                }
            }
            log.push(&idx, rng.gen_range(0.5..1.5))?;
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new(3).unwrap();
        log.push(&[0, 0, 0], 1.0).unwrap();
        log.push(&[1, 0, 2], 2.0).unwrap();
        log.push(&[0, 3, 1], -1.0).unwrap();
        log.push(&[4, 1, 0], 0.5).unwrap();
        log
    }

    #[test]
    fn construction_and_validation() {
        assert!(EventLog::new(0).is_err());
        let mut log = EventLog::new(2).unwrap();
        assert!(log.is_empty());
        assert!(log.push(&[0, 0, 0], 1.0).is_err()); // wrong arity
        log.push(&[3, 4], 1.0).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn shapes_grow_with_prefix() {
        let log = sample_log();
        assert_eq!(log.shape_after(1), vec![1, 1, 1]);
        assert_eq!(log.shape_after(2), vec![2, 1, 3]);
        assert_eq!(log.shape_after(3), vec![2, 4, 3]);
        assert_eq!(log.shape_after(4), vec![5, 4, 3]);
        // Beyond the log length: full shape.
        assert_eq!(log.shape_after(99), vec![5, 4, 3]);
    }

    #[test]
    fn snapshots_shapes_nest_and_entries_persist() {
        let log = sample_log(); // no duplicate indices → exact Def. 4 nesting
        let snaps = log.snapshots(&[1, 2, 4]).unwrap();
        assert_eq!(snaps.len(), 3);
        for w in snaps.windows(2) {
            // Shapes grow monotonically…
            for (a, b) in w[0].shape().iter().zip(w[1].shape()) {
                assert!(a <= b);
            }
            // …and every earlier entry persists (Def. 4).
            for (idx, v) in w[0].iter() {
                assert_eq!(w[1].get(idx).unwrap(), v);
            }
        }
    }

    #[test]
    fn in_box_events_counts_late_arrivals() {
        let mut log = EventLog::new(2).unwrap();
        log.push(&[2, 2], 1.0).unwrap(); // box becomes 3x3
        log.push(&[0, 0], 1.0).unwrap(); // inside the box: late arrival
        log.push(&[5, 1], 1.0).unwrap(); // outside: genuine growth
        assert_eq!(log.in_box_events(1, 3), 1);
        assert_eq!(log.in_box_events(0, 3), 0); // empty prefix: 1x1 box
        assert_eq!(log.in_box_events(3, 3), 0);
    }

    #[test]
    fn snapshots_validate_cuts() {
        let log = sample_log();
        assert!(log.snapshots(&[3, 1]).is_err());
        assert!(log.snapshots(&[1, 1, 4]).is_ok());
    }

    #[test]
    fn duplicate_events_merge() {
        let mut log = EventLog::new(2).unwrap();
        log.push(&[0, 0], 1.0).unwrap();
        log.push(&[0, 0], 2.0).unwrap();
        let t = log.snapshot_after(2).unwrap();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.get(&[0, 0]).unwrap(), 3.0);
    }

    #[test]
    fn synthetic_growth_expands_all_modes() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let log = EventLog::synthetic_growth(&[50, 40, 30], 2000, &[0.8, 0.8, 0.3], 1.0, &mut rng)
            .unwrap();
        assert_eq!(log.len(), 2000);
        let early = log.shape_after(200);
        let late = log.shape_after(2000);
        for k in 0..3 {
            assert!(
                early[k] < late[k],
                "mode {k} did not grow: {early:?} -> {late:?}"
            );
        }
        // Early events live in a strictly smaller box.
        assert!(early.iter().zip(&[50, 40, 30]).all(|(e, f)| e <= f));
    }

    #[test]
    fn synthetic_growth_validates() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert!(EventLog::synthetic_growth(&[], 10, &[], 1.0, &mut rng).is_err());
        assert!(EventLog::synthetic_growth(&[5, 5], 10, &[1.0], 1.0, &mut rng).is_err());
    }

    #[test]
    fn streaming_session_consumes_event_snapshots() {
        // Cross-module smoke: event-log snapshots are valid MASTD input.
        // Late in-box arrivals mean the complement may under-count relative
        // to the nnz delta; the complement itself is always strictly
        // outside the previous box.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let log = EventLog::synthetic_growth(&[30, 25, 20], 1500, &[0.7, 0.7, 0.3], 1.0, &mut rng)
            .unwrap();
        let cuts = [500usize, 1000, 1500];
        let snaps = log.snapshots(&cuts).unwrap();
        for (t, w) in snaps.windows(2).enumerate() {
            let old_shape = w[0].shape().to_vec();
            let complement = w[1].complement(&old_shape).unwrap();
            for (idx, _) in complement.iter() {
                assert_ne!(SparseTensor::block_of(idx, &old_shape), 0);
            }
            // nnz delta = complement + in-box arrivals (minus merges).
            let in_box = log.in_box_events(cuts[t], cuts[t + 1]);
            assert!(
                complement.nnz() <= w[1].nnz() - w[0].nnz() + in_box,
                "complement accounting at step {t}"
            );
        }
    }
}

//! # dismastd-data
//!
//! Dataset substrate for the DisMASTD reproduction: synthetic sparse-tensor
//! generators, scaled stand-ins for the paper's evaluation datasets
//! (Table III), multi-aspect streaming snapshot sequences (Sec. V-B1), and
//! COO text / JSON I/O.
//!
//! ## Substitution note
//!
//! The paper evaluates on Amazon *Clothing*/*Book* reviews and the *Netflix*
//! prize tensor (10⁷–10⁸ nonzeros) plus a uniform *Synthetic* tensor.  Those
//! datasets are not redistributable here, so [`datasets`] generates tensors
//! with the **same shape ratios** and, crucially, the same *skew contrast*:
//! the three "real-like" profiles use Zipf-distributed mode indices (heavy
//! head slices — what makes GTP struggle in Table IV), while the synthetic
//! profile is uniform (where GTP ≈ MTP).  Scales default to laptop-friendly
//! sizes and are adjustable.

pub mod datasets;
pub mod events;
pub mod io;
pub mod stream;
pub mod synth;

pub use datasets::DatasetSpec;
pub use events::{Event, EventLog};
pub use stream::StreamSequence;
pub use synth::{uniform_tensor, zipf_tensor, ZipfSampler};

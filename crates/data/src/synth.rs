//! Random sparse tensor generators.

use dismastd_tensor::{Result, SparseTensor, SparseTensorBuilder, TensorError};
use rand::Rng;

/// Uniform sparse tensor: `nnz` entries with independently uniform indices
/// in each mode and values uniform in `[0.5, 1.5)` (positive, away from
/// zero, like rating data).
///
/// Duplicate index draws are merged by the builder, so the resulting tensor
/// can hold slightly fewer than `nnz` entries when density is high; the
/// generator retries a few rounds to close the gap.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] if `nnz` exceeds the number of
/// cells in the tensor.
pub fn uniform_tensor(shape: &[usize], nnz: usize, rng: &mut impl Rng) -> Result<SparseTensor> {
    let cells: f64 = shape.iter().map(|&s| s as f64).product();
    if (nnz as f64) > cells {
        return Err(TensorError::InvalidArgument(format!(
            "requested {nnz} nonzeros in a tensor of {cells} cells"
        )));
    }
    let mut builder = SparseTensorBuilder::with_capacity(shape.to_vec(), nnz);
    let mut idx = vec![0usize; shape.len()];
    let mut tensor = {
        for _ in 0..nnz {
            for (i, &s) in idx.iter_mut().zip(shape) {
                *i = rng.gen_range(0..s);
            }
            builder.push(&idx, rng.gen_range(0.5..1.5))?;
        }
        builder.build()?
    };
    // Top up after duplicate merging (bounded retries keep this total).
    for _ in 0..8 {
        if tensor.nnz() >= nnz {
            break;
        }
        let missing = nnz - tensor.nnz();
        let mut b = SparseTensorBuilder::with_capacity(shape.to_vec(), tensor.nnz() + missing);
        for (i, v) in tensor.iter() {
            b.push(i, v)?;
        }
        for _ in 0..missing {
            for (i, &s) in idx.iter_mut().zip(shape) {
                *i = rng.gen_range(0..s);
            }
            b.push(&idx, rng.gen_range(0.5..1.5))?;
        }
        tensor = b.build()?;
    }
    Ok(tensor)
}

/// Inverse-CDF sampler for the Zipf distribution over `{0, …, n-1}` with
/// weight `(i+1)^{-exponent}`.
///
/// Real-world mode indices (users, products) are heavily head-skewed; this
/// sampler produces the "skewed non-zero element distribution" the paper
/// attributes to its real datasets (Sec. V-B2).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative (unnormalised) weights; `cdf[i]` = sum of w_0..w_i.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with the given exponent.
    ///
    /// # Panics
    /// Panics if `n == 0` (a zero-sized mode cannot be sampled).
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` iff the sampler covers no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        // Non-empty by construction; fall back to weight 1 to stay
        // panic-free under the crate-wide no-unwrap audit.
        let total = self.cdf.last().copied().unwrap_or(1.0);
        let u = rng.gen_range(0.0..total);
        // First index whose cumulative weight exceeds u.  Weights are finite
        // by construction, so the ordering fallback is unreachable.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Zipf-skewed sparse tensor: mode-`k` indices follow a Zipf distribution
/// with `exponents[k]`; values uniform in `[0.5, 1.5)`.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] if `exponents.len()` differs
/// from the order, or the density is infeasible.
pub fn zipf_tensor(
    shape: &[usize],
    nnz: usize,
    exponents: &[f64],
    rng: &mut impl Rng,
) -> Result<SparseTensor> {
    if exponents.len() != shape.len() {
        return Err(TensorError::InvalidArgument(
            "one Zipf exponent per mode required".into(),
        ));
    }
    let cells: f64 = shape.iter().map(|&s| s as f64).product();
    if (nnz as f64) > cells {
        return Err(TensorError::InvalidArgument(format!(
            "requested {nnz} nonzeros in a tensor of {cells} cells"
        )));
    }
    let samplers: Vec<ZipfSampler> = shape
        .iter()
        .zip(exponents)
        .map(|(&s, &e)| ZipfSampler::new(s, e))
        .collect();
    let mut idx = vec![0usize; shape.len()];
    // Zipf draws collide often in the head; over-draw by small rounds until
    // the merged count reaches the target or progress stalls.
    let mut tensor = SparseTensor::empty(shape.to_vec())?;
    let mut stalled = 0;
    while tensor.nnz() < nnz && stalled < 16 {
        let before = tensor.nnz();
        let missing = nnz - before;
        let mut b = SparseTensorBuilder::with_capacity(shape.to_vec(), before + missing);
        for (i, v) in tensor.iter() {
            b.push(i, v)?;
        }
        for _ in 0..missing {
            for (i, s) in idx.iter_mut().zip(&samplers) {
                *i = s.sample(rng);
            }
            b.push(&idx, rng.gen_range(0.5..1.5))?;
        }
        tensor = b.build()?;
        if tensor.nnz() == before {
            stalled += 1;
        } else {
            stalled = 0;
        }
    }
    Ok(tensor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_tensor_hits_target_nnz() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = uniform_tensor(&[50, 50, 50], 2000, &mut rng).unwrap();
        assert_eq!(t.nnz(), 2000);
        assert_eq!(t.shape(), &[50, 50, 50]);
        // Duplicate draws merge by summation, so values are positive but may
        // exceed the per-draw range.
        assert!(t.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn uniform_tensor_rejects_overfull() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(uniform_tensor(&[2, 2], 5, &mut rng).is_err());
    }

    #[test]
    fn uniform_tensor_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = uniform_tensor(&[20, 20, 20], 4000, &mut rng).unwrap();
        let hist = t.slice_nnz(0).unwrap();
        let mean = 4000.0 / 20.0;
        // All slices within ±50% of the mean — very loose, just anti-skew.
        assert!(hist
            .iter()
            .all(|&h| (h as f64) > 0.5 * mean && (h as f64) < 1.5 * mean));
    }

    #[test]
    fn zipf_sampler_is_head_heavy() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let z = ZipfSampler::new(100, 1.2);
        assert_eq!(z.len(), 100);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Item 0 must dominate item 50 by a wide margin.
        assert!(counts[0] > 10 * counts[50].max(1));
        // Every draw in range (no panic) and head gets a large share.
        let head: usize = counts[..5].iter().sum();
        assert!(head > 3000, "head share {head}");
    }

    #[test]
    fn zipf_sampler_exponent_zero_is_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let z = ZipfSampler::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300));
    }

    #[test]
    fn zipf_tensor_is_skewed() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let t = zipf_tensor(&[200, 200, 50], 5000, &[1.1, 1.1, 0.8], &mut rng).unwrap();
        assert!(
            t.nnz() > 4000,
            "collisions ate too many entries: {}",
            t.nnz()
        );
        let hist = t.slice_nnz(0).unwrap();
        let max = *hist.iter().max().unwrap() as f64;
        let mean = t.nnz() as f64 / 200.0;
        assert!(max > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn zipf_tensor_validates_exponents() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(zipf_tensor(&[10, 10], 5, &[1.0f64], &mut rng).is_err());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = uniform_tensor(&[30, 30], 100, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = uniform_tensor(&[30, 30], 100, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
        let c = zipf_tensor(
            &[30, 30],
            100,
            &[1.0, 1.0],
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .unwrap();
        let d = zipf_tensor(
            &[30, 30],
            100,
            &[1.0, 1.0],
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .unwrap();
        assert_eq!(c, d);
    }
}

//! Multi-aspect streaming tensor sequences (Def. 4, Sec. V-B1).
//!
//! A multi-aspect streaming sequence is a chain of snapshot tensors
//! `X^(1) ⊆ X^(2) ⊆ …` where *every mode* may grow between snapshots
//! (Fig. 1, right).  The paper's Fig. 5 experiment builds the sequence by
//! growing a full dataset "from 75% to 100% of the whole dataset by 5% at
//! each time step"; [`StreamSequence`] reproduces exactly that protocol:
//! snapshot `t` is the restriction of the full tensor to the box
//! `⌈frac_t · I_n⌉` per mode.

use dismastd_tensor::{Result, SparseTensor, TensorError};

/// A materialised multi-aspect streaming snapshot sequence.
#[derive(Debug, Clone)]
pub struct StreamSequence {
    snapshots: Vec<SparseTensor>,
    fractions: Vec<f64>,
}

impl StreamSequence {
    /// The paper's Fig. 5 schedule: 75%, 80%, …, 100%.
    pub fn paper_fractions() -> Vec<f64> {
        vec![0.75, 0.80, 0.85, 0.90, 0.95, 1.00]
    }

    /// Cuts `full` into nested snapshots at the given shape fractions.
    ///
    /// Fractions must be strictly increasing and lie in `(0, 1]`; the
    /// snapshot at fraction `f` has shape `⌈f · I_n⌉` and contains every
    /// entry of `full` inside that box, so `X^(t-1) ⊆ X^(t)` holds by
    /// construction (Def. 4).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] on an empty or non-monotone
    /// fraction list, or fractions outside `(0, 1]`.
    pub fn cut(full: &SparseTensor, fractions: &[f64]) -> Result<Self> {
        if fractions.is_empty() {
            return Err(TensorError::InvalidArgument(
                "at least one fraction required".into(),
            ));
        }
        for w in fractions.windows(2) {
            if w[0] >= w[1] {
                return Err(TensorError::InvalidArgument(
                    "fractions must be strictly increasing".into(),
                ));
            }
        }
        if fractions[0] <= 0.0 || fractions.last().copied().unwrap_or(0.0) > 1.0 {
            return Err(TensorError::InvalidArgument(
                "fractions must lie in (0, 1]".into(),
            ));
        }
        let mut snapshots = Vec::with_capacity(fractions.len());
        for &f in fractions {
            let bounds: Vec<usize> = full
                .shape()
                .iter()
                .map(|&s| ((s as f64 * f).ceil() as usize).clamp(1, s))
                .collect();
            snapshots.push(full.restrict(&bounds)?);
        }
        Ok(StreamSequence {
            snapshots,
            fractions: fractions.to_vec(),
        })
    }

    /// Number of snapshots `T`.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when the sequence holds no snapshots (cannot happen after a
    /// successful [`StreamSequence::cut`]).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshot at step `t`.
    pub fn snapshot(&self, t: usize) -> &SparseTensor {
        &self.snapshots[t]
    }

    /// The fraction that produced snapshot `t`.
    pub fn fraction(&self, t: usize) -> f64 {
        self.fractions[t]
    }

    /// Iterates snapshots in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &SparseTensor> {
        self.snapshots.iter()
    }

    /// Consumes the sequence, yielding the snapshots.
    pub fn into_snapshots(self) -> Vec<SparseTensor> {
        self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::uniform_tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn full_tensor() -> SparseTensor {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        uniform_tensor(&[40, 30, 20], 3000, &mut rng).unwrap()
    }

    #[test]
    fn paper_schedule_is_six_steps() {
        let f = StreamSequence::paper_fractions();
        assert_eq!(f.len(), 6);
        assert_eq!(f[0], 0.75);
        assert_eq!(*f.last().unwrap(), 1.0);
    }

    #[test]
    fn snapshots_are_nested_subtensors() {
        let full = full_tensor();
        let seq = StreamSequence::cut(&full, &StreamSequence::paper_fractions()).unwrap();
        assert_eq!(seq.len(), 6);
        for t in 1..seq.len() {
            let prev = seq.snapshot(t - 1);
            let cur = seq.snapshot(t);
            // Shapes grow monotonically in every mode.
            for (a, b) in prev.shape().iter().zip(cur.shape()) {
                assert!(a <= b);
            }
            // Every previous entry exists unchanged in the current snapshot
            // (Def. 4: X^(T-1) ⊆ X^(T)).
            for (idx, v) in prev.iter() {
                assert_eq!(cur.get(idx).unwrap(), v);
            }
        }
    }

    #[test]
    fn final_snapshot_is_the_full_tensor() {
        let full = full_tensor();
        let seq = StreamSequence::cut(&full, &[0.5, 1.0]).unwrap();
        assert_eq!(seq.snapshot(1).nnz(), full.nnz());
        assert_eq!(seq.snapshot(1).shape(), full.shape());
    }

    #[test]
    fn snapshots_grow_in_all_modes() {
        // The defining property of *multi-aspect* streaming (vs one-mode).
        let full = full_tensor();
        let seq = StreamSequence::cut(&full, &[0.75, 1.0]).unwrap();
        let s0 = seq.snapshot(0).shape().to_vec();
        let s1 = seq.snapshot(1).shape().to_vec();
        for k in 0..3 {
            assert!(s1[k] > s0[k], "mode {k} did not grow: {s0:?} -> {s1:?}");
        }
    }

    #[test]
    fn validation_errors() {
        let full = full_tensor();
        assert!(StreamSequence::cut(&full, &[]).is_err());
        assert!(StreamSequence::cut(&full, &[0.8, 0.8]).is_err());
        assert!(StreamSequence::cut(&full, &[0.9, 0.7]).is_err());
        assert!(StreamSequence::cut(&full, &[0.0, 1.0]).is_err());
        assert!(StreamSequence::cut(&full, &[0.5, 1.1]).is_err());
    }

    #[test]
    fn fraction_accessor_round_trips() {
        let full = full_tensor();
        let seq = StreamSequence::cut(&full, &[0.6, 0.8, 1.0]).unwrap();
        assert_eq!(seq.fraction(0), 0.6);
        assert_eq!(seq.fraction(2), 1.0);
        assert_eq!(seq.iter().count(), 3);
    }

    #[test]
    fn complement_between_steps_matches_manual_filter() {
        let full = full_tensor();
        let seq = StreamSequence::cut(&full, &[0.75, 1.0]).unwrap();
        let old_shape = seq.snapshot(0).shape().to_vec();
        let complement = seq.snapshot(1).complement(&old_shape).unwrap();
        // complement + previous == current (in nnz).
        assert_eq!(
            complement.nnz() + seq.snapshot(0).nnz(),
            seq.snapshot(1).nnz()
        );
        // No complement entry lies fully inside the old box.
        for (idx, _) in complement.iter() {
            assert_ne!(SparseTensor::block_of(idx, &old_shape), 0);
        }
    }
}

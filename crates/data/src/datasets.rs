//! Scaled stand-ins for the paper's evaluation datasets (Table III).
//!
//! | Paper dataset | I | J | K | nnz | distribution |
//! |---|---|---|---|---|---|
//! | Clothing  | 1.2e7 | 2.7e6 | 7.0e3 | 3.2e7 | skewed (reviews) |
//! | Book      | 1.5e7 | 2.9e6 | 8.2e3 | 5.1e7 | skewed (reviews) |
//! | Netflix   | 4.8e5 | 1.8e4 | 2.2e3 | 1.0e8 | skewed (ratings) |
//! | Synthetic | 5.0e4 | 5.0e4 | 5.0e4 | 5.0e8 | uniform |
//!
//! The originals are not redistributable and far exceed a laptop run, so
//! each profile here keeps the mode-size *ordering* (I ≫ J ≫ K) and the
//! *skewed vs uniform* contrast while scaling the absolute sizes down
//! (`scale = 1.0` targets 10⁶ nonzeros per dataset, keeping the nnz-to-mode-size density ratios high enough that per-iteration compute dominates row traffic, as in the paper).  Two deliberate deviations
//! from the raw Table III ratios, both needed to keep the scaled tensors in
//! the paper's operating regime: the short modes (time/date) are enlarged
//! relative to I so that every mode keeps far more slices than the largest
//! partition count swept (38), and the time mode uses a mild Zipf exponent
//! (dates are nearly uniform in review data).  The Table IV / Fig. 5-7
//! phenomena depend on the skew contrast and slices ≫ partitions, not on
//! absolute size.

use crate::synth::{uniform_tensor, zipf_tensor};
use dismastd_tensor::{Result, SparseTensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Index-distribution family of a dataset profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Skew {
    /// Uniform indices in every mode (paper's *Synthetic*).
    Uniform,
    /// Zipf indices with one exponent per mode (paper's real datasets).
    Zipf(Vec<f64>),
}

/// A named, reproducible dataset recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's figures ("Clothing", …).
    pub name: String,
    /// Mode sizes.
    pub shape: Vec<usize>,
    /// Target number of nonzeros.
    pub nnz: usize,
    /// Index distribution.
    pub skew: Skew,
    /// RNG seed — same spec, same tensor.
    pub seed: u64,
}

impl DatasetSpec {
    /// Clothing-like profile: extreme I ≫ J ≫ K ratio, review-style skew.
    pub fn clothing(scale: f64) -> Self {
        DatasetSpec {
            name: "Clothing".into(),
            shape: scaled(&[24_000, 5_400, 1_400], scale),
            nnz: (768_000.0 * scale.powi(2)) as usize,
            skew: Skew::Zipf(vec![0.9, 0.8, 0.3]),
            seed: 0xC10,
        }
    }

    /// Book-like profile: slightly larger than Clothing, same family.
    pub fn book(scale: f64) -> Self {
        DatasetSpec {
            name: "Book".into(),
            shape: scaled(&[30_000, 5_800, 1_640], scale),
            nnz: (1_224_000.0 * scale.powi(2)) as usize,
            skew: Skew::Zipf(vec![0.9, 0.8, 0.3]),
            seed: 0xB00C,
        }
    }

    /// Netflix-like profile: much denser (nnz ≫ I), strong head skew on
    /// movies, mild on users.
    pub fn netflix(scale: f64) -> Self {
        DatasetSpec {
            name: "Netflix".into(),
            shape: scaled(&[9_600, 720, 440], scale),
            nnz: (4_000_000.0 * scale.powi(2)) as usize,
            skew: Skew::Zipf(vec![0.7, 0.9, 0.25]),
            seed: 0x0E7F,
        }
    }

    /// Synthetic profile: cubic shape, uniform distribution (the Table IV
    /// control where GTP ≈ MTP).
    pub fn synthetic(scale: f64) -> Self {
        DatasetSpec {
            name: "Synthetic".into(),
            shape: scaled(&[2_000, 2_000, 2_000], scale),
            nnz: (2_000_000.0 * scale.powi(2)) as usize,
            skew: Skew::Uniform,
            seed: 0x517,
        }
    }

    /// All four paper datasets at the given scale, in Table III order.
    pub fn all(scale: f64) -> Vec<DatasetSpec> {
        vec![
            Self::clothing(scale),
            Self::book(scale),
            Self::netflix(scale),
            Self::synthetic(scale),
        ]
    }

    /// Materialises the tensor described by this spec.
    ///
    /// # Errors
    /// Propagates generator errors (infeasible density and the like).
    pub fn generate(&self) -> Result<SparseTensor> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let nnz = self.feasible_nnz();
        match &self.skew {
            Skew::Uniform => uniform_tensor(&self.shape, nnz, &mut rng),
            Skew::Zipf(exps) => zipf_tensor(&self.shape, nnz, exps, &mut rng),
        }
    }

    /// The requested nnz, capped at half the cell count so generation
    /// terminates even for tiny scaled shapes.
    fn feasible_nnz(&self) -> usize {
        let cells: f64 = self.shape.iter().map(|&s| s as f64).product();
        (self.nnz).min((cells * 0.5) as usize).max(1)
    }
}

fn scaled(base: &[usize], scale: f64) -> Vec<usize> {
    base.iter()
        .map(|&s| ((s as f64 * scale).round() as usize).max(4))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate_at_small_scale() {
        for spec in DatasetSpec::all(0.2) {
            let t = spec.generate().unwrap();
            assert_eq!(t.shape(), spec.shape.as_slice(), "{}", spec.name);
            assert!(t.nnz() > 0, "{} generated empty", spec.name);
            // Within 20% of the (feasibility-capped) target.
            let target = spec.feasible_nnz() as f64;
            assert!(
                (t.nnz() as f64) > 0.8 * target,
                "{}: {} of {}",
                spec.name,
                t.nnz(),
                target
            );
        }
    }

    #[test]
    fn real_profiles_are_skewed_synthetic_is_not() {
        let skewed = DatasetSpec::netflix(0.2).generate().unwrap();
        let hist = skewed.slice_nnz(1).unwrap();
        let mean = skewed.nnz() as f64 / hist.len() as f64;
        let max = *hist.iter().max().unwrap() as f64;
        assert!(max > 2.5 * mean, "netflix not skewed: {max} vs {mean}");

        let uni = DatasetSpec::synthetic(0.2).generate().unwrap();
        let uh = uni.slice_nnz(0).unwrap();
        let umean = uni.nnz() as f64 / uh.len() as f64;
        let umax = *uh.iter().max().unwrap() as f64;
        assert!(
            umax < 3.0 * umean,
            "synthetic too skewed: {umax} vs {umean}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::clothing(0.1).generate().unwrap();
        let b = DatasetSpec::clothing(0.1).generate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scale_shrinks_shapes_with_floor() {
        let big = DatasetSpec::book(1.0);
        let small = DatasetSpec::book(0.01);
        assert!(small.shape[0] < big.shape[0]);
        assert!(small.shape.iter().all(|&s| s >= 4));
    }

    #[test]
    fn feasible_nnz_caps_density() {
        let spec = DatasetSpec {
            name: "tiny".into(),
            shape: vec![4, 4, 4],
            nnz: 1_000_000,
            skew: Skew::Uniform,
            seed: 1,
        };
        assert!(spec.feasible_nnz() <= 32);
        assert!(spec.generate().is_ok());
    }

    #[test]
    fn table_iii_order() {
        let names: Vec<String> = DatasetSpec::all(0.1).into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["Clothing", "Book", "Netflix", "Synthetic"]);
    }
}

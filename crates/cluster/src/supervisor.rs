//! The supervision layer: turns crash handling from caller-driven replay
//! into an automatic heal loop.
//!
//! Earlier revisions made fault tolerance the *caller's* job: a cluster
//! fault surfaced as a typed error and `ingest_with_recovery` replayed the
//! step a fixed number of times, treating every failure the same.  The
//! [`Supervisor`] instead executes a [`HealPolicy`] **ladder** per
//! detected worker death (panic, `PeerCrashed`, or sim-injected crash
//! fate, all delivered through the existing abort fan-out):
//!
//! 1. **Respawn-and-rejoin** — restart the rank from the last pre-step
//!    checkpoint and readmit it at the step boundary (the identity case of
//!    the elastic-membership join: same world, ownership re-derived from
//!    the checkpointed global factors).  Each rank has a bounded respawn
//!    budget, and every attempt is preceded by seeded exponential backoff
//!    spent through the [`Clock`] trait so virtual time covers it.
//! 2. **Degraded-world fallback** — once a rank's budget is exhausted,
//!    shrink the world through the `request_leave` path and continue the
//!    stream at reduced parallelism, recording a typed `Degraded`
//!    transition instead of failing the run.
//! 3. **Give up** — only when degradation is disallowed or the world is
//!    already at its configured floor does the fault become terminal.
//!
//! The supervisor itself is transport-agnostic: it decides *what* to do
//! with a fault (`HealAction`) and spends the backoff; the session layer
//! in `dismastd-core` owns the checkpoint/rollback and membership
//! plumbing that carries the decision out.

use crate::clock::{Clock, RealClock, SharedClock};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Key under which faults with no attributable rank share a budget.
const UNATTRIBUTED: usize = usize::MAX;

/// How the heal ladder is parameterised.  Build with the `with_*` methods;
/// the defaults give every rank two respawns, 10ms base backoff, and allow
/// degradation down to a single worker.
#[derive(Clone)]
pub struct HealPolicy {
    /// Respawn attempts granted to each rank before the ladder moves to
    /// degradation.  A degrade transition refreshes the culprit's budget —
    /// the new, smaller world is a new regime.
    pub max_respawns_per_rank: u32,
    /// Base backoff before the first respawn of a rank; attempt `n` waits
    /// `base * 2^(n-1)` plus seeded jitter in `[0, base/2)`.
    pub backoff_base: Duration,
    /// Seed for the backoff jitter (deterministic per `(rank, attempt)`).
    pub backoff_seed: u64,
    /// Whether rung 2 (shrink the world, keep streaming) is allowed at
    /// all; `false` makes budget exhaustion terminal immediately.
    pub allow_degraded: bool,
    /// Degradation floor: the world is never shrunk below this size.
    pub min_world: usize,
    /// Clock the backoff is spent through.  `None` uses the wall clock;
    /// tests install a [`crate::clock::VirtualClock`] so an exponential
    /// ladder costs zero wall-clock while staying fully accounted.
    pub clock: Option<SharedClock>,
}

impl Default for HealPolicy {
    fn default() -> Self {
        HealPolicy {
            max_respawns_per_rank: 2,
            backoff_base: Duration::from_millis(10),
            backoff_seed: 0,
            allow_degraded: true,
            min_world: 1,
            clock: None,
        }
    }
}

// Manual impl: `dyn Clock` is not Debug, and which clock is installed is
// all a debug dump needs to say.
impl fmt::Debug for HealPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HealPolicy")
            .field("max_respawns_per_rank", &self.max_respawns_per_rank)
            .field("backoff_base", &self.backoff_base)
            .field("backoff_seed", &self.backoff_seed)
            .field("allow_degraded", &self.allow_degraded)
            .field("min_world", &self.min_world)
            .field("clock", &self.clock.as_ref().map(|_| "<custom>"))
            .finish()
    }
}

impl HealPolicy {
    /// Sets the per-rank respawn budget.
    pub fn with_max_respawns(mut self, n: u32) -> Self {
        self.max_respawns_per_rank = n;
        self
    }

    /// Sets the base backoff of the exponential ladder.
    pub fn with_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Sets the backoff-jitter seed.
    pub fn with_backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Enables or disables the degraded-world rung.
    pub fn with_degraded(mut self, allow: bool) -> Self {
        self.allow_degraded = allow;
        self
    }

    /// Sets the degradation floor (clamped to at least 1).
    pub fn with_min_world(mut self, min_world: usize) -> Self {
        self.min_world = min_world.max(1);
        self
    }

    /// Installs the clock backoff is spent through.
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = Some(clock);
        self
    }
}

/// What the ladder decided for one observed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealAction {
    /// Rung 1: restore the pre-step checkpoint and replay — the crashed
    /// rank rejoins at the step boundary after `backoff`.
    Respawn {
        /// The rank being respawned (`None`: unattributable fault).
        rank: Option<usize>,
        /// 1-based respawn attempt for this rank in the current world.
        attempt: u32,
        /// Backoff to spend before the replay.
        backoff: Duration,
    },
    /// Rung 2: shrink the world by one worker and continue degraded.
    Degrade {
        /// The rank whose exhausted budget triggered the shrink.
        rank: Option<usize>,
    },
    /// Rung 3: the fault is terminal.
    GiveUp {
        /// The rank whose fault could not be healed.
        rank: Option<usize>,
    },
}

/// Executes the [`HealPolicy`] ladder across the lifetime of a stream:
/// per-rank attempt counts survive between steps, so a rank that keeps
/// dying walks down the ladder instead of resetting it every step.
#[derive(Debug)]
pub struct Supervisor {
    policy: HealPolicy,
    /// Respawn attempts per rank in the *current* world (BTreeMap: the
    /// determinism lint forbids hash-ordered containers).
    attempts: BTreeMap<usize, u32>,
    respawns: u64,
    degrades: u64,
    backoff_ns: u64,
}

impl Supervisor {
    /// A supervisor executing `policy`.
    pub fn new(policy: HealPolicy) -> Self {
        Supervisor {
            policy,
            attempts: BTreeMap::new(),
            respawns: 0,
            degrades: 0,
            backoff_ns: 0,
        }
    }

    /// The policy being executed.
    pub fn policy(&self) -> &HealPolicy {
        &self.policy
    }

    /// Total respawn decisions taken.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Total degrade decisions taken.
    pub fn degrades(&self) -> u64 {
        self.degrades
    }

    /// Virtual/wall nanoseconds spent backing off so far.
    pub fn backoff_ns(&self) -> u64 {
        self.backoff_ns
    }

    /// Decides the next rung for a fault attributed to `rank` while the
    /// cluster had `world` workers.  Pure decision — the caller performs
    /// the restore/leave and spends the backoff via
    /// [`Supervisor::back_off`].
    pub fn on_fault(&mut self, rank: Option<usize>, world: usize) -> HealAction {
        let key = rank.unwrap_or(UNATTRIBUTED);
        let attempt = self.attempts.entry(key).or_insert(0);
        if *attempt < self.policy.max_respawns_per_rank {
            *attempt += 1;
            let n = *attempt;
            self.respawns += 1;
            dismastd_obs::counter_add("heal/respawn", 1);
            return HealAction::Respawn {
                rank,
                attempt: n,
                backoff: self.backoff_for(key, n),
            };
        }
        if self.policy.allow_degraded && world > self.policy.min_world {
            // The smaller world is a new regime: the culprit's budget (and
            // everyone else's — the rank numbering shifts) starts over.
            self.attempts.clear();
            self.degrades += 1;
            dismastd_obs::counter_add("heal/degraded", 1);
            return HealAction::Degrade { rank };
        }
        dismastd_obs::counter_add("heal/giveup", 1);
        HealAction::GiveUp { rank }
    }

    /// Spends `backoff` through the policy's clock and tallies it.
    pub fn back_off(&mut self, backoff: Duration) {
        let ns = u64::try_from(backoff.as_nanos()).unwrap_or(u64::MAX);
        match &self.policy.clock {
            Some(c) => c.sleep(0, backoff),
            None => RealClock::new().sleep(0, backoff),
        }
        self.backoff_ns = self.backoff_ns.saturating_add(ns);
        dismastd_obs::counter_add("heal/backoff_ns", ns);
    }

    /// Exponential backoff with seeded jitter: attempt `n` (1-based) waits
    /// `base * 2^(n-1) + jitter`, `jitter ∈ [0, base/2)` drawn as a pure
    /// function of `(seed, rank, attempt)` so replays reproduce it.
    fn backoff_for(&self, rank_key: usize, attempt: u32) -> Duration {
        let base = u64::try_from(self.policy.backoff_base.as_nanos()).unwrap_or(u64::MAX);
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(20));
        let jitter_span = base / 2;
        let jitter = if jitter_span == 0 {
            0
        } else {
            splitmix64(
                self.policy
                    .backoff_seed
                    .wrapping_add((rank_key as u64).rotate_left(32))
                    .wrapping_add(attempt as u64),
            ) % jitter_span
        };
        Duration::from_nanos(exp.saturating_add(jitter))
    }
}

/// Backoff jitter needs nothing fancier than the same SplitMix64
/// finaliser the fault plan and simulator use.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::sync::Arc;

    #[test]
    fn ladder_respawns_then_degrades_then_gives_up() {
        let mut sup = Supervisor::new(HealPolicy::default().with_max_respawns(2));
        // Two respawns for rank 1...
        assert!(matches!(
            sup.on_fault(Some(1), 3),
            HealAction::Respawn {
                rank: Some(1),
                attempt: 1,
                ..
            }
        ));
        assert!(matches!(
            sup.on_fault(Some(1), 3),
            HealAction::Respawn { attempt: 2, .. }
        ));
        // ...then the budget is spent: degrade.
        assert_eq!(
            sup.on_fault(Some(1), 3),
            HealAction::Degrade { rank: Some(1) }
        );
        // Degrading reset the budgets; the same rank gets fresh respawns in
        // the smaller world, and only at the floor does the ladder end.
        assert!(matches!(
            sup.on_fault(Some(1), 2),
            HealAction::Respawn { attempt: 1, .. }
        ));
        assert!(matches!(
            sup.on_fault(Some(1), 2),
            HealAction::Respawn { .. }
        ));
        assert_eq!(
            sup.on_fault(Some(1), 1),
            HealAction::GiveUp { rank: Some(1) }
        );
        assert_eq!(sup.respawns(), 4);
        assert_eq!(sup.degrades(), 1);
    }

    #[test]
    fn budgets_are_per_rank() {
        let mut sup = Supervisor::new(HealPolicy::default().with_max_respawns(1));
        assert!(matches!(
            sup.on_fault(Some(0), 4),
            HealAction::Respawn { .. }
        ));
        // A different rank draws from its own budget.
        assert!(matches!(
            sup.on_fault(Some(2), 4),
            HealAction::Respawn { .. }
        ));
        assert!(matches!(
            sup.on_fault(Some(0), 4),
            HealAction::Degrade { .. }
        ));
    }

    #[test]
    fn degradation_can_be_disabled_and_floored() {
        let mut off = Supervisor::new(
            HealPolicy::default()
                .with_max_respawns(0)
                .with_degraded(false),
        );
        assert_eq!(
            off.on_fault(Some(0), 4),
            HealAction::GiveUp { rank: Some(0) }
        );

        let mut floored =
            Supervisor::new(HealPolicy::default().with_max_respawns(0).with_min_world(3));
        assert_eq!(
            floored.on_fault(Some(0), 3),
            HealAction::GiveUp { rank: Some(0) }
        );
        assert_eq!(
            floored.on_fault(Some(0), 4),
            HealAction::Degrade { rank: Some(0) }
        );
    }

    #[test]
    fn backoff_is_exponential_seeded_and_virtual() {
        let clock = Arc::new(VirtualClock::new());
        let policy = HealPolicy::default()
            .with_backoff_base(Duration::from_millis(10))
            .with_backoff_seed(7)
            .with_clock(clock.clone() as SharedClock);
        let mut sup = Supervisor::new(policy.clone());
        let (b1, b2) = match (sup.on_fault(Some(0), 2), sup.on_fault(Some(0), 2)) {
            (HealAction::Respawn { backoff: b1, .. }, HealAction::Respawn { backoff: b2, .. }) => {
                (b1, b2)
            }
            other => panic!("expected two respawns, got {other:?}"),
        };
        // Attempt 2 doubles the exponential part; jitter stays < base/2.
        assert!(b1 >= Duration::from_millis(10) && b1 < Duration::from_millis(15));
        assert!(b2 >= Duration::from_millis(20) && b2 < Duration::from_millis(25));
        // Deterministic: a fresh supervisor with the same seed draws the
        // same backoffs.
        let mut replay = Supervisor::new(policy);
        match replay.on_fault(Some(0), 2) {
            HealAction::Respawn { backoff, .. } => assert_eq!(backoff, b1),
            other => panic!("expected respawn, got {other:?}"),
        }
        // Spending backoff through the virtual clock costs zero wall-clock
        // but is fully accounted.
        sup.back_off(b1);
        sup.back_off(b2);
        assert_eq!(sup.backoff_ns(), (b1 + b2).as_nanos() as u64);
        assert_eq!(clock.now_ns(), (b1 + b2).as_nanos() as u64);
    }

    #[test]
    fn unattributed_faults_share_one_budget() {
        let mut sup = Supervisor::new(HealPolicy::default().with_max_respawns(1));
        assert!(matches!(
            sup.on_fault(None, 2),
            HealAction::Respawn { rank: None, .. }
        ));
        assert!(matches!(
            sup.on_fault(None, 2),
            HealAction::Degrade { rank: None }
        ));
    }
}

//! Message payloads and communication accounting.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A typed message body.
///
/// The decomposition only ever ships factor rows (`f64`), row indices
/// (`u64`) and opaque blobs, so a small closed enum beats generic
/// serialisation and keeps byte accounting exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Dense floating-point data (factor rows, Gram matrices, scalars).
    F64(Vec<f64>),
    /// Index data (row ids, slice ids).
    U64(Vec<u64>),
    /// Raw bytes (serialised control structures).
    Bytes(bytes::Bytes),
    /// A message that carries no data (pure synchronisation).
    Empty,
}

impl Payload {
    /// Wire size of the payload in bytes (what a real network would carry,
    /// excluding framing).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            Payload::U64(v) => (v.len() * std::mem::size_of::<u64>()) as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::Empty => 0,
        }
    }

    /// Unwraps an `F64` payload.
    ///
    /// # Panics
    /// Panics when the payload has a different type — a protocol bug, not a
    /// runtime condition.
    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {other:?}"),
        }
    }

    /// Unwraps a `U64` payload (panics on type mismatch, as above).
    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {other:?}"),
        }
    }
}

/// Shared, thread-safe tallies of simulated network traffic.
///
/// Only bytes that cross a worker boundary count: a worker "sending" to
/// itself is a local move, exactly as co-located data is free on a real
/// cluster.  Per-sender byte counters expose communication imbalance
/// (a hot worker shipping most of the rows is a partitioning smell).
#[derive(Debug, Default)]
pub struct CommStats {
    bytes: AtomicU64,
    messages: AtomicU64,
    collectives: AtomicU64,
    /// Bytes sent per worker rank (empty when built via `new`).
    bytes_by_sender: Vec<AtomicU64>,
}

impl CommStats {
    /// Fresh zeroed stats without per-sender breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh zeroed stats with one per-sender counter per worker.
    pub fn with_world(world: usize) -> Self {
        CommStats {
            bytes_by_sender: (0..world).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Records one remote message of `bytes` payload bytes.
    pub fn record_message(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one remote message attributed to a sender rank.
    pub fn record_message_from(&self, sender: usize, bytes: u64) {
        self.record_message(bytes);
        if let Some(counter) = self.bytes_by_sender.get(sender) {
            counter.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records the start of a collective operation (barrier, all-reduce, …).
    pub fn record_collective(&self) {
        self.collectives.fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent point-in-time copy of the counters.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes: self.bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
            bytes_by_sender: self
                .bytes_by_sender
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Resets all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.collectives.store(0, Ordering::Relaxed);
        for c in &self.bytes_by_sender {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-data copy of [`CommStats`] counters.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommStatsSnapshot {
    /// Total payload bytes that crossed worker boundaries.
    pub bytes: u64,
    /// Number of remote messages.
    pub messages: u64,
    /// Number of collective operations entered.
    pub collectives: u64,
    /// Bytes sent per worker rank (empty unless the stats were created
    /// with [`CommStats::with_world`]).
    pub bytes_by_sender: Vec<u64>,
}

impl CommStatsSnapshot {
    /// Difference of two snapshots (for per-phase accounting).
    pub fn delta_since(&self, earlier: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes: self.bytes - earlier.bytes,
            messages: self.messages - earlier.messages,
            collectives: self.collectives - earlier.collectives,
            bytes_by_sender: self
                .bytes_by_sender
                .iter()
                .zip(earlier.bytes_by_sender.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Ratio of the busiest sender's bytes to the mean (1.0 = perfectly
    /// even; 0.0 when nothing was sent or no breakdown was recorded).
    pub fn sender_imbalance(&self) -> f64 {
        if self.bytes_by_sender.is_empty() {
            return 0.0;
        }
        let mean = self.bytes_by_sender.iter().sum::<u64>() as f64
            / self.bytes_by_sender.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        *self.bytes_by_sender.iter().max().expect("non-empty") as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::F64(vec![1.0; 10]).size_bytes(), 80);
        assert_eq!(Payload::U64(vec![1; 3]).size_bytes(), 24);
        assert_eq!(Payload::Bytes(bytes::Bytes::from_static(b"abcd")).size_bytes(), 4);
        assert_eq!(Payload::Empty.size_bytes(), 0);
    }

    #[test]
    fn payload_unwrap_helpers() {
        assert_eq!(Payload::F64(vec![2.0]).into_f64(), vec![2.0]);
        assert_eq!(Payload::U64(vec![3]).into_u64(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn payload_unwrap_wrong_type_panics() {
        Payload::Empty.into_f64();
    }

    #[test]
    fn stats_accumulate_and_snapshot() {
        let s = CommStats::new();
        s.record_message(100);
        s.record_message(50);
        s.record_collective();
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 150);
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.collectives, 1);
    }

    #[test]
    fn stats_reset_and_delta() {
        let s = CommStats::new();
        s.record_message(10);
        let first = s.snapshot();
        s.record_message(30);
        let second = s.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.bytes, 30);
        assert_eq!(d.messages, 1);
        s.reset();
        assert_eq!(s.snapshot(), CommStatsSnapshot::default());
    }
}

#[cfg(test)]
mod per_sender_tests {
    use super::*;

    #[test]
    fn per_sender_attribution() {
        let s = CommStats::with_world(3);
        s.record_message_from(0, 100);
        s.record_message_from(2, 50);
        s.record_message_from(2, 25);
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 175);
        assert_eq!(snap.bytes_by_sender, vec![100, 0, 75]);
    }

    #[test]
    fn sender_imbalance_metric() {
        let s = CommStats::with_world(2);
        assert_eq!(s.snapshot().sender_imbalance(), 0.0); // nothing sent
        s.record_message_from(0, 300);
        s.record_message_from(1, 100);
        let snap = s.snapshot();
        assert!((snap.sender_imbalance() - 1.5).abs() < 1e-12);
        // Breakdown-free stats report 0.
        assert_eq!(CommStats::new().snapshot().sender_imbalance(), 0.0);
    }

    #[test]
    fn delta_handles_sender_vectors() {
        let s = CommStats::with_world(2);
        s.record_message_from(0, 10);
        let a = s.snapshot();
        s.record_message_from(1, 20);
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.bytes_by_sender, vec![0, 20]);
    }

    #[test]
    fn out_of_range_sender_still_counts_totals() {
        let s = CommStats::with_world(1);
        s.record_message_from(5, 40); // rank beyond breakdown: totals only
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 40);
        assert_eq!(snap.bytes_by_sender, vec![0]);
    }
}

//! Message payloads and communication accounting.

use crate::error::{ClusterError, ClusterResult};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A typed message body.
///
/// The decomposition only ever ships factor rows (`f64`), row indices
/// (`u64`) and opaque blobs, so a small closed enum beats generic
/// serialisation and keeps byte accounting exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Dense floating-point data (factor rows, Gram matrices, scalars).
    F64(Vec<f64>),
    /// Index data (row ids, slice ids).
    U64(Vec<u64>),
    /// Raw bytes (serialised control structures).
    Bytes(bytes::Bytes),
    /// A message that carries no data (pure synchronisation).
    Empty,
}

impl Payload {
    /// Wire size of the payload in bytes (what a real network would carry,
    /// excluding framing).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::F64(v) => (v.len() * std::mem::size_of::<f64>()) as u64,
            Payload::U64(v) => (v.len() * std::mem::size_of::<u64>()) as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::Empty => 0,
        }
    }

    /// Name of the payload variant (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
            Payload::Empty => "Empty",
        }
    }

    /// Unwraps an `F64` payload, surfacing a protocol mismatch as a typed
    /// [`ClusterError::TypeMismatch`] instead of a receive-path panic.
    ///
    /// # Errors
    /// Returns `TypeMismatch` when the payload has a different variant.
    pub fn try_into_f64(self) -> ClusterResult<Vec<f64>> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(ClusterError::TypeMismatch {
                expected: "F64".into(),
                found: other.kind().into(),
            }),
        }
    }

    /// Unwraps a `U64` payload (typed error on mismatch, as above).
    ///
    /// # Errors
    /// Returns `TypeMismatch` when the payload has a different variant.
    pub fn try_into_u64(self) -> ClusterResult<Vec<u64>> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(ClusterError::TypeMismatch {
                expected: "U64".into(),
                found: other.kind().into(),
            }),
        }
    }

    /// Unwraps an `F64` payload.
    ///
    /// # Panics
    /// Panics when the payload has a different type — a protocol bug, not a
    /// runtime condition.  Fault-tolerant code paths use
    /// [`Payload::try_into_f64`] instead.
    pub fn into_f64(self) -> Vec<f64> {
        // lint:allow(panic_path): documented contract — protocol-bug panic; fallible callers use try_into_f64
        self.try_into_f64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Unwraps a `U64` payload (panics on type mismatch, as above).
    pub fn into_u64(self) -> Vec<u64> {
        // lint:allow(panic_path): documented contract — protocol-bug panic; fallible callers use try_into_u64
        self.try_into_u64().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Shared, thread-safe tallies of simulated network traffic.
///
/// Only bytes that cross a worker boundary count: a worker "sending" to
/// itself is a local move, exactly as co-located data is free on a real
/// cluster.  Per-sender byte counters expose communication imbalance
/// (a hot worker shipping most of the rows is a partitioning smell).
#[derive(Debug, Default)]
pub struct CommStats {
    bytes: AtomicU64,
    messages: AtomicU64,
    collectives: AtomicU64,
    /// Extra wire copies caused by injected drops/duplicates.  Kept apart
    /// from `bytes`/`messages` so logical traffic totals stay explainable
    /// (and bit-identical to a fault-free run) under fault injection.
    retransmits: AtomicU64,
    retransmit_bytes: AtomicU64,
    /// Spurious duplicates the receive path discarded.
    duplicates_suppressed: AtomicU64,
    /// Bytes whose sender rank fell outside the per-sender breakdown (a
    /// caller bug — see [`CommStats::record_message_from`]).  Tallied so
    /// `bytes == Σ bytes_by_sender + unattributed_bytes` always holds.
    unattributed_bytes: AtomicU64,
    /// Encoded (wire) size of compressed frames.  Logical counters above
    /// always record the flat-equivalent size, so compressed and flat runs
    /// stay byte-for-byte comparable; these counters expose what actually
    /// crossed the wire.
    compressed_bytes: AtomicU64,
    /// Flat-equivalent size of those same frames (`≤ bytes`).
    compressed_logical_bytes: AtomicU64,
    /// Factor rows downcast to f32 on the wire.
    downcast_rows: AtomicU64,
    /// Bytes sent per worker rank (empty when built via `new`).
    bytes_by_sender: Vec<AtomicU64>,
}

impl CommStats {
    /// Fresh zeroed stats without per-sender breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh zeroed stats with one per-sender counter per worker.
    pub fn with_world(world: usize) -> Self {
        CommStats {
            bytes_by_sender: (0..world).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Records one remote message of `bytes` payload bytes.
    pub fn record_message(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one remote message attributed to a sender rank.
    ///
    /// With a per-sender breakdown installed ([`CommStats::with_world`]),
    /// an out-of-range `sender` is a caller bug: it used to silently drop
    /// the attribution, letting `Σ bytes_by_sender` drift from `bytes`.
    /// Now it trips a debug assertion, and in release builds the bytes land
    /// in `unattributed_bytes` so snapshots still reconcile exactly.
    pub fn record_message_from(&self, sender: usize, bytes: u64) {
        self.record_message(bytes);
        if self.bytes_by_sender.is_empty() {
            // Totals-only stats (`CommStats::new`): no breakdown to keep
            // consistent, any rank is acceptable.
            return;
        }
        match self.bytes_by_sender.get(sender) {
            Some(counter) => {
                counter.fetch_add(bytes, Ordering::Relaxed);
            }
            None => {
                debug_assert!(
                    false,
                    "sender rank {sender} outside per-sender breakdown of {} workers",
                    self.bytes_by_sender.len()
                );
                self.unattributed_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Records the start of a collective operation (barrier, all-reduce, …).
    pub fn record_collective(&self) {
        self.collectives.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one extra wire copy (a retransmission after an injected
    /// drop, or a spurious duplicate send).  Does **not** touch the
    /// logical `bytes`/`messages` totals.
    pub fn record_retransmit(&self, bytes: u64) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
        self.retransmit_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a duplicate message discarded on the receive path.
    pub fn record_duplicate_suppressed(&self) {
        self.duplicates_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one compressed frame: `wire` encoded bytes standing in for
    /// `logical` flat bytes, `downcast_rows` rows downcast to f32.  The
    /// caller records the *logical* size through
    /// [`CommStats::record_message_from`] as usual; this only tallies the
    /// wire-vs-logical delta.  The adaptive encoder only emits frames that
    /// beat the flat payload, so a ratio ≤ 1.0 is a codec bug.
    pub fn record_compressed(&self, wire: u64, logical: u64, downcast_rows: u64) {
        debug_assert!(
            wire < logical,
            "compressed frame must beat the flat payload (wire {wire} >= logical {logical})"
        );
        self.compressed_bytes.fetch_add(wire, Ordering::Relaxed);
        self.compressed_logical_bytes
            .fetch_add(logical, Ordering::Relaxed);
        self.downcast_rows
            .fetch_add(downcast_rows, Ordering::Relaxed);
    }

    /// Consistent point-in-time copy of the counters.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes: self.bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            retransmit_bytes: self.retransmit_bytes.load(Ordering::Relaxed),
            duplicates_suppressed: self.duplicates_suppressed.load(Ordering::Relaxed),
            unattributed_bytes: self.unattributed_bytes.load(Ordering::Relaxed),
            compressed_bytes: self.compressed_bytes.load(Ordering::Relaxed),
            compressed_logical_bytes: self.compressed_logical_bytes.load(Ordering::Relaxed),
            downcast_rows: self.downcast_rows.load(Ordering::Relaxed),
            bytes_by_sender: self
                .bytes_by_sender
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Resets all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.collectives.store(0, Ordering::Relaxed);
        self.retransmits.store(0, Ordering::Relaxed);
        self.retransmit_bytes.store(0, Ordering::Relaxed);
        self.duplicates_suppressed.store(0, Ordering::Relaxed);
        self.unattributed_bytes.store(0, Ordering::Relaxed);
        self.compressed_bytes.store(0, Ordering::Relaxed);
        self.compressed_logical_bytes.store(0, Ordering::Relaxed);
        self.downcast_rows.store(0, Ordering::Relaxed);
        for c in &self.bytes_by_sender {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Recycles `Vec<f64>` payload capacity across messages on one worker.
///
/// The distributed hot loop packs factor rows into a fresh `Vec<f64>` for
/// every (destination, mode, iteration) triple and drops the received
/// vector right after unpacking — per step that is thousands of
/// allocations whose sizes repeat exactly.  The pool keeps returned
/// buffers and hands them back cleared, so steady-state iterations run
/// allocation-free on the payload path.
///
/// Pooling is invisible to [`CommStats`]: byte accounting uses
/// [`Payload::size_bytes`], which reads the *length*, never the capacity,
/// so recycled buffers produce bit-identical traffic totals.  The
/// `buffer_pool_is_invisible_to_comm_accounting` test in `dismastd-core`
/// pins that invariant end-to-end.
///
/// Not thread-safe by design: each worker owns one pool, matching the
/// share-nothing SPMD layout.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<f64>>,
    enabled: bool,
    hits: u64,
    misses: u64,
    /// Retention cap; buffers returned beyond this are simply dropped.
    max_retained: usize,
}

impl BufferPool {
    /// Buffers retained at most per pool (more than the hot loop's
    /// destinations-per-exchange on any realistic worker grid).
    const DEFAULT_MAX_RETAINED: usize = 64;

    /// Fresh pool; when `enabled` is false every `take` allocates and
    /// every `put` drops, giving an exact no-pooling baseline.
    pub fn new(enabled: bool) -> Self {
        BufferPool {
            free: Vec::new(),
            enabled,
            hits: 0,
            misses: 0,
            max_retained: Self::DEFAULT_MAX_RETAINED,
        }
    }

    /// An empty `Vec<f64>`, recycled when one is available.
    pub fn take(&mut self) -> Vec<f64> {
        if self.enabled {
            if let Some(mut buf) = self.free.pop() {
                buf.clear();
                self.hits += 1;
                return buf;
            }
        }
        self.misses += 1;
        // lint:allow(alloc_hygiene): pool miss allocates by design — steady state is all hits (pinned by the count-alloc integration test)
        Vec::new()
    }

    /// Returns a buffer's capacity to the pool (drops it when pooling is
    /// off, the buffer never grew, or the pool is full).
    pub fn put(&mut self, buf: Vec<f64>) {
        if self.enabled && buf.capacity() > 0 && self.free.len() < self.max_retained {
            self.free.push(buf);
        }
    }

    /// Takes recycled (`hits`) vs freshly allocated (`misses`) counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Whether `take` may recycle at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Plain-data copy of [`CommStats`] counters.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct CommStatsSnapshot {
    /// Total payload bytes that crossed worker boundaries.
    pub bytes: u64,
    /// Number of remote messages.
    pub messages: u64,
    /// Number of collective operations entered.
    pub collectives: u64,
    /// Extra wire copies injected by a fault plan (retransmissions after
    /// drops, spurious duplicates).  Zero in fault-free runs.
    pub retransmits: u64,
    /// Payload bytes of those extra copies (wire bytes = `bytes` +
    /// `retransmit_bytes`).
    pub retransmit_bytes: u64,
    /// Duplicate deliveries the receive path suppressed.
    pub duplicates_suppressed: u64,
    /// Bytes recorded with a sender rank outside the per-sender breakdown
    /// (a caller bug, asserted in debug builds).  Zero in correct runs;
    /// kept so `bytes == Σ bytes_by_sender + unattributed_bytes` is an
    /// invariant rather than a hope.
    pub unattributed_bytes: u64,
    /// Encoded size of compressed frames (what actually crossed the wire
    /// for them).  Zero when compression never fired.
    pub compressed_bytes: u64,
    /// Flat-equivalent size of those same frames.  `bytes` counts them at
    /// this size, so `wire_bytes() = bytes − compressed_logical_bytes +
    /// compressed_bytes`.
    pub compressed_logical_bytes: u64,
    /// Factor rows shipped as f32 instead of f64.
    pub downcast_rows: u64,
    /// Bytes sent per worker rank (empty unless the stats were created
    /// with [`CommStats::with_world`]).
    pub bytes_by_sender: Vec<u64>,
}

// Hand-written so `unattributed_bytes` and the compression counters are
// optional on decode: session checkpoints serialized before those fields
// existed read back as zero instead of failing with a missing-field error
// (the vendored derive requires every field).
impl Deserialize for CommStatsSnapshot {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::new("expected object for `CommStatsSnapshot`"))?;
        Ok(CommStatsSnapshot {
            bytes: Deserialize::from_value(serde::field(obj, "bytes")?)?,
            messages: Deserialize::from_value(serde::field(obj, "messages")?)?,
            collectives: Deserialize::from_value(serde::field(obj, "collectives")?)?,
            retransmits: Deserialize::from_value(serde::field(obj, "retransmits")?)?,
            retransmit_bytes: Deserialize::from_value(serde::field(obj, "retransmit_bytes")?)?,
            duplicates_suppressed: Deserialize::from_value(serde::field(
                obj,
                "duplicates_suppressed",
            )?)?,
            unattributed_bytes: match serde::field(obj, "unattributed_bytes") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => 0,
            },
            compressed_bytes: match serde::field(obj, "compressed_bytes") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => 0,
            },
            compressed_logical_bytes: match serde::field(obj, "compressed_logical_bytes") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => 0,
            },
            downcast_rows: match serde::field(obj, "downcast_rows") {
                Ok(nested) => Deserialize::from_value(nested)?,
                Err(_) => 0,
            },
            bytes_by_sender: Deserialize::from_value(serde::field(obj, "bytes_by_sender")?)?,
        })
    }
}

impl CommStatsSnapshot {
    /// Whether the counters are mutually consistent:
    ///
    /// - `bytes == Σ bytes_by_sender + unattributed_bytes` (trivially true
    ///   for totals-only snapshots with no breakdown recorded);
    /// - `compressed_logical_bytes ≤ bytes` — every compressed frame was
    ///   also counted at its logical size;
    /// - `compressed_bytes ≤ compressed_logical_bytes` — the adaptive
    ///   encoder only emits frames that beat the flat payload, so wire
    ///   never exceeds logical.
    pub fn reconciles(&self) -> bool {
        let per_sender = self.bytes_by_sender.is_empty()
            || self.bytes == self.bytes_by_sender.iter().sum::<u64>() + self.unattributed_bytes;
        per_sender
            && self.compressed_logical_bytes <= self.bytes
            && self.compressed_bytes <= self.compressed_logical_bytes
    }

    /// Bytes that actually crossed the wire, with compressed frames at
    /// their encoded size (injected retransmit copies not included — see
    /// `retransmit_bytes`).  Equals `bytes` when compression never fired.
    pub fn wire_bytes(&self) -> u64 {
        self.bytes - self.compressed_logical_bytes + self.compressed_bytes
    }

    /// Overall logical-to-wire compression ratio (`≥ 1.0`; exactly 1.0
    /// when nothing was compressed or nothing was sent).
    pub fn compression_ratio(&self) -> f64 {
        let wire = self.wire_bytes();
        if wire == 0 {
            1.0
        } else {
            self.bytes as f64 / wire as f64
        }
    }

    /// Difference of two snapshots (for per-phase accounting).
    pub fn delta_since(&self, earlier: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            bytes: self.bytes - earlier.bytes,
            messages: self.messages - earlier.messages,
            collectives: self.collectives - earlier.collectives,
            retransmits: self.retransmits - earlier.retransmits,
            retransmit_bytes: self.retransmit_bytes - earlier.retransmit_bytes,
            duplicates_suppressed: self.duplicates_suppressed - earlier.duplicates_suppressed,
            unattributed_bytes: self.unattributed_bytes - earlier.unattributed_bytes,
            compressed_bytes: self.compressed_bytes - earlier.compressed_bytes,
            compressed_logical_bytes: self.compressed_logical_bytes
                - earlier.compressed_logical_bytes,
            downcast_rows: self.downcast_rows - earlier.downcast_rows,
            bytes_by_sender: self
                .bytes_by_sender
                .iter()
                .zip(earlier.bytes_by_sender.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Accumulates another snapshot into this one (the streaming session
    /// uses this to keep lifetime totals across steps for checkpoints).
    pub fn merge(&mut self, other: &CommStatsSnapshot) {
        self.bytes += other.bytes;
        self.messages += other.messages;
        self.collectives += other.collectives;
        self.retransmits += other.retransmits;
        self.retransmit_bytes += other.retransmit_bytes;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.unattributed_bytes += other.unattributed_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.compressed_logical_bytes += other.compressed_logical_bytes;
        self.downcast_rows += other.downcast_rows;
        if self.bytes_by_sender.len() < other.bytes_by_sender.len() {
            self.bytes_by_sender.resize(other.bytes_by_sender.len(), 0);
        }
        for (a, b) in self.bytes_by_sender.iter_mut().zip(&other.bytes_by_sender) {
            *a += b;
        }
    }

    /// Ratio of the busiest sender's bytes to the mean (1.0 = perfectly
    /// even; 0.0 when nothing was sent or no breakdown was recorded).
    pub fn sender_imbalance(&self) -> f64 {
        if self.bytes_by_sender.is_empty() {
            return 0.0;
        }
        let mean =
            self.bytes_by_sender.iter().sum::<u64>() as f64 / self.bytes_by_sender.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        // lint:allow(panic_path): invariant — emptiness was handled above
        *self.bytes_by_sender.iter().max().expect("non-empty") as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::F64(vec![1.0; 10]).size_bytes(), 80);
        assert_eq!(Payload::U64(vec![1; 3]).size_bytes(), 24);
        assert_eq!(
            Payload::Bytes(bytes::Bytes::from_static(b"abcd")).size_bytes(),
            4
        );
        assert_eq!(Payload::Empty.size_bytes(), 0);
    }

    #[test]
    fn payload_unwrap_helpers() {
        assert_eq!(Payload::F64(vec![2.0]).into_f64(), vec![2.0]);
        assert_eq!(Payload::U64(vec![3]).into_u64(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn payload_unwrap_wrong_type_panics() {
        Payload::Empty.into_f64();
    }

    #[test]
    fn stats_accumulate_and_snapshot() {
        let s = CommStats::new();
        s.record_message(100);
        s.record_message(50);
        s.record_collective();
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 150);
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.collectives, 1);
    }

    #[test]
    fn stats_reset_and_delta() {
        let s = CommStats::new();
        s.record_message(10);
        let first = s.snapshot();
        s.record_message(30);
        let second = s.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.bytes, 30);
        assert_eq!(d.messages, 1);
        s.reset();
        assert_eq!(s.snapshot(), CommStatsSnapshot::default());
    }

    #[test]
    fn bytes_and_empty_payload_size_accounting() {
        // Bytes payloads report their exact length, Empty reports zero —
        // including the degenerate zero-length blob.
        assert_eq!(
            Payload::Bytes(bytes::Bytes::from(vec![0u8; 1000])).size_bytes(),
            1000
        );
        assert_eq!(
            Payload::Bytes(bytes::Bytes::from(Vec::new())).size_bytes(),
            0
        );
        assert_eq!(Payload::Empty.size_bytes(), 0);
        // Cloning a Bytes payload must not change its accounted size.
        let b = Payload::Bytes(bytes::Bytes::from_static(b"wire"));
        assert_eq!(b.clone().size_bytes(), b.size_bytes());
    }

    #[test]
    fn payload_kind_and_try_unwrap() {
        assert_eq!(Payload::F64(vec![1.0]).kind(), "F64");
        assert_eq!(Payload::U64(vec![1]).kind(), "U64");
        assert_eq!(
            Payload::Bytes(bytes::Bytes::from_static(b"x")).kind(),
            "Bytes"
        );
        assert_eq!(Payload::Empty.kind(), "Empty");
        assert_eq!(Payload::F64(vec![2.0]).try_into_f64().unwrap(), vec![2.0]);
        assert_eq!(Payload::U64(vec![3]).try_into_u64().unwrap(), vec![3]);
        assert_eq!(
            Payload::Empty.try_into_f64(),
            Err(ClusterError::TypeMismatch {
                expected: "F64".into(),
                found: "Empty".into(),
            })
        );
        assert_eq!(
            Payload::F64(vec![1.0]).try_into_u64(),
            Err(ClusterError::TypeMismatch {
                expected: "U64".into(),
                found: "F64".into(),
            })
        );
    }

    #[test]
    fn new_stats_have_no_per_sender_breakdown() {
        // `CommStats::new()` tracks totals only: attributing a message to
        // any sender rank still counts globally but records no breakdown.
        let s = CommStats::new();
        s.record_message_from(0, 64);
        s.record_message_from(7, 16);
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 80);
        assert_eq!(snap.messages, 2);
        assert!(snap.bytes_by_sender.is_empty());
        assert_eq!(snap.sender_imbalance(), 0.0);
    }

    #[test]
    fn retransmit_and_duplicate_counters_are_separate() {
        let s = CommStats::new();
        s.record_message(100);
        s.record_retransmit(100); // the dropped copy's resend
        s.record_duplicate_suppressed();
        let snap = s.snapshot();
        // Logical totals are unchanged by the extra wire copy.
        assert_eq!(snap.bytes, 100);
        assert_eq!(snap.messages, 1);
        assert_eq!(snap.retransmits, 1);
        assert_eq!(snap.retransmit_bytes, 100);
        assert_eq!(snap.duplicates_suppressed, 1);
        s.reset();
        assert_eq!(s.snapshot(), CommStatsSnapshot::default());
    }

    #[test]
    fn compressed_counters_reconcile_and_survive_reset() {
        let s = CommStats::with_world(2);
        // A 400-byte logical block shipped as a 210-byte frame.
        s.record_message_from(0, 400);
        s.record_compressed(210, 400, 50);
        // A flat message alongside it.
        s.record_message_from(1, 100);
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 500);
        assert_eq!(snap.compressed_bytes, 210);
        assert_eq!(snap.compressed_logical_bytes, 400);
        assert_eq!(snap.downcast_rows, 50);
        assert_eq!(snap.wire_bytes(), 310);
        assert!(snap.reconciles());
        assert!((snap.compression_ratio() - 500.0 / 310.0).abs() < 1e-12);
        s.reset();
        let zeroed = s.snapshot();
        assert_eq!(zeroed.compressed_bytes, 0);
        assert_eq!(zeroed.compressed_logical_bytes, 0);
        assert_eq!(zeroed.downcast_rows, 0);
        assert_eq!(zeroed.wire_bytes(), 0);
        assert_eq!(zeroed.compression_ratio(), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must beat the flat payload")]
    fn compressed_frame_losing_to_flat_is_a_codec_bug() {
        CommStats::new().record_compressed(400, 400, 1);
    }

    #[test]
    fn reconciles_rejects_inconsistent_compression_counters() {
        // Compressed frames counted beyond the logical total.
        let drifted = CommStatsSnapshot {
            bytes: 100,
            compressed_logical_bytes: 150,
            compressed_bytes: 80,
            ..CommStatsSnapshot::default()
        };
        assert!(!drifted.reconciles());
        // Wire larger than logical: the adaptive encoder never does this.
        let inflated = CommStatsSnapshot {
            bytes: 200,
            compressed_logical_bytes: 100,
            compressed_bytes: 120,
            ..CommStatsSnapshot::default()
        };
        assert!(!inflated.reconciles());
    }

    #[test]
    fn compressed_counters_merge_and_delta() {
        let s = CommStats::new();
        s.record_message(400);
        s.record_compressed(200, 400, 10);
        let first = s.snapshot();
        s.record_message(80);
        s.record_compressed(40, 80, 2);
        let d = s.snapshot().delta_since(&first);
        assert_eq!(d.compressed_bytes, 40);
        assert_eq!(d.compressed_logical_bytes, 80);
        assert_eq!(d.downcast_rows, 2);
        let mut total = first.clone();
        total.merge(&d);
        assert_eq!(total, s.snapshot());
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a = CommStats::with_world(2);
        a.record_message_from(0, 10);
        a.record_collective();
        let b = CommStats::with_world(2);
        b.record_message_from(1, 30);
        b.record_retransmit(30);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.bytes, 40);
        assert_eq!(total.messages, 2);
        assert_eq!(total.collectives, 1);
        assert_eq!(total.retransmits, 1);
        assert_eq!(total.bytes_by_sender, vec![10, 30]);
        // Merging into a breakdown-free snapshot grows the breakdown.
        let mut plain = CommStats::new().snapshot();
        plain.merge(&b.snapshot());
        assert_eq!(plain.bytes_by_sender, vec![0, 30]);
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let mut pool = BufferPool::new(true);
        let mut a = pool.take();
        assert_eq!(pool.stats(), (0, 1)); // first take allocates
        a.extend_from_slice(&[1.0; 100]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert_eq!(pool.stats(), (1, 1));
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert_eq!(b.capacity(), cap, "capacity must survive the round trip");
    }

    #[test]
    fn disabled_pool_never_retains() {
        let mut pool = BufferPool::new(false);
        let mut a = pool.take();
        a.extend_from_slice(&[1.0; 10]);
        pool.put(a);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.take().capacity(), 0);
        assert_eq!(pool.stats(), (0, 2));
        assert!(!pool.is_enabled());
    }

    #[test]
    fn pool_drops_beyond_retention_cap_and_empty_buffers() {
        let mut pool = BufferPool::new(true);
        pool.put(Vec::new()); // zero capacity: not worth keeping
        assert_eq!(pool.idle(), 0);
        for _ in 0..(BufferPool::DEFAULT_MAX_RETAINED + 10) {
            pool.put(vec![0.0; 4]);
        }
        assert_eq!(pool.idle(), BufferPool::DEFAULT_MAX_RETAINED);
    }

    #[test]
    fn pooled_payload_bytes_use_length_not_capacity() {
        // The accounting invariant pooling relies on: a recycled buffer
        // with large capacity but short contents reports only its length.
        let mut pool = BufferPool::new(true);
        pool.put(vec![0.0; 1000]);
        let mut buf = pool.take();
        buf.extend_from_slice(&[1.0, 2.0]);
        assert!(buf.capacity() >= 1000);
        assert_eq!(Payload::F64(buf).size_bytes(), 16);
    }
}

#[cfg(test)]
mod per_sender_tests {
    use super::*;

    #[test]
    fn per_sender_attribution() {
        let s = CommStats::with_world(3);
        s.record_message_from(0, 100);
        s.record_message_from(2, 50);
        s.record_message_from(2, 25);
        let snap = s.snapshot();
        assert_eq!(snap.bytes, 175);
        assert_eq!(snap.bytes_by_sender, vec![100, 0, 75]);
    }

    #[test]
    fn sender_imbalance_metric() {
        let s = CommStats::with_world(2);
        assert_eq!(s.snapshot().sender_imbalance(), 0.0); // nothing sent
        s.record_message_from(0, 300);
        s.record_message_from(1, 100);
        let snap = s.snapshot();
        assert!((snap.sender_imbalance() - 1.5).abs() < 1e-12);
        // Breakdown-free stats report 0.
        assert_eq!(CommStats::new().snapshot().sender_imbalance(), 0.0);
    }

    #[test]
    fn delta_handles_sender_vectors() {
        let s = CommStats::with_world(2);
        s.record_message_from(0, 10);
        let a = s.snapshot();
        s.record_message_from(1, 20);
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.bytes_by_sender, vec![0, 20]);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "outside per-sender breakdown")
    )]
    fn out_of_range_sender_asserts_in_debug_and_reconciles_in_release() {
        let s = CommStats::with_world(1);
        s.record_message_from(5, 40); // caller bug: debug builds panic here
        let snap = s.snapshot();
        // Release builds keep totals and the reconciliation invariant.
        assert_eq!(snap.bytes, 40);
        assert_eq!(snap.bytes_by_sender, vec![0]);
        assert_eq!(snap.unattributed_bytes, 40);
        assert!(snap.reconciles());
    }

    #[test]
    fn snapshots_reconcile_per_sender_bytes() {
        let s = CommStats::with_world(3);
        s.record_message_from(0, 100);
        s.record_message_from(2, 55);
        let snap = s.snapshot();
        assert!(snap.reconciles());
        assert_eq!(snap.unattributed_bytes, 0);
        // Totals-only stats reconcile trivially.
        let plain = CommStats::new();
        plain.record_message_from(9, 10);
        assert!(plain.snapshot().reconciles());
        // A hand-built drifting snapshot is caught.
        let drifted = CommStatsSnapshot {
            bytes: 100,
            bytes_by_sender: vec![40, 40],
            ..CommStatsSnapshot::default()
        };
        assert!(!drifted.reconciles());
    }

    #[test]
    fn snapshot_without_unattributed_field_still_decodes() {
        // A checkpoint serialized before `unattributed_bytes` existed.
        let legacy = r#"{"bytes":10,"messages":1,"collectives":2,"retransmits":0,
            "retransmit_bytes":0,"duplicates_suppressed":0,"bytes_by_sender":[10,0]}"#;
        let snap: CommStatsSnapshot = serde_json::from_str(legacy).unwrap();
        assert_eq!(snap.bytes, 10);
        assert_eq!(snap.unattributed_bytes, 0);
        assert_eq!(snap.compressed_bytes, 0);
        assert_eq!(snap.compressed_logical_bytes, 0);
        assert_eq!(snap.downcast_rows, 0);
        assert_eq!(snap.wire_bytes(), 10);
        assert_eq!(snap.bytes_by_sender, vec![10, 0]);
        assert!(snap.reconciles());
        // And the current format round-trips.
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("unattributed_bytes"));
        let back: CommStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}

//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a *pure function of its seed*: whether a given
//! message is dropped, duplicated, or delayed depends only on
//! `(seed, src, dst, msg_id)`, so a chaos run replays bit-identically —
//! the property the recovery tests rely on.  Worker crashes are armed
//! counters keyed on the collective sequence number, and fire a bounded
//! number of times, so a retried step does not re-crash forever.
//!
//! Injected message faults are *masked* faults: a dropped first copy is
//! retransmitted by the sender after a short timeout, and a spurious
//! duplicate is suppressed by the receiver's per-sender sequence check.
//! Logical traffic totals in [`CommStats`](crate::CommStats) are therefore
//! unchanged; the wire overhead lands in the separate `retransmits` /
//! `retransmit_bytes` / `duplicates_suppressed` counters.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// What the simulated network does with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Hold the message for the given duration, then deliver.
    Delay(Duration),
    /// Lose the first copy; the sender retransmits after its timeout.
    DropThenRetransmit,
    /// Deliver twice (spurious retransmit); the receiver must suppress
    /// the second copy.
    Duplicate,
    /// Flip a byte in flight.  Only opaque byte frames are tamperable on
    /// the typed transport (other payloads deliver unchanged); the frame
    /// decoder's validation turns the corruption into a typed error.
    Corrupt,
}

/// An armed crash: worker `rank` fails on entry to its collective number
/// `at_collective`, at most `remaining` times across the plan's lifetime.
#[derive(Debug)]
struct CrashPoint {
    rank: usize,
    at_collective: u64,
    remaining: AtomicU32,
}

/// A seeded, reproducible schedule of injected faults.
///
/// Build one with [`FaultPlan::seeded`] plus the builder methods, wrap it
/// in an `Arc`, and hand it to the cluster via
/// [`ClusterOptions`](crate::ClusterOptions).  Sharing the *same* `Arc`
/// across retries is what makes one-shot crashes one-shot.
///
/// ```
/// use dismastd_cluster::FaultPlan;
/// use std::time::Duration;
/// let plan = FaultPlan::seeded(7)
///     .with_message_drops(100)            // 10% of messages lose a copy
///     .with_duplicates(50)                // 5% arrive twice
///     .with_delays(100, Duration::from_micros(200))
///     .crash_worker_at_collective(1, 3);  // worker 1 dies once, at its 4th collective
/// assert_eq!(plan.remaining_crashes(), 1);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_permille: u32,
    duplicate_permille: u32,
    delay_permille: u32,
    corrupt_permille: u32,
    delay: Duration,
    retransmit_delay: Duration,
    crashes: Vec<CrashPoint>,
}

/// Plans compare by configuration; armed-crash *state* (how many times a
/// crash has already fired) is deliberately ignored.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.drop_permille == other.drop_permille
            && self.duplicate_permille == other.duplicate_permille
            && self.delay_permille == other.delay_permille
            && self.corrupt_permille == other.corrupt_permille
            && self.delay == other.delay
            && self.retransmit_delay == other.retransmit_delay
            && self.crashes.len() == other.crashes.len()
            && self
                .crashes
                .iter()
                .zip(&other.crashes)
                .all(|(a, b)| a.rank == b.rank && a.at_collective == b.at_collective)
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// A fault-free plan with the given seed; add faults via the builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            retransmit_delay: Duration::from_micros(100),
            ..Self::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drops the first copy of roughly `permille`/1000 of all remote
    /// messages (each is retransmitted after [`Self::with_retransmit_delay`]).
    pub fn with_message_drops(mut self, permille: u32) -> Self {
        self.drop_permille = permille.min(1000);
        self
    }

    /// Delivers roughly `permille`/1000 of all remote messages twice.
    pub fn with_duplicates(mut self, permille: u32) -> Self {
        self.duplicate_permille = permille.min(1000);
        self
    }

    /// Delays roughly `permille`/1000 of all remote messages by `delay`.
    pub fn with_delays(mut self, permille: u32, delay: Duration) -> Self {
        self.delay_permille = permille.min(1000);
        self.delay = delay;
        self
    }

    /// Corrupts (byte-flips) roughly `permille`/1000 of all remote opaque
    /// byte frames in flight; typed payloads pass through unchanged.
    pub fn with_corruption(mut self, permille: u32) -> Self {
        self.corrupt_permille = permille.min(1000);
        self
    }

    /// Simulated retransmission timeout for dropped messages.
    pub fn with_retransmit_delay(mut self, delay: Duration) -> Self {
        self.retransmit_delay = delay;
        self
    }

    /// Arms a one-shot crash: worker `rank` fails on entry to collective
    /// number `k` (its internal sequence counter), the first time it gets
    /// there.  Subsequent runs sharing this plan proceed normally — the
    /// recovery driver relies on that to make a replayed step succeed.
    pub fn crash_worker_at_collective(self, rank: usize, k: u64) -> Self {
        self.crash_worker_at_collective_times(rank, k, 1)
    }

    /// Like [`Self::crash_worker_at_collective`] but firing up to `times`
    /// times (e.g. to exhaust a bounded retry budget in tests).
    pub fn crash_worker_at_collective_times(mut self, rank: usize, k: u64, times: u32) -> Self {
        self.crashes.push(CrashPoint {
            rank,
            at_collective: k,
            remaining: AtomicU32::new(times),
        });
        self
    }

    /// Total crash firings still armed across all crash points.
    pub fn remaining_crashes(&self) -> u32 {
        self.crashes
            .iter()
            .map(|c| c.remaining.load(Ordering::SeqCst))
            .sum()
    }

    /// True when the plan can never inject anything (the fast-path check
    /// the runtime uses to skip per-message bookkeeping).
    pub fn is_inert(&self) -> bool {
        self.drop_permille == 0
            && self.duplicate_permille == 0
            && self.delay_permille == 0
            && self.corrupt_permille == 0
            && self.crashes.is_empty()
    }

    /// Consumes one armed firing of a crash point matching `(rank, seq)`.
    /// Returns `true` exactly `times` times per matching point, then
    /// permanently `false` — deterministic across identical call orders.
    pub(crate) fn take_crash(&self, rank: usize, seq: u64) -> bool {
        self.crashes
            .iter()
            .filter(|c| c.rank == rank && c.at_collective == seq)
            .any(|c| {
                c.remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            })
    }

    /// The fate of message `id` from `src` to `dst` — a pure function of
    /// the plan's seed and the message coordinates.
    pub(crate) fn fate(&self, src: usize, dst: usize, id: u64) -> MessageFate {
        if self.drop_permille == 0
            && self.duplicate_permille == 0
            && self.delay_permille == 0
            && self.corrupt_permille == 0
        {
            return MessageFate::Deliver;
        }
        let h =
            splitmix64(self.seed ^ splitmix64(((src as u64) << 32) | dst as u64) ^ splitmix64(id));
        let roll = (h % 1000) as u32;
        if roll < self.drop_permille {
            MessageFate::DropThenRetransmit
        } else if roll < self.drop_permille + self.duplicate_permille {
            MessageFate::Duplicate
        } else if roll < self.drop_permille + self.duplicate_permille + self.delay_permille {
            MessageFate::Delay(self.delay)
        } else if roll
            < self.drop_permille
                + self.duplicate_permille
                + self.delay_permille
                + self.corrupt_permille
        {
            MessageFate::Corrupt
        } else {
            MessageFate::Deliver
        }
    }

    /// Simulated retransmission timeout (see [`Self::with_retransmit_delay`]).
    pub(crate) fn retransmit_delay(&self) -> Duration {
        self.retransmit_delay
    }
}

/// SplitMix64 finaliser — a well-mixed 64-bit hash, enough to make fate
/// decisions look random while staying a pure function of the inputs.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic() {
        let a = FaultPlan::seeded(42)
            .with_message_drops(200)
            .with_duplicates(100);
        let b = FaultPlan::seeded(42)
            .with_message_drops(200)
            .with_duplicates(100);
        for id in 0..500u64 {
            assert_eq!(a.fate(0, 1, id), b.fate(0, 1, id));
        }
    }

    #[test]
    fn fate_rates_roughly_match_permille() {
        let plan = FaultPlan::seeded(1).with_message_drops(250);
        let drops = (0..4000u64)
            .filter(|&id| plan.fate(0, 1, id) == MessageFate::DropThenRetransmit)
            .count();
        // 25% ± generous slack.
        assert!((600..1400).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1).with_message_drops(500);
        let b = FaultPlan::seeded(2).with_message_drops(500);
        let differs = (0..200u64).any(|id| a.fate(0, 1, id) != b.fate(0, 1, id));
        assert!(differs);
    }

    #[test]
    fn crash_points_are_consumed() {
        let plan = FaultPlan::seeded(0).crash_worker_at_collective(2, 5);
        assert!(!plan.take_crash(1, 5), "wrong rank must not fire");
        assert!(!plan.take_crash(2, 4), "wrong collective must not fire");
        assert!(plan.take_crash(2, 5), "armed crash fires once");
        assert!(!plan.take_crash(2, 5), "one-shot crash must not re-fire");
        assert_eq!(plan.remaining_crashes(), 0);
    }

    #[test]
    fn multi_shot_crashes_fire_n_times() {
        let plan = FaultPlan::seeded(0).crash_worker_at_collective_times(0, 1, 3);
        for _ in 0..3 {
            assert!(plan.take_crash(0, 1));
        }
        assert!(!plan.take_crash(0, 1));
    }

    #[test]
    fn inert_plan_detection() {
        assert!(FaultPlan::seeded(9).is_inert());
        assert!(!FaultPlan::seeded(9).with_message_drops(1).is_inert());
        assert!(!FaultPlan::seeded(9).with_corruption(1).is_inert());
        assert!(!FaultPlan::seeded(9)
            .crash_worker_at_collective(0, 0)
            .is_inert());
    }

    #[test]
    fn corruption_rolls_deterministically_and_separately() {
        let plan = FaultPlan::seeded(5)
            .with_message_drops(100)
            .with_corruption(200);
        let corrupt = (0..4000u64)
            .filter(|&id| plan.fate(0, 1, id) == MessageFate::Corrupt)
            .count();
        assert!((400..1200).contains(&corrupt), "corrupt = {corrupt}");
        let replay = FaultPlan::seeded(5)
            .with_message_drops(100)
            .with_corruption(200);
        for id in 0..500u64 {
            assert_eq!(plan.fate(0, 1, id), replay.fate(0, 1, id));
        }
        // Corruption-only plans never drop or duplicate.
        let only = FaultPlan::seeded(5).with_corruption(1000);
        for id in 0..200u64 {
            assert_eq!(only.fate(0, 1, id), MessageFate::Corrupt);
        }
        assert_ne!(plan, FaultPlan::seeded(5).with_message_drops(100));
    }

    #[test]
    fn plans_compare_by_configuration() {
        let a = FaultPlan::seeded(3).crash_worker_at_collective(1, 2);
        let b = FaultPlan::seeded(3).crash_worker_at_collective(1, 2);
        assert_eq!(a, b);
        a.take_crash(1, 2);
        assert_eq!(a, b, "armed state is ignored by equality");
        assert_ne!(a, FaultPlan::seeded(4).crash_worker_at_collective(1, 2));
    }
}

//! # dismastd-cluster
//!
//! An in-process, multi-threaded **cluster simulator**: the distributed
//! substrate DisMASTD runs on in this reproduction.
//!
//! The paper evaluates on a 15-node Spark cluster.  Here each "worker node"
//! is an OS thread executing the same SPMD closure; workers communicate
//! exclusively through the [`WorkerCtx`] message-passing API (point-to-point
//! sends, barriers, broadcasts, all-reduce, all-to-all exchange), and every
//! byte crossing a worker boundary is tallied in [`CommStats`].  That keeps
//! the quantities the paper reasons about — per-worker compute, collective
//! counts, bytes on the network, load balance — faithful, while the actual
//! data movement is a channel send.
//!
//! [`CostModel`] adds the Spark-flavoured overheads (task startup, network
//! bandwidth/latency) that the experiment harness uses to model cluster
//! wall-clock from measured compute + counted bytes (the effect behind the
//! paper's Fig. 7 observation that startup costs dominate small datasets).
//!
//! The runtime is **fault-tolerant**: failures are typed ([`ClusterError`]),
//! a crashed worker aborts its peers instead of deadlocking them, every
//! primitive has a fallible `try_*` variant, and deterministic chaos can be
//! injected via a seeded [`FaultPlan`] through [`ClusterOptions`].

pub mod clock;
pub mod comm;
pub mod cost;
pub mod error;
pub mod fault;
pub mod runtime;
pub mod sim;
pub mod supervisor;
pub mod wire;

pub use clock::{Clock, RealClock, SharedClock, VirtualClock};
pub use comm::{BufferPool, CommStats, CommStatsSnapshot, Payload};
pub use cost::CostModel;
pub use error::{ClusterError, ClusterResult};
pub use fault::FaultPlan;
pub use runtime::{Cluster, ClusterOptions, Framed, PendingExchange, WorkerCtx};
pub use sim::{CrashAndRejoin, PartitionWindow, SimOptions, SimProbe};
pub use supervisor::{HealAction, HealPolicy, Supervisor};
pub use wire::{decode_rows, maybe_compress, AllreduceAlgo, CommPolicy, WireMeta};

#[cfg(test)]
mod proptests {
    use crate::{Cluster, Payload};
    use proptest::prelude::*;

    /// A random messaging plan: (src, dst, tag, value) tuples with unique
    /// (src, dst, tag) triples so expected deliveries are unambiguous.
    fn plan_strategy(world: usize) -> impl Strategy<Value = Vec<(usize, usize, u64, f64)>> {
        prop::collection::btree_set((0..world, 0..world, 0u64..8), 0..24).prop_map(|set| {
            set.into_iter()
                .enumerate()
                .map(|(i, (s, d, t))| (s, d, t, i as f64))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Arbitrary tagged point-to-point patterns neither deadlock nor
        /// misdeliver: every worker receives exactly what was addressed to
        /// it, matched by (src, tag), regardless of send/receive order.
        #[test]
        fn random_message_patterns_deliver_exactly(
            world in 1usize..5,
            plan in (1usize..5).prop_flat_map(plan_strategy),
        ) {
            let plan: Vec<(usize, usize, u64, f64)> = plan
                .into_iter()
                .filter(|&(s, d, _, _)| s < world && d < world)
                .collect();
            let plan_ref = &plan;
            let results = Cluster::run(world, move |ctx| {
                let me = ctx.rank();
                // Phase 1: send everything this rank originates.
                for &(s, d, t, v) in plan_ref {
                    if s == me {
                        ctx.send(d, t, Payload::F64(vec![v]));
                    }
                }
                // Phase 2: receive everything addressed here (any order).
                let mut got = Vec::new();
                for &(s, d, t, _) in plan_ref {
                    if d == me {
                        got.push((s, t, ctx.recv(s, t).into_f64()[0]));
                    }
                }
                got
            }).unwrap();
            for (me, got) in results.into_iter().enumerate() {
                for (s, t, v) in got {
                    let expected = plan
                        .iter()
                        .find(|&&(ps, pd, pt, _)| ps == s && pd == me && pt == t)
                        .expect("message was planned")
                        .3;
                    prop_assert_eq!(v, expected);
                }
            }
        }

        /// Chained collectives on random worlds stay consistent.
        #[test]
        fn collective_chains_are_consistent(world in 1usize..6, rounds in 1usize..5) {
            let results = Cluster::run(world, |ctx| {
                let mut acc = 0.0;
                for round in 0..rounds {
                    acc += ctx.allreduce_sum_scalar((ctx.rank() + round) as f64);
                    ctx.barrier();
                }
                acc
            }).unwrap();
            let expected: f64 = (0..rounds)
                .map(|round| {
                    (0..world).map(|r| (r + round) as f64).sum::<f64>()
                })
                .sum();
            for r in results {
                prop_assert!((r - expected).abs() < 1e-12);
            }
        }
    }
}

//! Deterministic simulation harness (DST) for the cluster runtime.
//!
//! [`SimNet`] runs the existing worker closures as cooperatively-scheduled
//! tasks over a **virtual clock**: at any instant exactly one worker
//! thread holds the run token, every hand-off point (message post, receive
//! block, sleep, exit) consults a seeded RNG, and when no task is runnable
//! the scheduler's `run_until_idle` loop advances virtual time straight to
//! the next event — a pending message delivery, a sleep expiry, or a
//! receive deadline.  Chaos tests therefore stop burning wall-clock (a 30s
//! backstop expires instantly) and a failing run replays exactly from its
//! seed: same seed ⇒ identical event trace ⇒ bit-identical factors.
//!
//! One `u64` seed drives everything:
//!
//! * **scheduler interleaving** — which runnable task resumes next, and
//!   whether a sender is preempted right after posting a message;
//! * **per-link latency** — each message's virtual flight time, clamped so
//!   links stay FIFO (the duplicate-suppression invariant of the runtime
//!   relies on per-sender id monotonicity *per channel*);
//! * **partitions and heals** — seeded link-down windows hold traffic
//!   until the heal instant (explicit windows can be given too);
//! * **fault fates** — the existing [`crate::fault::FaultPlan`] draws from
//!   its own seed as before, but its delays and retransmission timeouts
//!   now consume virtual time through the [`Clock`] trait.
//!
//! A genuine deadlock — every task blocked with nothing in flight — wakes
//! all blocked receivers with a typed timeout instead of hanging.
//!
//! The harness keeps the real OS threads of [`crate::Cluster`] (so worker
//! closures need no rewrite) but serialises them completely; the run is
//! single-threaded in effect, which is what makes the trace reproducible.

use crate::clock::Clock;
use crate::runtime::Msg;
use crossbeam::channel::Sender;
use std::sync::atomic::AtomicU32;
// The vendored parking_lot shim's guard is a std MutexGuard, so the std
// Condvar composes with it; waits re-assign the guard (consume-and-return
// style) and strip poisoning, matching the shim's non-poisoning contract.
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Condvar;
use std::time::Duration;

/// A link outage: messages crossing the link while `start_ns <= now <
/// end_ns` are held and delivered after the heal.
///
/// `b == usize::MAX` isolates worker `a` from everyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One endpoint of the partitioned link.
    pub a: usize,
    /// The other endpoint, or `usize::MAX` to isolate `a` entirely.
    pub b: usize,
    /// Virtual time the outage starts.
    pub start_ns: u64,
    /// Virtual time the link heals.
    pub end_ns: u64,
}

impl PartitionWindow {
    /// Whether a message from `src` to `dst` at virtual time `now` is
    /// caught by this window.
    fn holds(&self, src: usize, dst: usize, now: u64) -> bool {
        if now < self.start_ns || now >= self.end_ns {
            return false;
        }
        if self.b == usize::MAX {
            self.a == src || self.a == dst
        } else {
            (self.a == src && self.b == dst) || (self.a == dst && self.b == src)
        }
    }
}

/// A crash-and-rejoin fate: worker `rank` crashes on entry to its
/// collective number `at_collective` (once), and when the run is replayed
/// — the supervision layer restores the pre-step checkpoint and retries —
/// that rank *rejoins late*: its task starts parked in a virtual sleep of
/// `recover_delay_ns`, modelling the restarted process catching up while
/// its peers already sit in the first barrier.
///
/// The armed state lives behind `Arc`s, so cloning [`SimOptions`] across
/// retry attempts (each cluster run builds a fresh `SimNet` from the same
/// options) keeps one shared crash counter: the fate fires exactly once
/// across the whole heal loop, and the rejoin delay is applied exactly
/// once, on the first run after the crash.
#[derive(Debug, Clone)]
pub struct CrashAndRejoin {
    /// The rank that crashes, then rejoins.
    pub rank: usize,
    /// Collective sequence number the crash fires at.
    pub at_collective: u64,
    /// Virtual delay before the respawned rank reaches its first
    /// collective on the retry run; `0` draws a seeded delay.
    pub recover_delay_ns: u64,
    /// Armed crash firings (shared across `SimOptions` clones).
    remaining: Arc<AtomicU32>,
    /// Armed rejoin delays (consumed by the first post-crash run).
    rejoins: Arc<AtomicU32>,
}

impl CrashAndRejoin {
    fn new(rank: usize, at_collective: u64, recover_delay_ns: u64) -> Self {
        CrashAndRejoin {
            rank,
            at_collective,
            recover_delay_ns,
            remaining: Arc::new(AtomicU32::new(1)),
            rejoins: Arc::new(AtomicU32::new(1)),
        }
    }

    /// Consumes one armed firing for `(rank, seq)`.
    fn take_crash(&self, rank: usize, seq: u64) -> bool {
        self.rank == rank
            && self.at_collective == seq
            && self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
    }

    /// The rejoin delay to apply to `rank` this run, if the crash already
    /// fired and the delay is still armed.
    fn take_rejoin(&self, rank: usize, seed: u64) -> Option<u64> {
        if self.rank != rank || self.remaining.load(Ordering::SeqCst) != 0 {
            return None;
        }
        self.rejoins
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .ok()?;
        Some(if self.recover_delay_ns > 0 {
            self.recover_delay_ns
        } else {
            // Seeded draw, pure in (seed, rank, k): replays reproduce it.
            1 + splitmix64(seed ^ (rank as u64).rotate_left(24) ^ self.at_collective) % 100_000
        })
    }

    /// Whether the crash is still armed (not yet fired).
    pub fn is_armed(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) > 0
    }
}

/// Read-out of a finished simulation: the event-trace fingerprint, the
/// event count, and the final virtual time.  Create one, put it in
/// [`SimOptions::probe`], and read it after the run — two runs with the
/// same seed must agree on all three.
#[derive(Debug, Default)]
pub struct SimProbe {
    fingerprint: AtomicU64,
    events: AtomicU64,
    virtual_ns: AtomicU64,
}

impl SimProbe {
    /// A fresh probe.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Order-sensitive hash over every scheduler event of the run.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint.load(Ordering::SeqCst)
    }

    /// Number of scheduler events folded into the fingerprint.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Virtual nanoseconds the run consumed.
    pub fn virtual_ns(&self) -> u64 {
        self.virtual_ns.load(Ordering::SeqCst)
    }
}

/// Configuration of one simulated run; install via
/// [`crate::ClusterOptions::with_sim`].
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Drives interleaving, latencies, and seeded partitions.
    pub seed: u64,
    /// Per-message latency is drawn uniformly from `[1, max_latency_ns]`
    /// virtual nanoseconds (0 behaves as 1: links are never instantaneous,
    /// which keeps delivery strictly after the post).
    pub max_latency_ns: u64,
    /// Explicit link outages, on top of any seeded ones.
    pub partitions: Vec<PartitionWindow>,
    /// Number of additional partition windows derived from the seed.
    pub seeded_partitions: u32,
    /// Virtual horizon within which seeded partitions start; their
    /// duration is drawn from `[horizon/8, horizon/4]`.
    pub partition_horizon_ns: u64,
    /// Optional probe receiving the trace fingerprint when the run ends.
    pub probe: Option<Arc<SimProbe>>,
    /// Crash-and-rejoin fates (armed state shared across clones).
    pub crash_rejoins: Vec<CrashAndRejoin>,
}

impl SimOptions {
    /// Defaults for `seed`: microsecond-scale latencies, no partitions.
    pub fn from_seed(seed: u64) -> Self {
        SimOptions {
            seed,
            max_latency_ns: 1_000,
            partitions: Vec::new(),
            seeded_partitions: 0,
            partition_horizon_ns: 1_000_000,
            probe: None,
            crash_rejoins: Vec::new(),
        }
    }

    /// Sets the latency ceiling (virtual ns).
    pub fn with_max_latency_ns(mut self, ns: u64) -> Self {
        self.max_latency_ns = ns;
        self
    }

    /// Adds an explicit partition window.
    pub fn with_partition(mut self, w: PartitionWindow) -> Self {
        self.partitions.push(w);
        self
    }

    /// Derives `n` partition windows from the seed, starting within
    /// `horizon_ns` of virtual time.
    pub fn with_seeded_partitions(mut self, n: u32, horizon_ns: u64) -> Self {
        self.seeded_partitions = n;
        self.partition_horizon_ns = horizon_ns.max(8);
        self
    }

    /// Installs a probe for the run's trace fingerprint.
    pub fn with_probe(mut self, probe: Arc<SimProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Arms a crash-and-rejoin fate: worker `rank` crashes once at
    /// collective `k`, and on the retry run rejoins after
    /// `recover_delay_ns` of virtual time (`0` draws a seeded delay).
    /// Clone these options across retries — the armed state is shared —
    /// so the heal loop sees exactly one crash and one delayed rejoin.
    pub fn with_crash_and_rejoin(mut self, rank: usize, k: u64, recover_delay_ns: u64) -> Self {
        self.crash_rejoins
            .push(CrashAndRejoin::new(rank, k, recover_delay_ns));
        self
    }
}

/// Why a blocked receive resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitOutcome {
    /// A message was delivered to this worker's channel — retry the recv.
    Delivered,
    /// The virtual deadline passed (`deadlock` marks the no-events case
    /// where the scheduler woke every blocked task to avoid a hang).
    TimedOut { deadlock: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Thread spawned but not yet admitted by the scheduler.
    Idle,
    /// Holds the run token.
    Running,
    /// Wants the token.
    Ready,
    /// Parked in a receive; `deadline` is virtual.
    Recv { deadline: Option<u64> },
    /// Parked in a virtual sleep.
    Sleep { wake_at: u64 },
    /// Worker closure finished.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Task {
    state: TaskState,
    /// Why the last wake happened; read by the resuming thread.
    wake: Option<WaitOutcome>,
}

/// A message in virtual flight.
struct InFlight {
    deliver_at: u64,
    /// Tie-break so the heap order is total and seed-stable.
    uid: u64,
    dst: usize,
    msg: Msg,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.uid) == (other.deliver_at, other.uid)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.uid).cmp(&(other.deliver_at, other.uid))
    }
}

// Event codes folded into the trace fingerprint.
const EV_PICK: u64 = 1;
const EV_POST: u64 = 2;
const EV_FLUSH: u64 = 3;
const EV_ADVANCE: u64 = 4;
const EV_SLEEP: u64 = 5;
const EV_RECV_BLOCK: u64 = 6;
const EV_TIMEOUT: u64 = 7;
const EV_DEADLOCK: u64 = 8;
const EV_DONE: u64 = 9;

struct SimState {
    now_ns: u64,
    rng: u64,
    fingerprint: u64,
    events: u64,
    running: Option<usize>,
    live: usize,
    tasks: Vec<Task>,
    queue: BinaryHeap<Reverse<InFlight>>,
    next_uid: u64,
    /// Earliest virtual time the next message on link `src*world+dst` may
    /// arrive — keeps each link FIFO under random latencies.
    link_clock: Vec<u64>,
    senders: Vec<Sender<Msg>>,
    partitions: Vec<PartitionWindow>,
    max_latency_ns: u64,
}

impl SimState {
    fn fold(&mut self, code: u64, a: u64, b: u64) {
        self.fingerprint =
            splitmix64(self.fingerprint ^ splitmix64(code.rotate_left(17) ^ a.rotate_left(31) ^ b));
        self.events += 1;
    }

    fn next_rng(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.rng)
    }

    /// Uniform draw in `[0, n)` (n >= 1).
    fn rng_below(&mut self, n: u64) -> u64 {
        self.next_rng() % n.max(1)
    }
}

/// The scheduler + virtual network shared by all workers of one simulated
/// run.  Public API surface is crate-internal: the runtime routes through
/// it when [`SimOptions`] are installed.
pub(crate) struct SimNet {
    world: usize,
    state: Mutex<SimState>,
    cv: Condvar,
    probe: Option<Arc<SimProbe>>,
    /// The options seed, for seeded rejoin-delay draws.
    seed: u64,
    /// Crash-and-rejoin fates; armed state shared with the caller's
    /// [`SimOptions`] so it survives this run.
    crash_rejoins: Vec<CrashAndRejoin>,
}

impl SimNet {
    pub(crate) fn new(world: usize, senders: Vec<Sender<Msg>>, opts: &SimOptions) -> Self {
        let mut state = SimState {
            now_ns: 0,
            rng: splitmix64(opts.seed ^ 0xD15_A57D),
            fingerprint: splitmix64(opts.seed),
            events: 0,
            running: None,
            live: 0,
            tasks: vec![
                Task {
                    state: TaskState::Idle,
                    wake: None,
                };
                world
            ],
            queue: BinaryHeap::new(),
            next_uid: 0,
            link_clock: vec![0; world * world],
            senders,
            partitions: opts.partitions.clone(),
            max_latency_ns: opts.max_latency_ns.max(1),
        };
        // Seeded partition windows: random link (or full isolation of one
        // worker), start within the horizon, duration horizon/8..horizon/4.
        let h = opts.partition_horizon_ns.max(8);
        for _ in 0..opts.seeded_partitions {
            let a = state.rng_below(world as u64) as usize;
            let b = state.rng_below(world as u64 + 1) as usize;
            let b = if b == a || b == world { usize::MAX } else { b };
            let start_ns = state.rng_below(h);
            let dur = h / 8 + state.rng_below(h / 8 + 1);
            state.partitions.push(PartitionWindow {
                a,
                b,
                start_ns,
                end_ns: start_ns.saturating_add(dur.max(1)),
            });
        }
        SimNet {
            world,
            state: Mutex::new(state),
            cv: Condvar::new(),
            probe: opts.probe.clone(),
            seed: opts.seed,
            crash_rejoins: opts.crash_rejoins.clone(),
        }
    }

    /// Consumes one armed crash-and-rejoin firing for `(rank, seq)`; the
    /// runtime checks this at every collective entry, next to the fault
    /// plan's crash points.
    pub(crate) fn take_crash(&self, rank: usize, seq: u64) -> bool {
        self.crash_rejoins.iter().any(|c| c.take_crash(rank, seq))
    }

    /// Blocks until every worker has registered and the scheduler hands
    /// this task the run token.  Must be the first sim call of a worker.
    ///
    /// A rank whose [`CrashAndRejoin`] fate fired on an earlier run starts
    /// parked in a virtual sleep instead of Ready: the respawned worker
    /// rejoins the step late, after its seeded recovery delay, while its
    /// peers are already blocked in the first collective — the schedule the
    /// heal loop must ride out.
    pub(crate) fn worker_start(&self, rank: usize) {
        let rejoin_delay = self
            .crash_rejoins
            .iter()
            .find_map(|c| c.take_rejoin(rank, self.seed));
        let mut st = self.state.lock();
        st.tasks[rank].state = match rejoin_delay {
            Some(delay) => {
                let wake_at = st.now_ns.saturating_add(delay.max(1));
                dismastd_obs::counter_add("sim/rejoin_delays", 1);
                TaskState::Sleep { wake_at }
            }
            None => TaskState::Ready,
        };
        st.live += 1;
        if st.live == self.world {
            self.schedule(&mut st);
            self.cv.notify_all();
        }
        while st.running != Some(rank) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Releases the token for good; the scheduler moves on.  Must be the
    /// last sim call of a worker.
    pub(crate) fn worker_done(&self, rank: usize) {
        let mut st = self.state.lock();
        st.tasks[rank].state = TaskState::Done;
        st.running = None;
        let now = st.now_ns;
        st.fold(EV_DONE, rank as u64, now);
        self.schedule(&mut st);
        if st.tasks.iter().all(|t| t.state == TaskState::Done) {
            if let Some(p) = &self.probe {
                p.fingerprint.store(st.fingerprint, Ordering::SeqCst);
                p.events.store(st.events, Ordering::SeqCst);
                p.virtual_ns.store(st.now_ns, Ordering::SeqCst);
            }
        }
        self.cv.notify_all();
    }

    /// Posts `msg` onto the virtual wire.  Delivery happens at
    /// `now + latency` (later if a partition window holds the link),
    /// clamped to keep the link FIFO.  With seeded probability the sender
    /// is preempted afterwards, letting another runnable task interleave.
    pub(crate) fn post(&self, src: usize, dst: usize, msg: Msg) {
        let mut st = self.state.lock();
        let max_latency_ns = st.max_latency_ns;
        let latency = 1 + st.rng_below(max_latency_ns);
        let now = st.now_ns;
        let mut deliver_at = now.saturating_add(latency);
        let mut held = false;
        for w in &st.partitions {
            if w.holds(src, dst, now) {
                deliver_at = deliver_at.max(w.end_ns.saturating_add(latency));
                held = true;
            }
        }
        if held {
            dismastd_obs::counter_add("sim/held_messages", 1);
        }
        let link = src * self.world + dst;
        deliver_at = deliver_at.max(st.link_clock[link].saturating_add(1));
        st.link_clock[link] = deliver_at;
        let uid = st.next_uid;
        st.next_uid += 1;
        st.queue.push(Reverse(InFlight {
            deliver_at,
            uid,
            dst,
            msg,
        }));
        st.fold(EV_POST, ((src as u64) << 32) | dst as u64, deliver_at);
        dismastd_obs::counter_add("sim/messages", 1);
        // Seeded preemption point: 1-in-4 posts hand the token over.
        if st.rng_below(4) == 0 {
            st.tasks[src].state = TaskState::Ready;
            self.schedule(&mut st);
            self.cv.notify_all();
            while st.running != Some(src) {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.tasks[src].wake = None;
        }
    }

    /// Parks `rank` until a message lands in its channel or the virtual
    /// `deadline_ns` passes.  The caller drains its channel non-blockingly
    /// before and after.
    pub(crate) fn wait_for_delivery(&self, rank: usize, deadline_ns: Option<u64>) -> WaitOutcome {
        let mut st = self.state.lock();
        st.tasks[rank].state = TaskState::Recv {
            deadline: deadline_ns,
        };
        st.tasks[rank].wake = None;
        st.running = None;
        let now = st.now_ns;
        st.fold(EV_RECV_BLOCK, rank as u64, now);
        self.schedule(&mut st);
        self.cv.notify_all();
        loop {
            if st.running == Some(rank) {
                if let Some(outcome) = st.tasks[rank].wake.take() {
                    return outcome;
                }
                // Token without a wake reason cannot happen for a parked
                // task; treat it as a delivery retry to stay safe.
                return WaitOutcome::Delivered;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The scheduler core — also the `run_until_idle` driver: picks the
    /// next runnable task (seeded), and when none exists advances virtual
    /// time to the earliest pending event (message delivery, sleep expiry,
    /// receive deadline), flushing and waking as it goes.  A state with no
    /// runnable task **and** no future event is a deadlock: every parked
    /// receiver is woken with a typed timeout instead of hanging.
    fn schedule(&self, st: &mut SimState) {
        loop {
            let ready: Vec<usize> = (0..self.world)
                .filter(|&r| st.tasks[r].state == TaskState::Ready)
                .collect();
            if !ready.is_empty() {
                let pick = ready[st.rng_below(ready.len() as u64) as usize];
                st.tasks[pick].state = TaskState::Running;
                st.running = Some(pick);
                let now = st.now_ns;
                st.fold(EV_PICK, pick as u64, now);
                return;
            }
            // No runnable task: find the earliest future event.
            let mut next: Option<u64> = st.queue.peek().map(|Reverse(m)| m.deliver_at);
            for t in &st.tasks {
                let wake = match t.state {
                    TaskState::Sleep { wake_at } => Some(wake_at),
                    TaskState::Recv {
                        deadline: Some(d), ..
                    } => Some(d),
                    _ => None,
                };
                if let Some(w) = wake {
                    next = Some(next.map_or(w, |n| n.min(w)));
                }
            }
            let Some(next) = next else {
                // Nothing in flight and nothing scheduled.  If every task
                // is done we are idle; otherwise the blocked receivers are
                // deadlocked — wake them all with a timeout so the run
                // surfaces a typed error instead of hanging forever.
                let mut woke = 0u64;
                for r in 0..self.world {
                    if matches!(st.tasks[r].state, TaskState::Recv { .. }) {
                        st.tasks[r].state = TaskState::Ready;
                        st.tasks[r].wake = Some(WaitOutcome::TimedOut { deadlock: true });
                        woke += 1;
                    }
                }
                if woke == 0 {
                    st.running = None;
                    return; // all done (or nothing started yet)
                }
                let now = st.now_ns;
                st.fold(EV_DEADLOCK, woke, now);
                dismastd_obs::counter_add("sim/deadlock_wakes", woke);
                continue;
            };
            st.now_ns = st.now_ns.max(next);
            let now = st.now_ns;
            st.fold(EV_ADVANCE, now, 0);
            dismastd_obs::counter_add("sim/time_advances", 1);
            // Flush every message due by now; wake parked receivers.
            while st
                .queue
                .peek()
                .is_some_and(|Reverse(m)| m.deliver_at <= now)
            {
                let Some(Reverse(inflight)) = st.queue.pop() else {
                    break;
                };
                let dst = inflight.dst;
                // The send fails only when the receiver thread has already
                // exited and dropped its channel — a dead letter.  The drop
                // races real time (it happens after `worker_done`), so the
                // fingerprint folds the same event either way: the *logical*
                // schedule is identical, only the OS-level drop timing
                // differs, and a Done task is never woken regardless.
                let _ = st.senders[dst].send(inflight.msg);
                st.fold(EV_FLUSH, dst as u64, inflight.uid);
                if matches!(st.tasks[dst].state, TaskState::Recv { .. }) {
                    st.tasks[dst].state = TaskState::Ready;
                    st.tasks[dst].wake = Some(WaitOutcome::Delivered);
                }
            }
            // Wake expired sleepers and receive deadlines.
            for r in 0..self.world {
                match st.tasks[r].state {
                    TaskState::Sleep { wake_at } if wake_at <= now => {
                        st.tasks[r].state = TaskState::Ready;
                        st.tasks[r].wake = None;
                    }
                    TaskState::Recv {
                        deadline: Some(d), ..
                    } if d <= now => {
                        st.tasks[r].state = TaskState::Ready;
                        st.tasks[r].wake = Some(WaitOutcome::TimedOut { deadlock: false });
                        st.fold(EV_TIMEOUT, r as u64, now);
                    }
                    _ => {}
                }
            }
        }
    }
}

impl Clock for SimNet {
    fn now_ns(&self) -> u64 {
        self.state.lock().now_ns
    }

    /// Virtual sleep: parks the task and lets the scheduler jump time
    /// forward — zero wall-clock regardless of `d`.
    fn sleep(&self, rank: usize, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let mut st = self.state.lock();
        let wake_at = st.now_ns.saturating_add(ns.max(1));
        st.tasks[rank].state = TaskState::Sleep { wake_at };
        st.tasks[rank].wake = None;
        st.running = None;
        st.fold(EV_SLEEP, rank as u64, wake_at);
        self.schedule(&mut st);
        self.cv.notify_all();
        while st.running != Some(rank) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.tasks[rank].wake = None;
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_window_matches_links_and_isolation() {
        let w = PartitionWindow {
            a: 1,
            b: 2,
            start_ns: 10,
            end_ns: 20,
        };
        assert!(w.holds(1, 2, 10));
        assert!(w.holds(2, 1, 19));
        assert!(!w.holds(1, 2, 20));
        assert!(!w.holds(0, 2, 15));
        let iso = PartitionWindow {
            a: 1,
            b: usize::MAX,
            start_ns: 0,
            end_ns: 5,
        };
        assert!(iso.holds(1, 0, 0));
        assert!(iso.holds(3, 1, 4));
        assert!(!iso.holds(0, 2, 1));
    }

    #[test]
    fn seeded_options_are_reproducible() {
        let a = SimOptions::from_seed(7);
        let b = SimOptions::from_seed(7);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.max_latency_ns, b.max_latency_ns);
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the constant so a refactor cannot silently change every
        // seed's schedule (which would invalidate recorded repro seeds).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}

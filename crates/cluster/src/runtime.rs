//! The SPMD worker runtime.
//!
//! [`Cluster::run`] spawns one OS thread per simulated worker node and runs
//! the same closure on each (Single Program, Multiple Data — the execution
//! model of the paper's Spark implementation).  Workers coordinate only
//! through [`WorkerCtx`]: tagged point-to-point messages over unbounded
//! channels, plus the collectives DisMASTD needs (barrier, broadcast,
//! gather, all-reduce of `f64` buffers, all-to-all exchange).
//!
//! Collectives are sequenced by an internal counter that advances
//! identically on every worker (valid because the program is SPMD), so
//! messages from different phases can never be confused even though the
//! channels are shared.  All remote traffic is tallied in [`CommStats`].
//!
//! ## Fault model
//!
//! The runtime is fault-tolerant: every communication primitive has a
//! fallible `try_*` variant returning [`ClusterResult`], and the classic
//! variants are thin wrappers that panic with the typed error.  When a
//! worker fails — its closure panics, returns an error, or a fault plan
//! crashes it — the runtime fans an **abort message** carrying the encoded
//! [`ClusterError`] out to every peer.  Peers blocked in any receive wake
//! up with the originating error instead of deadlocking, and
//! [`Cluster::run`] returns `Err` naming the failing rank and cause.
//! A context that has observed an abort is poisoned: all further
//! communication on it fails fast with the same error.
//!
//! Deterministic chaos is injected via [`FaultPlan`] (see
//! [`ClusterOptions`]): seeded per-message delays, drops with
//! retransmission, duplicate deliveries (suppressed by a per-sender
//! sequence check), and crash-at-collective-k worker failures.  Control
//! traffic — barrier tokens and abort fan-outs — bypasses both fault
//! injection and [`CommStats`], so logical traffic totals under chaos stay
//! bit-identical to a fault-free run.

use crate::clock::{Clock, RealClock};
use crate::comm::{BufferPool, CommStats, CommStatsSnapshot, Payload};
use crate::error::{ClusterError, ClusterResult};
use crate::fault::{FaultPlan, MessageFate};
use crate::sim::{SimNet, SimOptions, WaitOutcome};
use crate::wire::{AllreduceAlgo, WireMeta};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Tags below this are reserved for internally sequenced collectives;
/// user point-to-point tags are offset into the upper half.
const USER_TAG_BASE: u64 = 1 << 63;

/// Reserved control tag carrying an encoded [`ClusterError`] from a
/// failing worker to its peers.
const ABORT_TAG: u64 = u64::MAX;

/// Perturbation point ids for [`loom_pause`], one per coordination edge
/// whose ordering the barrier-abort protocol must tolerate.
mod pause_point {
    /// Entry into a blocking receive (barrier token or data wait).
    pub const RECV: u32 = 1;
    /// Just before a control-plane token send (barrier arrive/release).
    pub const CONTROL_SEND: u32 = 2;
    /// Just before the abort fan-out to peers.
    pub const ABORT_FANOUT: u32 = 3;
    /// An injected crash firing at a collective entry.
    pub const CRASH: u32 = 4;
}

/// Schedule-perturbation hook for the loom audit (`dismastd-xtask audit`
/// runs the model with `RUSTFLAGS="--cfg loom"`).  Under `--cfg loom`
/// each call consults the model's seeded schedule and may yield or
/// micro-sleep, reordering token sends, abort fan-outs, and blocking
/// receives against each other; in ordinary builds it compiles to
/// nothing.
#[inline]
fn loom_pause(_point: u32) {
    #[cfg(loom)]
    loom::explore::pause(_point);
}

pub(crate) struct Msg {
    src: usize,
    tag: u64,
    /// Per-sender sequence number (1-based, monotone per channel); lets
    /// receivers suppress duplicate deliveries under fault injection.
    id: u64,
    payload: Payload,
}

/// Runtime knobs for a cluster run: the receive-deadline backstop and an
/// optional fault-injection plan.
///
/// The default timeout converts any would-be deadlock (a worker waiting
/// for a message that can never arrive) into a typed
/// [`ClusterError::Timeout`] instead of a hang; the abort protocol makes
/// genuine crashes surface far faster than that.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Deadline applied to every blocking receive; `None` waits forever
    /// (the seed behaviour).
    pub default_timeout: Option<Duration>,
    /// Deterministic fault schedule; `None` runs fault-free.  Shared via
    /// `Arc` so one-shot crash points stay consumed across retries.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Run under the deterministic simulator (virtual time, seeded
    /// interleaving/latency/partitions); `None` uses real threads + clock.
    pub sim: Option<SimOptions>,
}

/// The receive backstop: 30s unless `DISMASTD_TEST_TIMEOUT_MS` overrides
/// it (`0` disables the deadline entirely; unparsable values fall back to
/// the 30s default).  Test suites set a short value so failing chaos runs
/// surface in milliseconds instead of hanging for half a minute.
fn default_timeout_from_env() -> Option<Duration> {
    match std::env::var("DISMASTD_TEST_TIMEOUT_MS") {
        Ok(ms) => match ms.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => Some(Duration::from_secs(30)),
        },
        Err(_) => Some(Duration::from_secs(30)),
    }
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            default_timeout: default_timeout_from_env(),
            fault_plan: None,
            sim: None,
        }
    }
}

impl ClusterOptions {
    /// Options with no receive deadline and no faults.
    pub fn no_timeout() -> Self {
        ClusterOptions {
            default_timeout: None,
            fault_plan: None,
            sim: None,
        }
    }

    /// Sets the receive-deadline backstop.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }

    /// Installs a fault plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs the cluster under the deterministic simulator.
    pub fn with_sim(mut self, sim: SimOptions) -> Self {
        self.sim = Some(sim);
        self
    }
}

/// Entry point for running SPMD programs on the simulated cluster.
///
/// ```
/// use dismastd_cluster::Cluster;
/// // Every worker contributes its rank; the all-reduce sums them.
/// let results = Cluster::run(4, |ctx| ctx.allreduce_sum_scalar(ctx.rank() as f64)).unwrap();
/// assert_eq!(results, vec![6.0; 4]);
/// ```
pub struct Cluster;

impl Cluster {
    /// Runs `f` on `world` simulated worker nodes and returns each worker's
    /// result, ordered by rank.
    ///
    /// A worker that panics no longer hangs its peers: the abort protocol
    /// wakes everyone and the call returns [`ClusterError::PeerCrashed`]
    /// with the failing rank and panic message.
    ///
    /// # Errors
    /// Returns the originating [`ClusterError`] when any worker fails.
    ///
    /// # Panics
    /// Panics if `world == 0` (a caller bug, not a runtime fault).
    pub fn run<T, F>(world: usize, f: F) -> ClusterResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> T + Sync,
    {
        Self::run_with_stats(world, f).map(|(results, _)| results)
    }

    /// Like [`Cluster::run`], additionally returning the aggregate
    /// communication statistics of the whole run.
    ///
    /// # Errors
    /// As for [`Cluster::run`].
    pub fn run_with_stats<T, F>(world: usize, f: F) -> ClusterResult<(Vec<T>, CommStatsSnapshot)>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> T + Sync,
    {
        Self::try_run_with_opts(world, &ClusterOptions::default(), |ctx| Ok(f(ctx)))
    }

    /// Fallible-closure variant: workers return [`ClusterResult`] and the
    /// first failure aborts the whole run.
    ///
    /// # Errors
    /// Returns the originating [`ClusterError`] when any worker fails.
    pub fn try_run<T, F>(world: usize, f: F) -> ClusterResult<Vec<T>>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> ClusterResult<T> + Sync,
    {
        Self::try_run_with_opts(world, &ClusterOptions::default(), f).map(|(r, _)| r)
    }

    /// Full-control entry point: fallible closure, explicit
    /// [`ClusterOptions`] (timeouts, fault injection), and comm stats.
    ///
    /// # Errors
    /// Returns the originating [`ClusterError`] when any worker fails.
    ///
    /// # Panics
    /// Panics if `world == 0`.
    pub fn try_run_with_opts<T, F>(
        world: usize,
        opts: &ClusterOptions,
        f: F,
    ) -> ClusterResult<(Vec<T>, CommStatsSnapshot)>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> ClusterResult<T> + Sync,
    {
        assert!(world > 0, "cluster needs at least one worker");
        let stats = Arc::new(CommStats::with_world(world));

        // One inbound channel per worker; every worker holds all senders
        // (including its own, so its receiver can never disconnect).
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(world);
        let mut receivers: Vec<Receiver<Msg>> = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        // Under simulation, one SimNet serialises every worker onto a
        // virtual clock; it doubles as the run's Clock.  Otherwise the
        // workers share a RealClock and run genuinely concurrent.
        let sim = opts
            .sim
            .as_ref()
            .map(|s| Arc::new(SimNet::new(world, senders.clone(), s)));
        let clock: Arc<dyn Clock> = match &sim {
            Some(s) => Arc::clone(s) as Arc<dyn Clock>,
            None => Arc::new(RealClock::new()),
        };

        let results: Vec<ClusterResult<T>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world);
            for (rank, receiver) in receivers.drain(..).enumerate() {
                let senders = senders.clone();
                let stats = Arc::clone(&stats);
                let plan = opts.fault_plan.clone();
                let default_timeout = opts.default_timeout;
                let sim = sim.clone();
                let clock = Arc::clone(&clock);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut ctx = WorkerCtx {
                        rank,
                        world,
                        senders,
                        receiver,
                        pending: VecDeque::new(),
                        seq: 0,
                        next_msg_id: 0,
                        last_seen_id: vec![0; world],
                        abort: None,
                        plan,
                        default_timeout,
                        stats,
                        clock,
                        sim,
                        pool: BufferPool::new(true),
                    };
                    // Under sim: wait until every worker registered and the
                    // scheduler hands this task the run token.
                    if let Some(sim) = ctx.sim.clone() {
                        sim.worker_start(rank);
                    }
                    // Catch panics so one worker's death cannot poison the
                    // join; surviving peers are woken via the abort fan-out.
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                    let result = match outcome {
                        Ok(Ok(value)) => Ok(value),
                        Ok(Err(err)) => Err(err),
                        Err(panic) => Err(error_from_panic(rank, panic)),
                    };
                    if let Err(err) = &result {
                        if ctx.abort.is_none() {
                            // This worker is the origin of the failure —
                            // tell everyone before going down.
                            ctx.abort_peers(err.clone());
                        }
                    }
                    if let Some(sim) = ctx.sim.clone() {
                        sim.worker_done(rank);
                    }
                    result
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(result) => result,
                    // Unreachable: the closure is fully guarded by
                    // catch_unwind; kept as a typed error for safety.
                    Err(_) => Err(ClusterError::PeerCrashed {
                        rank,
                        cause: "worker thread died outside the runtime guard".into(),
                    }),
                })
                .collect()
        });
        let snapshot = stats.snapshot();

        let mut values = Vec::with_capacity(world);
        let mut first_err: Option<ClusterError> = None;
        for r in results {
            match r {
                Ok(v) => values.push(v),
                Err(e) => {
                    // Prefer a root-cause error over a peer's timeout that
                    // merely raced the abort fan-out.
                    let replace = match (&first_err, &e) {
                        (None, _) => true,
                        (Some(ClusterError::Timeout { .. }), ClusterError::Timeout { .. }) => false,
                        (Some(ClusterError::Timeout { .. }), _) => true,
                        _ => false,
                    };
                    if replace {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((values, snapshot)),
        }
    }
}

/// Decodes the [`ClusterError`] carried by an abort notice, falling back
/// to a generic crash report naming the aborting sender.
fn decode_abort(msg: &Msg) -> ClusterError {
    match &msg.payload {
        Payload::Bytes(b) => ClusterError::decode(b),
        _ => None,
    }
    .unwrap_or(ClusterError::PeerCrashed {
        rank: msg.src,
        cause: "peer aborted".into(),
    })
}

/// Turns a caught panic payload into a typed error, recovering a
/// [`ClusterError`] thrown by an infallible wrapper via `panic_any`.
fn error_from_panic(rank: usize, panic: Box<dyn std::any::Any + Send>) -> ClusterError {
    match panic.downcast::<ClusterError>() {
        Ok(err) => *err,
        Err(other) => {
            let cause = if let Some(s) = other.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = other.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked".to_string()
            };
            ClusterError::PeerCrashed { rank, cause }
        }
    }
}

/// Unwraps a comm result for the classic infallible API: typed errors are
/// re-thrown via `panic_any` so the runtime can recover them intact.
fn unwrap_comm<T>(result: ClusterResult<T>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => std::panic::panic_any(e),
    }
}

/// A payload plus its accounting sidecar: `meta` is present iff the
/// payload is a compressed frame standing in for a larger flat payload,
/// in which case the logical counters record `meta.logical_bytes` and the
/// wire counters record the frame's encoded size.
#[derive(Debug, Clone)]
pub struct Framed {
    /// What goes on the wire.
    pub payload: Payload,
    /// Compression accounting; `None` for ordinary payloads.
    pub meta: Option<WireMeta>,
}

impl Framed {
    /// An uncompressed payload (wire size == logical size).
    pub fn plain(payload: Payload) -> Self {
        Framed {
            payload,
            meta: None,
        }
    }

    /// A compressed frame with its flat-equivalent accounting.
    pub fn compressed(payload: Payload, meta: WireMeta) -> Self {
        Framed {
            payload,
            meta: Some(meta),
        }
    }
}

/// Handle to an all-to-all exchange whose sends have been posted but whose
/// receives have not yet run — the overlap window.  Must be completed with
/// [`WorkerCtx::complete_exchange`] before the next collective that needs
/// the data; dropping it without completing leaves the peers' messages to
/// be drained by tag matching, but never corrupts later collectives (tags
/// are unique per collective).
#[must_use = "posted exchanges must be completed to receive the peers' payloads"]
pub struct PendingExchange {
    tag: u64,
    mine: Payload,
}

/// A worker's handle to the simulated cluster: identity, messaging, and
/// collectives.
pub struct WorkerCtx {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Out-of-order messages awaiting a matching `recv`.
    pending: VecDeque<Msg>,
    /// Collective sequence number; advances in lock-step on all workers.
    seq: u64,
    /// Last message id handed to this worker's sends (1-based).
    next_msg_id: u64,
    /// Highest message id delivered per source rank; anything at or below
    /// is a duplicate and is suppressed.
    last_seen_id: Vec<u64>,
    /// Set once a failure is observed; poisons all further communication.
    abort: Option<ClusterError>,
    plan: Option<Arc<FaultPlan>>,
    default_timeout: Option<Duration>,
    stats: Arc<CommStats>,
    /// Time source: real wall-clock in production, virtual under sim.
    clock: Arc<dyn Clock>,
    /// Set when running under the deterministic simulator; routes message
    /// hand-off and blocking through the virtual scheduler.
    sim: Option<Arc<SimNet>>,
    /// Recycles `f64` payload capacity across this worker's collectives:
    /// staging copies for sends and received contributions both cycle
    /// through here, so steady-state allreduces run allocation-free.
    pool: BufferPool,
}

impl WorkerCtx {
    /// This worker's rank in `[0, world)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of workers `M`.
    #[inline]
    pub fn world(&self) -> usize {
        self.world
    }

    /// Live communication statistics (shared across all workers).
    pub fn stats(&self) -> CommStatsSnapshot {
        self.stats.snapshot()
    }

    /// The poisoning error, if this context has observed a failure.
    pub fn abort_cause(&self) -> Option<&ClusterError> {
        self.abort.as_ref()
    }

    // ---- point-to-point --------------------------------------------------

    /// Sends `payload` to worker `dst` under a user tag.
    ///
    /// Only remote sends (`dst != rank`) count as network traffic.
    ///
    /// # Panics
    /// Panics (with the typed [`ClusterError`]) when the cluster has
    /// aborted; see [`WorkerCtx::try_send`].
    pub fn send(&mut self, dst: usize, tag: u64, payload: Payload) {
        unwrap_comm(self.try_send(dst, tag, payload));
    }

    /// Fallible [`WorkerCtx::send`].
    ///
    /// # Errors
    /// Fails fast with the poisoning error after an abort, or with
    /// [`ClusterError::PeerCrashed`] when `dst`'s inbound channel is gone.
    pub fn try_send(&mut self, dst: usize, tag: u64, payload: Payload) -> ClusterResult<()> {
        self.try_send_raw(dst, USER_TAG_BASE + tag, payload)
    }

    /// Receives the payload sent by `src` under a user tag, blocking until
    /// it arrives.  Messages with other tags are buffered, not lost.
    ///
    /// # Panics
    /// Panics (with the typed [`ClusterError`]) on abort or timeout; see
    /// [`WorkerCtx::try_recv`].
    pub fn recv(&mut self, src: usize, tag: u64) -> Payload {
        unwrap_comm(self.try_recv(src, tag))
    }

    /// Fallible [`WorkerCtx::recv`], bounded by the run's default timeout.
    ///
    /// # Errors
    /// Returns [`ClusterError::Timeout`] past the deadline, the peer's
    /// error when the cluster aborts, or the poisoning error thereafter.
    pub fn try_recv(&mut self, src: usize, tag: u64) -> ClusterResult<Payload> {
        self.try_recv_raw(src, USER_TAG_BASE + tag, self.default_timeout)
    }

    /// Like [`WorkerCtx::try_recv`] with an explicit deadline.
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_recv`].
    pub fn recv_timeout(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> ClusterResult<Payload> {
        self.try_recv_raw(src, USER_TAG_BASE + tag, Some(timeout))
    }

    // ---- internal message plumbing --------------------------------------

    fn fresh_msg_id(&mut self) -> u64 {
        self.next_msg_id += 1;
        self.next_msg_id
    }

    /// Copies `src` into a pool-recycled buffer — the allocation-free
    /// replacement for `src.to_vec()` on the collective staging paths.
    fn pooled_copy(&mut self, src: &[f64]) -> Vec<f64> {
        let mut v = self.pool.take();
        v.extend_from_slice(src);
        v
    }

    /// Sends on the data plane: counted in [`CommStats`] and subject to
    /// fault injection (remote messages only).
    fn try_send_raw(&mut self, dst: usize, tag: u64, payload: Payload) -> ClusterResult<()> {
        self.try_send_raw_with(dst, tag, payload, None)
    }

    /// [`WorkerCtx::try_send_raw`] with optional compression accounting:
    /// with `meta`, the logical counters record the flat-equivalent size
    /// (keeping compressed and flat runs byte-for-byte comparable) and the
    /// wire counters record what the frame actually cost.
    fn try_send_raw_with(
        &mut self,
        dst: usize,
        tag: u64,
        payload: Payload,
        meta: Option<WireMeta>,
    ) -> ClusterResult<()> {
        if let Some(err) = &self.abort {
            // lint:allow(alloc_hygiene): poisoned-context fail-fast — the run is already over
            return Err(err.clone());
        }
        let remote = dst != self.rank;
        if remote {
            match &meta {
                Some(m) => {
                    let wire = payload.size_bytes();
                    self.stats.record_message_from(self.rank, m.logical_bytes);
                    self.stats
                        .record_compressed(wire, m.logical_bytes, m.downcast_rows);
                    dismastd_obs::histogram_record("comm/msg_bytes", m.logical_bytes);
                    dismastd_obs::histogram_record("comm/wire_bytes", wire);
                    dismastd_obs::counter_add("comm/compressed_bytes", wire);
                    dismastd_obs::counter_add("comm/downcast_rows", m.downcast_rows);
                }
                None => {
                    self.stats
                        .record_message_from(self.rank, payload.size_bytes());
                    dismastd_obs::histogram_record("comm/msg_bytes", payload.size_bytes());
                }
            }
        }
        let id = self.fresh_msg_id();
        let fate = match (&self.plan, remote) {
            (Some(plan), true) => plan.fate(self.rank, dst, id),
            _ => MessageFate::Deliver,
        };
        let sent = match fate {
            MessageFate::Deliver => self.deliver(dst, tag, id, payload),
            MessageFate::Corrupt => {
                // Silent in-flight corruption.  Only opaque byte frames are
                // tamperable on this typed transport; the frame decoder's
                // index-block validation is the detection layer.  The byte
                // flipped sits in the header/count region, so decoding
                // always surfaces a typed error rather than wrong values.
                let tampered = match payload {
                    Payload::Bytes(b) => {
                        // lint:allow(alloc_hygiene): fault-injection corruption path, test-plan only
                        let mut v = b.to_vec();
                        let pos = usize::from(v.len() > 1);
                        if let Some(byte) = v.get_mut(pos) {
                            *byte ^= 0x55;
                        }
                        Payload::Bytes(bytes::Bytes::from(v))
                    }
                    other => other,
                };
                self.deliver(dst, tag, id, tampered)
            }
            MessageFate::Delay(d) => {
                // The simulated network holds the message; the synchronous
                // sender models that by sleeping before handing it over.
                // Virtual time under sim — the delay costs zero wall-clock.
                self.clock.sleep(self.rank, d);
                self.deliver(dst, tag, id, payload)
            }
            MessageFate::DropThenRetransmit => {
                // First copy lost in flight: never enqueued.  The sender
                // notices (simulated RTO) and retransmits the same id; the
                // extra wire copy is tallied separately from logical bytes.
                self.stats.record_retransmit(payload.size_bytes());
                let rto = self
                    .plan
                    .as_ref()
                    .map(|p| p.retransmit_delay())
                    .unwrap_or_default();
                self.clock.sleep(self.rank, rto);
                self.deliver(dst, tag, id, payload)
            }
            MessageFate::Duplicate => {
                // Spurious retransmit: both copies hit the wire; the
                // receiver's sequence check discards the second.
                self.stats.record_retransmit(payload.size_bytes());
                // lint:allow(alloc_hygiene): fault-injection duplicate delivery, test-plan only
                let first = self.deliver(dst, tag, id, payload.clone());
                if first.is_ok() {
                    // The receiver owes a recv only for the logical copy,
                    // so it may consume that and exit before the spurious
                    // one lands — a dead-letter on the simulated wire, not
                    // a peer failure.
                    let _ = self.deliver(dst, tag, id, payload);
                }
                first
            }
        };
        sent.map_err(|e| self.root_cause_for_send_failure(e))
    }

    /// A failed send means the destination already exited.  Workers only
    /// exit early after fanning out an abort, and the fan-out enqueues our
    /// copy of the abort *before* the peer can observe its own and drop its
    /// receiver — so when a send fails, the root cause is already sitting
    /// in our inbox.  Surface it instead of the secondary channel-closed
    /// symptom (which names the wrong rank).
    fn root_cause_for_send_failure(&mut self, err: ClusterError) -> ClusterError {
        while let Ok(msg) = self.receiver.try_recv() {
            if msg.tag == ABORT_TAG {
                let root = decode_abort(&msg);
                // lint:allow(alloc_hygiene): abort teardown — the run is already over
                self.abort = Some(root.clone());
                return root;
            }
            self.pending.push_back(msg);
        }
        err
    }

    fn deliver(&self, dst: usize, tag: u64, id: u64, payload: Payload) -> ClusterResult<()> {
        let msg = Msg {
            src: self.rank,
            tag,
            id,
            payload,
        };
        if let Some(sim) = &self.sim {
            // The virtual wire: delivery happens at a seeded future
            // instant (later across a partition), FIFO per link.  Posts
            // never fail — a receiver that exits before the flush turns
            // the message into a dead letter, matched by the real wire's
            // "send to exited worker" dead-letter semantics.
            dismastd_obs::alloc_exempt(|| sim.post(self.rank, dst, msg));
            return Ok(());
        }
        // The channel's internal node allocation is transport
        // infrastructure, outside the payload-path allocation audit.
        dismastd_obs::alloc_exempt(|| self.senders[dst].send(msg)).map_err(|_| {
            ClusterError::PeerCrashed {
                rank: dst,
                cause: "inbound channel closed (worker exited)".into(),
            }
        })
    }

    /// Sends on the control plane (barrier tokens): no stats, no fault
    /// injection, failures ignored — a dead peer is discovered via its
    /// abort message, not via our send.
    fn send_control(&mut self, dst: usize, tag: u64) {
        loom_pause(pause_point::CONTROL_SEND);
        let id = self.fresh_msg_id();
        let msg = Msg {
            src: self.rank,
            tag,
            id,
            payload: Payload::Empty,
        };
        if let Some(sim) = &self.sim {
            dismastd_obs::alloc_exempt(|| sim.post(self.rank, dst, msg));
            return;
        }
        let _ = dismastd_obs::alloc_exempt(|| self.senders[dst].send(msg));
    }

    /// Fans the failure out to every peer and poisons this context.
    /// Idempotent by construction: callers check `abort` first.
    fn abort_peers(&mut self, err: ClusterError) {
        loom_pause(pause_point::ABORT_FANOUT);
        for dst in 0..self.world {
            if dst == self.rank {
                continue;
            }
            let id = self.fresh_msg_id();
            let msg = Msg {
                src: self.rank,
                tag: ABORT_TAG,
                id,
                payload: Payload::Bytes(bytes::Bytes::from(err.encode())),
            };
            if let Some(sim) = &self.sim {
                sim.post(self.rank, dst, msg);
            } else {
                let _ = self.senders[dst].send(msg);
            }
        }
        self.abort = Some(err);
    }

    /// Blocks until the next message lands in this worker's channel or the
    /// deadline (nanoseconds on the run's [`Clock`]) passes.  Under sim the
    /// block parks the task on the virtual scheduler — a 30s backstop costs
    /// zero wall-clock — and a genuine deadlock (nothing in flight, no
    /// future event) also surfaces as the typed timeout.
    fn recv_next(
        &mut self,
        src: usize,
        tag: u64,
        started_ns: u64,
        deadline_ns: Option<u64>,
    ) -> ClusterResult<Msg> {
        // lint:allow(alloc_hygiene): Arc refcount bump, not a heap allocation
        if let Some(sim) = self.sim.clone() {
            loop {
                if let Ok(m) = self.receiver.try_recv() {
                    return Ok(m);
                }
                match sim.wait_for_delivery(self.rank, deadline_ns) {
                    WaitOutcome::Delivered => continue,
                    WaitOutcome::TimedOut { .. } => {
                        return Err(ClusterError::Timeout {
                            rank: self.rank,
                            src,
                            tag,
                            waited_ms: self.clock.now_ns().saturating_sub(started_ns) / 1_000_000,
                        })
                    }
                }
            }
        }
        match deadline_ns {
            None => match self.receiver.recv() {
                Ok(m) => Ok(m),
                // Unreachable (we hold a sender to ourselves), but
                // mapped to a typed error rather than a panic.
                Err(_) => Err(ClusterError::PeerCrashed {
                    rank: self.rank,
                    cause: "own inbound channel closed".into(),
                }),
            },
            Some(d) => {
                let remaining = Duration::from_nanos(d.saturating_sub(self.clock.now_ns()));
                match self.receiver.recv_timeout(remaining) {
                    Ok(m) => Ok(m),
                    Err(RecvTimeoutError::Timeout) => Err(ClusterError::Timeout {
                        rank: self.rank,
                        src,
                        tag,
                        waited_ms: self.clock.now_ns().saturating_sub(started_ns) / 1_000_000,
                    }),
                    Err(RecvTimeoutError::Disconnected) => Err(ClusterError::PeerCrashed {
                        rank: self.rank,
                        cause: "own inbound channel closed".into(),
                    }),
                }
            }
        }
    }

    /// Core receive: matches `(src, tag)`, buffers everything else,
    /// converts aborts into typed errors, suppresses duplicate deliveries,
    /// and enforces the deadline.
    fn try_recv_raw(
        &mut self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> ClusterResult<Payload> {
        loom_pause(pause_point::RECV);
        if let Some(err) = &self.abort {
            // lint:allow(alloc_hygiene): poisoned-context fail-fast — the run is already over
            return Err(err.clone());
        }
        // Check buffered messages first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            if let Some(msg) = self.pending.remove(pos) {
                return Ok(msg.payload);
            }
        }
        let started_ns = self.clock.now_ns();
        let deadline_ns = timeout
            .map(|t| started_ns.saturating_add(u64::try_from(t.as_nanos()).unwrap_or(u64::MAX)));
        loop {
            let msg = self.recv_next(src, tag, started_ns, deadline_ns)?;
            if msg.tag == ABORT_TAG {
                let err = decode_abort(&msg);
                // lint:allow(alloc_hygiene): abort teardown — the run is already over
                self.abort = Some(err.clone());
                return Err(err);
            }
            // Duplicate suppression: per-sender ids are monotone and each
            // channel is FIFO, so a non-increasing id is a replayed copy.
            if msg.id <= self.last_seen_id[msg.src] {
                self.stats.record_duplicate_suppressed();
                continue;
            }
            self.last_seen_id[msg.src] = msg.id;
            if msg.src == src && msg.tag == tag {
                return Ok(msg.payload);
            }
            self.pending.push_back(msg);
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Injected-crash checkpoint at every collective entry: if the fault
    /// plan has an armed crash for `(rank, seq)`, this worker fails here.
    fn maybe_crash(&mut self) -> ClusterResult<()> {
        if let Some(err) = &self.abort {
            // lint:allow(alloc_hygiene): poisoned-context fail-fast — the run is already over
            return Err(err.clone());
        }
        if let Some(plan) = &self.plan {
            if plan.take_crash(self.rank, self.seq) {
                loom_pause(pause_point::CRASH);
                return Err(ClusterError::PeerCrashed {
                    rank: self.rank,
                    // lint:allow(alloc_hygiene): injected-crash teardown, test-plan only
                    cause: format!("fault injection: crash at collective {}", self.seq),
                });
            }
        }
        // The simulator's crash-and-rejoin fates fire here too; the rejoin
        // half happens in `SimNet::worker_start` on the retry run.
        if let Some(sim) = &self.sim {
            if sim.take_crash(self.rank, self.seq) {
                loom_pause(pause_point::CRASH);
                return Err(ClusterError::PeerCrashed {
                    rank: self.rank,
                    // lint:allow(alloc_hygiene): injected-crash teardown, test-plan only
                    cause: format!(
                        "fault injection: crash-and-rejoin at collective {}",
                        self.seq
                    ),
                });
            }
        }
        Ok(())
    }

    // ---- collectives -----------------------------------------------------

    /// Blocks until every worker reaches the barrier.
    ///
    /// # Panics
    /// Panics (with the typed error) when the cluster aborts mid-barrier;
    /// see [`WorkerCtx::try_barrier`].
    pub fn barrier(&mut self) {
        unwrap_comm(self.try_barrier());
    }

    /// Fallible [`WorkerCtx::barrier`].  Implemented over the message
    /// channels (gather-to-0 of empty tokens, then release) rather than a
    /// blocking `std::sync::Barrier`, so a crashed worker aborts the
    /// barrier instead of deadlocking it.  Token traffic is control-plane:
    /// it appears in no byte or message counter.
    ///
    /// # Errors
    /// Returns the peer's [`ClusterError`] when the cluster aborts.
    pub fn try_barrier(&mut self) -> ClusterResult<()> {
        let _span = dismastd_obs::span("comm/barrier");
        self.maybe_crash()?;
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        if self.world == 1 {
            return Ok(());
        }
        if self.rank == 0 {
            for src in 1..self.world {
                self.try_recv_raw(src, tag, self.default_timeout)?;
            }
            for dst in 1..self.world {
                self.send_control(dst, tag);
            }
        } else {
            self.send_control(0, tag);
            self.try_recv_raw(0, tag, self.default_timeout)?;
        }
        Ok(())
    }

    /// All-to-all exchange: `outgoing[d]` is delivered to worker `d`; the
    /// return value holds, at position `s`, the payload worker `s` sent
    /// here.  Self-delivery is a local move (no traffic counted).
    ///
    /// This is the primitive behind the factor-row shuffles of Sec. IV-B1/B2.
    ///
    /// # Panics
    /// Panics unless `outgoing.len() == world`, or (with the typed error)
    /// when the cluster aborts; see [`WorkerCtx::try_exchange`].
    pub fn exchange(&mut self, outgoing: Vec<Payload>) -> Vec<Payload> {
        unwrap_comm(self.try_exchange(outgoing))
    }

    /// Fallible [`WorkerCtx::exchange`].
    ///
    /// # Errors
    /// Returns the poisoning [`ClusterError`] when any peer fails or a
    /// receive times out.
    ///
    /// # Panics
    /// Panics unless `outgoing.len() == world` (a caller bug).
    pub fn try_exchange(&mut self, outgoing: Vec<Payload>) -> ClusterResult<Vec<Payload>> {
        let _span = dismastd_obs::span("comm/exchange");
        let pending = self.post_exchange(outgoing)?;
        self.complete_exchange(pending)
    }

    /// Posts the send half of an all-to-all exchange and returns without
    /// waiting for the peers' payloads — the receive half runs in
    /// [`WorkerCtx::complete_exchange`], letting callers overlap local
    /// compute with the in-flight messages.  Collective sequencing,
    /// crash-point and stats bookkeeping all happen here, exactly as a
    /// combined [`WorkerCtx::try_exchange`] would.
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_exchange`].
    ///
    /// # Panics
    /// Panics unless `outgoing.len() == world` (a caller bug).
    pub fn post_exchange(&mut self, outgoing: Vec<Payload>) -> ClusterResult<PendingExchange> {
        self.post_exchange_framed(outgoing.into_iter().map(Framed::plain).collect())
    }

    /// [`WorkerCtx::post_exchange`] for payloads carrying compression
    /// accounting (see [`Framed`]).
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_exchange`].
    ///
    /// # Panics
    /// Panics unless `outgoing.len() == world` (a caller bug).
    pub fn post_exchange_framed(
        &mut self,
        mut outgoing: Vec<Framed>,
    ) -> ClusterResult<PendingExchange> {
        self.post_exchange_framed_drain(&mut outgoing)
    }

    /// [`WorkerCtx::post_exchange_framed`] over a reusable buffer: the
    /// frames are drained out but `outgoing` keeps its capacity, so a
    /// caller refilling the same `Vec` every iteration posts the whole
    /// exchange without allocating.
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_exchange`].
    ///
    /// # Panics
    /// Panics unless `outgoing.len() == world` (a caller bug).
    pub fn post_exchange_framed_drain(
        &mut self,
        outgoing: &mut Vec<Framed>,
    ) -> ClusterResult<PendingExchange> {
        assert_eq!(outgoing.len(), self.world, "one payload per destination");
        let _span = dismastd_obs::span("comm/exchange_post");
        self.maybe_crash()?;
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        // Keep the self-payload aside, send the rest.
        let mine = std::mem::replace(&mut outgoing[self.rank].payload, Payload::Empty);
        for (dst, framed) in outgoing.drain(..).enumerate() {
            if dst == self.rank {
                continue;
            }
            self.try_send_raw_with(dst, tag, framed.payload, framed.meta)?;
        }
        Ok(PendingExchange { tag, mine })
    }

    /// Receive half of a posted exchange: blocks for every peer's payload
    /// and returns them rank-ordered, the own payload at `rank` (same
    /// contract as [`WorkerCtx::try_exchange`]).
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_exchange`].
    pub fn complete_exchange(&mut self, pending: PendingExchange) -> ClusterResult<Vec<Payload>> {
        // lint:allow(alloc_hygiene): convenience wrapper — the steady-state path reuses a buffer via complete_exchange_into
        let mut incoming = Vec::with_capacity(self.world);
        self.complete_exchange_into(pending, &mut incoming)?;
        Ok(incoming)
    }

    /// [`WorkerCtx::complete_exchange`] into a reusable buffer: `incoming`
    /// is cleared and refilled rank-ordered, keeping its capacity so the
    /// receive half of a steady-state exchange loop never allocates.
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_exchange`].
    pub fn complete_exchange_into(
        &mut self,
        pending: PendingExchange,
        incoming: &mut Vec<Payload>,
    ) -> ClusterResult<()> {
        let _span = dismastd_obs::span("comm/exchange_wait");
        let PendingExchange { tag, mine } = pending;
        incoming.clear();
        for src in 0..self.world {
            if src == self.rank {
                incoming.push(Payload::Empty); // placeholder, replaced below
            } else {
                incoming.push(self.try_recv_raw(src, tag, self.default_timeout)?);
            }
        }
        incoming[self.rank] = mine;
        Ok(())
    }

    /// Broadcast from `root`: the root passes `Some(payload)`, everyone else
    /// passes `None`; all workers (including the root) return the payload.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`, or
    /// (with the typed error) when the cluster aborts.
    pub fn broadcast(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        unwrap_comm(self.try_broadcast(root, payload))
    }

    /// Fallible [`WorkerCtx::broadcast`].
    ///
    /// # Errors
    /// Returns the poisoning [`ClusterError`] when any peer fails or the
    /// receive times out.
    ///
    /// # Panics
    /// Panics on root/payload misuse (a caller bug).
    pub fn try_broadcast(
        &mut self,
        root: usize,
        payload: Option<Payload>,
    ) -> ClusterResult<Payload> {
        let _span = dismastd_obs::span("comm/broadcast");
        self.maybe_crash()?;
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        if self.rank == root {
            // lint:allow(panic_path): documented contract — root/payload misuse is a caller bug
            let payload = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.world {
                if dst != root {
                    // lint:allow(alloc_hygiene): each send consumes one copy of the caller-owned payload; the gram path uses the pooled flat allreduce
                    self.try_send_raw(dst, tag, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            assert!(payload.is_none(), "only the root supplies a payload");
            self.try_recv_raw(root, tag, self.default_timeout)
        }
    }

    /// Gather to `root`: returns `Some(payloads_by_rank)` on the root,
    /// `None` elsewhere.
    ///
    /// # Panics
    /// Panics (with the typed error) when the cluster aborts; see
    /// [`WorkerCtx::try_gather`].
    pub fn gather(&mut self, root: usize, payload: Payload) -> Option<Vec<Payload>> {
        unwrap_comm(self.try_gather(root, payload))
    }

    /// Fallible [`WorkerCtx::gather`].
    ///
    /// # Errors
    /// Returns the poisoning [`ClusterError`] when any peer fails or a
    /// receive times out.
    pub fn try_gather(
        &mut self,
        root: usize,
        payload: Payload,
    ) -> ClusterResult<Option<Vec<Payload>>> {
        let _span = dismastd_obs::span("comm/gather");
        self.maybe_crash()?;
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        if self.rank == root {
            // lint:allow(alloc_hygiene): O(world) result table owned by the caller — the gram path uses the pooled flat allreduce, not gather
            let mut all: Vec<Payload> = Vec::with_capacity(self.world);
            for src in 0..self.world {
                if src == root {
                    all.push(Payload::Empty); // placeholder, replaced below
                } else {
                    all.push(self.try_recv_raw(src, tag, self.default_timeout)?);
                }
            }
            all[root] = payload;
            Ok(Some(all))
        } else {
            self.try_send_raw(root, tag, payload)?;
            Ok(None)
        }
    }

    /// All-reduce (sum) of an `f64` buffer: after the call every worker's
    /// `buf` holds the element-wise sum over all workers.
    ///
    /// Implemented gather-to-0 + broadcast, the "All-to-All reduction …
    /// aggregate … and distribute among all partitions" of Sec. IV-B3.
    ///
    /// # Panics
    /// Panics (with the typed error) on abort, type mismatch, or buffer
    /// size mismatch; see [`WorkerCtx::try_allreduce_sum`].
    pub fn allreduce_sum(&mut self, buf: &mut [f64]) {
        unwrap_comm(self.try_allreduce_sum(buf));
    }

    /// Fallible [`WorkerCtx::allreduce_sum`].
    ///
    /// Buffer lengths are validated against the root's buffer; a mismatch
    /// aborts the run, so **every** rank observes the same
    /// [`ClusterError::SizeMismatch`] naming the offending rank (the seed
    /// runtime instead `assert_eq!`-ed on rank 0 and hung the rest).
    ///
    /// # Errors
    /// `SizeMismatch` on disagreeing lengths, `TypeMismatch` on protocol
    /// corruption, or the poisoning error when a peer fails.
    pub fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> ClusterResult<()> {
        self.try_allreduce_sum_with(buf, AllreduceAlgo::Flat)
    }

    /// [`WorkerCtx::try_allreduce_sum`] with an explicit algorithm choice.
    ///
    /// `Auto` resolves per call from payload size × worker count (see
    /// [`AllreduceAlgo::resolve`]).  `Ring` reproduces the flat path's
    /// per-element summation order exactly — rank-ordered chain reduction —
    /// so the two are bit-identical; `Halving` reassociates the sum and
    /// agrees only within floating-point rounding.
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_allreduce_sum`].
    pub fn try_allreduce_sum_with(
        &mut self,
        buf: &mut [f64],
        algo: AllreduceAlgo,
    ) -> ClusterResult<()> {
        // The inner primitives record their own comm/* spans, which nest
        // inside this one; comm/* totals are therefore per-primitive, not
        // additive across the family.
        let _span = dismastd_obs::span("comm/allreduce");
        if self.world == 1 {
            self.maybe_crash()?;
            return Ok(());
        }
        let bytes = std::mem::size_of_val(buf) as u64;
        match algo.resolve(self.world, bytes) {
            AllreduceAlgo::Ring => self.allreduce_ring(buf),
            AllreduceAlgo::Halving => self.allreduce_halving(buf),
            _ => self.allreduce_flat(buf),
        }
    }

    /// Seed algorithm: gather-to-0 + broadcast.  Two collectives' worth of
    /// sequencing and `2(w−1)·b` bytes through the root.
    ///
    /// The gather and broadcast halves are inlined (same spans, crash
    /// points, and sequence numbers as `try_gather` + `try_broadcast`) so
    /// contributions fold straight into `buf` as they arrive and every
    /// staging vector cycles through the worker's [`BufferPool`] — the
    /// steady-state gram reduction allocates nothing.  The fold runs in
    /// ascending rank order, bit-identical to the old gathered-table
    /// reduction.
    fn allreduce_flat(&mut self, buf: &mut [f64]) -> ClusterResult<()> {
        let root = 0usize;
        // Gather half.
        {
            let _span = dismastd_obs::span("comm/gather");
            self.maybe_crash()?;
            let tag = self.next_seq();
            if self.rank == 0 {
                self.stats.record_collective();
            }
            if self.rank == root {
                // Own contribution first (rank 0 == root), then peers in
                // ascending rank order — exactly the gathered table's
                // iteration order, so the FP sum is unchanged.
                let own = self.pooled_copy(buf);
                buf.iter_mut().for_each(|x| *x = 0.0);
                for (b, x) in buf.iter_mut().zip(&own) {
                    *b += *x;
                }
                self.pool.put(own);
                for src in 1..self.world {
                    let p = self.try_recv_raw(src, tag, self.default_timeout)?;
                    let v = match p.try_into_f64() {
                        Ok(v) => v,
                        Err(e) => {
                            // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                            self.abort_peers(e.clone());
                            return Err(e);
                        }
                    };
                    if v.len() != buf.len() {
                        let e = ClusterError::SizeMismatch {
                            rank: src,
                            expected: buf.len(),
                            found: v.len(),
                        };
                        // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                        self.abort_peers(e.clone());
                        return Err(e);
                    }
                    for (b, x) in buf.iter_mut().zip(&v) {
                        *b += *x;
                    }
                    self.pool.put(v);
                }
            } else {
                let own = self.pooled_copy(buf);
                self.try_send_raw(root, tag, Payload::F64(own))?;
            }
        }
        // Broadcast half.
        {
            let _span = dismastd_obs::span("comm/broadcast");
            self.maybe_crash()?;
            let tag = self.next_seq();
            if self.rank == 0 {
                self.stats.record_collective();
            }
            if self.rank == root {
                for dst in 0..self.world {
                    if dst != root {
                        let copy = self.pooled_copy(buf);
                        self.try_send_raw(dst, tag, Payload::F64(copy))?;
                    }
                }
            } else {
                let reduced = self
                    .try_recv_raw(root, tag, self.default_timeout)?
                    .try_into_f64()?;
                if reduced.len() != buf.len() {
                    // Can only happen on protocol corruption; still typed.
                    return Err(ClusterError::SizeMismatch {
                        rank: self.rank,
                        expected: buf.len(),
                        found: reduced.len(),
                    });
                }
                buf.copy_from_slice(&reduced);
                self.pool.put(reduced);
            }
        }
        Ok(())
    }

    /// Splits `0..len` into at most `world` contiguous, near-equal chunks
    /// (at least one, so zero-length reductions still flow through the
    /// chain and keep the message pattern uniform across ranks).
    fn ring_chunks(len: usize, world: usize) -> Vec<std::ops::Range<usize>> {
        let parts = world.min(len.max(1));
        let base = len / parts;
        let rem = len % parts;
        // lint:allow(alloc_hygiene): O(world) range table per call, independent of payload size
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for i in 0..parts {
            let extra = usize::from(i < rem);
            let end = start + base + extra;
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// Pipelined chain allreduce: chunks flow rank 0 → 1 → … → w−1
    /// accumulating contributions in rank order, then back down carrying
    /// the totals.  Per-rank traffic is ≈`2·b` bytes regardless of `w`
    /// (vs `2(w−1)·b` through the flat root), and because partial sums
    /// accumulate in exactly the flat path's rank order, results are
    /// bit-identical to [`WorkerCtx::allreduce_flat`].
    fn allreduce_ring(&mut self, buf: &mut [f64]) -> ClusterResult<()> {
        let _span = dismastd_obs::span("comm/allreduce_ring");
        self.maybe_crash()?;
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        let w = self.world;
        let me = self.rank;
        let chunks = Self::ring_chunks(buf.len(), w);
        // Upstream: receive the running sum from the left neighbour, fold
        // in the local contribution, forward right.  The last rank holds
        // each chunk's total the moment it arrives and starts it on its
        // way back down immediately, so the two waves pipeline.
        for range in &chunks {
            if me > 0 {
                let part = self
                    .try_recv_raw(me - 1, tag, self.default_timeout)?
                    .try_into_f64()?;
                if part.len() != range.len() {
                    let e = ClusterError::SizeMismatch {
                        rank: me - 1,
                        expected: range.len(),
                        found: part.len(),
                    };
                    // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                    self.abort_peers(e.clone());
                    return Err(e);
                }
                // lint:allow(alloc_hygiene): Range<usize> clone — a stack copy, no heap allocation
                for (b, x) in buf[range.clone()].iter_mut().zip(&part) {
                    *b += *x;
                }
                self.pool.put(part);
            }
            if me < w - 1 {
                // lint:allow(alloc_hygiene): Range<usize> clone — a stack copy, no heap allocation
                let copy = self.pooled_copy(&buf[range.clone()]);
                self.try_send_raw(me + 1, tag, Payload::F64(copy))?;
            } else if me > 0 {
                // Chunk total ready: start the downstream wave.
                // lint:allow(alloc_hygiene): Range<usize> clone — a stack copy, no heap allocation
                let copy = self.pooled_copy(&buf[range.clone()]);
                self.try_send_raw(me - 1, tag, Payload::F64(copy))?;
            }
        }
        // Downstream: totals flow w−1 → 0; everyone below the top copies
        // and forwards.  Channel FIFO per (src, tag) keeps the upstream
        // and downstream chunk streams from the right neighbour ordered.
        if me < w - 1 {
            for range in &chunks {
                let total = self
                    .try_recv_raw(me + 1, tag, self.default_timeout)?
                    .try_into_f64()?;
                if total.len() != range.len() {
                    let e = ClusterError::SizeMismatch {
                        rank: me + 1,
                        expected: range.len(),
                        found: total.len(),
                    };
                    // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                    self.abort_peers(e.clone());
                    return Err(e);
                }
                // lint:allow(alloc_hygiene): Range<usize> clone — a stack copy, no heap allocation
                buf[range.clone()].copy_from_slice(&total);
                if me > 0 {
                    // Forwarding moves the received buffer — no copy.
                    self.try_send_raw(me - 1, tag, Payload::F64(total))?;
                } else {
                    self.pool.put(total);
                }
            }
        }
        Ok(())
    }

    /// Recursive-halving reduce-scatter + recursive-doubling allgather.
    /// `log₂(w)` rounds each way with `≈2·b·(w−1)/w` bytes per rank.
    /// Requires a power-of-two world ([`AllreduceAlgo::resolve`] falls
    /// back to the ring otherwise) and reassociates the sum, so results
    /// match the flat path only within floating-point rounding.
    fn allreduce_halving(&mut self, buf: &mut [f64]) -> ClusterResult<()> {
        let _span = dismastd_obs::span("comm/allreduce_halving");
        self.maybe_crash()?;
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        let w = self.world;
        let me = self.rank;
        debug_assert!(w.is_power_of_two(), "resolve() guarantees a power of two");
        let mut lo = 0usize;
        let mut hi = buf.len();
        // Reduce-scatter: each round pairs ranks `dist` apart, halves the
        // active span, and reduces the kept half.  Both partners share the
        // enclosing span, so they compute the same midpoint.
        // lint:allow(alloc_hygiene): log₂(world) round records per call, independent of payload size
        let mut rounds: Vec<(usize, usize, usize)> = Vec::new(); // (partner, lo, hi)
        let mut dist = w / 2;
        while dist >= 1 {
            let partner = me ^ dist;
            let mid = lo + (hi - lo) / 2;
            let keep_low = me & dist == 0;
            let (keep, give) = if keep_low {
                ((lo, mid), (mid, hi))
            } else {
                ((mid, hi), (lo, mid))
            };
            let give_copy = self.pooled_copy(&buf[give.0..give.1]);
            self.try_send_raw(partner, tag, Payload::F64(give_copy))?;
            let part = self
                .try_recv_raw(partner, tag, self.default_timeout)?
                .try_into_f64()?;
            if part.len() != keep.1 - keep.0 {
                let e = ClusterError::SizeMismatch {
                    rank: partner,
                    expected: keep.1 - keep.0,
                    found: part.len(),
                };
                // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                self.abort_peers(e.clone());
                return Err(e);
            }
            for (b, x) in buf[keep.0..keep.1].iter_mut().zip(&part) {
                *b += *x;
            }
            self.pool.put(part);
            rounds.push((partner, lo, hi));
            lo = keep.0;
            hi = keep.1;
            dist /= 2;
        }
        // Allgather: undo the rounds in reverse, exchanging reduced spans
        // with the same partners until everyone holds the full buffer.
        for &(partner, plo, phi) in rounds.iter().rev() {
            let have_copy = self.pooled_copy(&buf[lo..hi]);
            self.try_send_raw(partner, tag, Payload::F64(have_copy))?;
            let (glo, ghi) = if lo == plo { (hi, phi) } else { (plo, lo) };
            let part = self
                .try_recv_raw(partner, tag, self.default_timeout)?
                .try_into_f64()?;
            if part.len() != ghi - glo {
                let e = ClusterError::SizeMismatch {
                    rank: partner,
                    expected: ghi - glo,
                    found: part.len(),
                };
                // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                self.abort_peers(e.clone());
                return Err(e);
            }
            buf[glo..ghi].copy_from_slice(&part);
            self.pool.put(part);
            lo = plo;
            hi = phi;
        }
        Ok(())
    }

    /// All-reduce of a single scalar.
    ///
    /// # Panics
    /// As for [`WorkerCtx::allreduce_sum`].
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        unwrap_comm(self.try_allreduce_sum_scalar(x))
    }

    /// Fallible [`WorkerCtx::allreduce_sum_scalar`].
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_allreduce_sum`].
    pub fn try_allreduce_sum_scalar(&mut self, x: f64) -> ClusterResult<f64> {
        let mut buf = [x];
        self.try_allreduce_sum(&mut buf)?;
        Ok(buf[0])
    }

    /// All-reduce (max) of a single scalar — used for convergence voting.
    ///
    /// # Panics
    /// As for [`WorkerCtx::allreduce_sum`].
    pub fn allreduce_max_scalar(&mut self, x: f64) -> f64 {
        unwrap_comm(self.try_allreduce_max_scalar(x))
    }

    /// Fallible [`WorkerCtx::allreduce_max_scalar`].
    ///
    /// # Errors
    /// As for [`WorkerCtx::try_allreduce_sum`].
    pub fn try_allreduce_max_scalar(&mut self, x: f64) -> ClusterResult<f64> {
        if self.world == 1 {
            self.maybe_crash()?;
            return Ok(x);
        }
        let gathered = self.try_gather(0, Payload::F64(vec![x]))?;
        if self.rank == 0 {
            let mut m = f64::NEG_INFINITY;
            // lint:allow(panic_path): invariant — try_gather returns Some on the root
            for p in gathered.expect("root gathers") {
                let v = match p.try_into_f64() {
                    Ok(v) => v,
                    Err(e) => {
                        // lint:allow(alloc_hygiene): mismatch fan-out — abort path, the run is over
                        self.abort_peers(e.clone());
                        return Err(e);
                    }
                };
                m = m.max(v.first().copied().unwrap_or(f64::NEG_INFINITY));
            }
            self.try_broadcast(0, Some(Payload::F64(vec![m])))?;
            Ok(m)
        } else {
            let v = self.try_broadcast(0, None)?.try_into_f64()?;
            Ok(v.first().copied().unwrap_or(f64::NEG_INFINITY))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{PartitionWindow, SimProbe};
    use std::time::Instant;

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Cluster::run(0, |_| ());
    }

    #[test]
    fn single_worker_runs() {
        let out = Cluster::run(1, |ctx| {
            ctx.barrier();
            let s = ctx.allreduce_sum_scalar(5.0);
            (ctx.rank(), s)
        })
        .unwrap();
        assert_eq!(out, vec![(0, 5.0)]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = Cluster::run(4, |ctx| ctx.rank()).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn point_to_point_round_trip() {
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Payload::F64(vec![1.0, 2.0]));
                ctx.recv(1, 8).into_f64()
            } else {
                let got = ctx.recv(0, 7).into_f64();
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                ctx.send(0, 8, Payload::F64(doubled.clone()));
                doubled
            }
        })
        .unwrap();
        assert_eq!(out[0], vec![2.0, 4.0]);
        assert_eq!(out[1], vec![2.0, 4.0]);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        // Worker 0 sends two tags; worker 1 receives them in reverse order.
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::U64(vec![11]));
                ctx.send(1, 2, Payload::U64(vec![22]));
                vec![]
            } else {
                let second = ctx.recv(0, 2).into_u64();
                let first = ctx.recv(0, 1).into_u64();
                vec![first[0], second[0]]
            }
        })
        .unwrap();
        assert_eq!(out[1], vec![11, 22]);
    }

    #[test]
    fn allreduce_sums_across_workers() {
        let out = Cluster::run(4, |ctx| {
            let mut buf = vec![ctx.rank() as f64, 1.0];
            ctx.allreduce_sum(&mut buf);
            buf
        })
        .unwrap();
        for r in out {
            assert_eq!(r, vec![6.0, 4.0]); // 0+1+2+3, 1*4
        }
    }

    #[test]
    fn allreduce_scalar_and_max() {
        let sums =
            Cluster::run(3, |ctx| ctx.allreduce_sum_scalar(ctx.rank() as f64 + 1.0)).unwrap();
        assert!(sums.iter().all(|&s| s == 6.0));
        let maxes = Cluster::run(3, |ctx| ctx.allreduce_max_scalar(-(ctx.rank() as f64))).unwrap();
        assert!(maxes.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn broadcast_delivers_to_everyone() {
        let out = Cluster::run(3, |ctx| {
            let payload = if ctx.rank() == 1 {
                Some(Payload::F64(vec![3.5]))
            } else {
                None
            };
            ctx.broadcast(1, payload).into_f64()
        })
        .unwrap();
        assert!(out.iter().all(|v| v == &vec![3.5]));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Cluster::run(3, |ctx| {
            ctx.gather(2, Payload::U64(vec![ctx.rank() as u64 * 10]))
        })
        .unwrap();
        assert!(out[0].is_none());
        assert!(out[1].is_none());
        let gathered = out[2].as_ref().unwrap();
        let vals: Vec<u64> = gathered
            .iter()
            .map(|p| match p {
                Payload::U64(v) => v[0],
                _ => panic!("wrong payload"),
            })
            .collect();
        assert_eq!(vals, vec![0, 10, 20]);
    }

    #[test]
    fn exchange_routes_by_destination() {
        let out = Cluster::run(3, |ctx| {
            // Worker r sends value 100*r + d to destination d.
            let outgoing: Vec<Payload> = (0..3)
                .map(|d| Payload::U64(vec![(100 * ctx.rank() + d) as u64]))
                .collect();
            let incoming = ctx.exchange(outgoing);
            incoming
                .into_iter()
                .map(|p| p.into_u64()[0])
                .collect::<Vec<u64>>()
        })
        .unwrap();
        // Worker d receives 100*s + d from each source s.
        assert_eq!(out[0], vec![0, 100, 200]);
        assert_eq!(out[1], vec![1, 101, 201]);
        assert_eq!(out[2], vec![2, 102, 202]);
    }

    #[test]
    fn self_messages_cost_nothing() {
        let (_, stats) = Cluster::run_with_stats(1, |ctx| {
            let incoming = ctx.exchange(vec![Payload::F64(vec![1.0; 100])]);
            assert_eq!(incoming[0].size_bytes(), 800);
        })
        .unwrap();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn remote_traffic_is_counted() {
        let (_, stats) = Cluster::run_with_stats(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Payload::F64(vec![0.0; 10])); // 80 bytes
            } else {
                ctx.recv(0, 0);
            }
        })
        .unwrap();
        assert_eq!(stats.bytes, 80);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn bytes_and_empty_payloads_account_their_wire_size() {
        // Opaque blobs count their length; Empty crosses as a zero-byte
        // message (still one logical message).
        let (_, stats) = Cluster::run_with_stats(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Payload::Bytes(bytes::Bytes::from(vec![7u8; 123])));
                ctx.send(1, 1, Payload::Empty);
            } else {
                assert_eq!(ctx.recv(0, 0).size_bytes(), 123);
                assert_eq!(ctx.recv(0, 1), Payload::Empty);
            }
        })
        .unwrap();
        assert_eq!(stats.bytes, 123);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes_by_sender, vec![123, 0]);
    }

    #[test]
    fn collectives_sequence_without_crosstalk() {
        // Two back-to-back allreduces must not mix, even with skewed timing.
        let out = Cluster::run(4, |ctx| {
            if ctx.rank() == 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            let a = ctx.allreduce_sum_scalar(1.0);
            let b = ctx.allreduce_sum_scalar(10.0);
            (a, b)
        })
        .unwrap();
        for (a, b) in out {
            assert_eq!(a, 4.0);
            assert_eq!(b, 40.0);
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Cluster::run(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier everyone must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        })
        .unwrap();
    }

    #[test]
    fn barrier_is_control_plane_traffic() {
        // Barriers synchronise via channel tokens now, but must stay
        // invisible to the logical traffic counters (seed parity).
        let (_, stats) = Cluster::run_with_stats(4, |ctx| {
            ctx.barrier();
            ctx.barrier();
        })
        .unwrap();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.collectives, 2);
    }

    fn skewed(rank: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| ((rank * 31 + i) as f64).sin() * 1e3 + i as f64 * 0.01)
            .collect()
    }

    #[test]
    fn ring_allreduce_is_bit_identical_to_flat() {
        for world in [2usize, 3, 4, 5] {
            for len in [0usize, 1, 7, 64, 257] {
                let flat = Cluster::run(world, |ctx| {
                    let mut buf = skewed(ctx.rank(), len);
                    ctx.try_allreduce_sum_with(&mut buf, AllreduceAlgo::Flat)
                        .unwrap();
                    buf
                })
                .unwrap();
                let ring = Cluster::run(world, |ctx| {
                    let mut buf = skewed(ctx.rank(), len);
                    ctx.try_allreduce_sum_with(&mut buf, AllreduceAlgo::Ring)
                        .unwrap();
                    buf
                })
                .unwrap();
                for (f, r) in flat.iter().zip(&ring) {
                    let fb: Vec<u64> = f.iter().map(|x| x.to_bits()).collect();
                    let rb: Vec<u64> = r.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(fb, rb, "world {world}, len {len}");
                }
            }
        }
    }

    #[test]
    fn ring_moves_the_same_bytes_as_flat() {
        let run = |algo| {
            let (_, stats) = Cluster::run_with_stats(4, move |ctx| {
                let mut buf = skewed(ctx.rank(), 100);
                ctx.try_allreduce_sum_with(&mut buf, algo).unwrap();
            })
            .unwrap();
            stats
        };
        let flat = run(AllreduceAlgo::Flat);
        let ring = run(AllreduceAlgo::Ring);
        // Total volume matches (2(w−1)·b both ways) but the ring spreads
        // it: the busiest sender carries far less than the flat root.
        assert_eq!(flat.bytes, ring.bytes);
        assert!(ring.sender_imbalance() < flat.sender_imbalance());
        assert!(ring.reconciles() && flat.reconciles());
    }

    #[test]
    fn halving_allreduce_sums_within_rounding() {
        for world in [2usize, 4, 8] {
            for len in [1usize, 5, 64] {
                let out = Cluster::run(world, |ctx| {
                    let mut buf = skewed(ctx.rank(), len);
                    ctx.try_allreduce_sum_with(&mut buf, AllreduceAlgo::Halving)
                        .unwrap();
                    buf
                })
                .unwrap();
                let mut expect = vec![0.0f64; len];
                for r in 0..world {
                    for (e, x) in expect.iter_mut().zip(skewed(r, len)) {
                        *e += x;
                    }
                }
                for buf in out {
                    for (got, want) in buf.iter().zip(&expect) {
                        assert!(
                            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                            "world {world}, len {len}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn halving_on_non_power_of_two_falls_back_to_ring() {
        let out = Cluster::run(3, |ctx| {
            let mut buf = vec![ctx.rank() as f64 + 1.0; 4];
            ctx.try_allreduce_sum_with(&mut buf, AllreduceAlgo::Halving)
                .unwrap();
            buf
        })
        .unwrap();
        for buf in out {
            assert_eq!(buf, vec![6.0; 4]);
        }
    }

    #[test]
    fn auto_allreduce_matches_flat_results() {
        let out = Cluster::run(4, |ctx| {
            // Big enough that Auto resolves to Ring at 4 workers.
            let mut buf = skewed(ctx.rank(), 2048);
            ctx.try_allreduce_sum_with(&mut buf, AllreduceAlgo::Auto)
                .unwrap();
            let mut small = vec![ctx.rank() as f64];
            ctx.try_allreduce_sum_with(&mut small, AllreduceAlgo::Auto)
                .unwrap();
            (buf, small[0])
        })
        .unwrap();
        let reference = Cluster::run(4, |ctx| {
            let mut buf = skewed(ctx.rank(), 2048);
            ctx.allreduce_sum(&mut buf);
            buf
        })
        .unwrap();
        for ((buf, scalar), flat) in out.iter().zip(&reference) {
            assert_eq!(buf, flat);
            assert_eq!(*scalar, 6.0);
        }
    }

    #[test]
    fn allreduce_length_disagreement_aborts_ring_and_halving() {
        for algo in [AllreduceAlgo::Ring, AllreduceAlgo::Halving] {
            let err = Cluster::try_run(4, move |ctx| {
                let len = if ctx.rank() == 2 { 8 } else { 10 };
                let mut buf = vec![1.0; len];
                ctx.try_allreduce_sum_with(&mut buf, algo)?;
                Ok(())
            })
            .unwrap_err();
            assert!(
                matches!(err, ClusterError::SizeMismatch { .. }),
                "{algo:?} must surface a typed mismatch, got {err:?}"
            );
        }
    }

    #[test]
    fn posted_exchange_overlaps_and_matches_combined() {
        let out = Cluster::run(3, |ctx| {
            let outgoing: Vec<Payload> = (0..3)
                .map(|d| Payload::U64(vec![(100 * ctx.rank() + d) as u64]))
                .collect();
            let pending = ctx.post_exchange(outgoing).unwrap();
            // Local "compute" while the messages are in flight.
            let local: u64 = (0..100).sum();
            let incoming = ctx.complete_exchange(pending).unwrap();
            (
                local,
                incoming
                    .into_iter()
                    .map(|p| p.into_u64()[0])
                    .collect::<Vec<u64>>(),
            )
        })
        .unwrap();
        assert_eq!(out[0].1, vec![0, 100, 200]);
        assert_eq!(out[1].1, vec![1, 101, 201]);
        assert_eq!(out[2].1, vec![2, 102, 202]);
    }

    #[test]
    fn two_posted_exchanges_in_flight_do_not_cross() {
        // Post two exchanges back-to-back, complete them out of order
        // relative to their posting — tags keep the payloads apart.
        let out = Cluster::run(2, |ctx| {
            let first: Vec<Payload> = (0..2).map(|d| Payload::U64(vec![d as u64])).collect();
            let second: Vec<Payload> = (0..2).map(|d| Payload::U64(vec![10 + d as u64])).collect();
            let p1 = ctx.post_exchange(first).unwrap();
            let p2 = ctx.post_exchange(second).unwrap();
            let got2 = ctx.complete_exchange(p2).unwrap();
            let got1 = ctx.complete_exchange(p1).unwrap();
            (
                got1.into_iter()
                    .map(|p| p.into_u64()[0])
                    .collect::<Vec<_>>(),
                got2.into_iter()
                    .map(|p| p.into_u64()[0])
                    .collect::<Vec<_>>(),
            )
        })
        .unwrap();
        for (r, (g1, g2)) in out.into_iter().enumerate() {
            assert_eq!(g1, vec![r as u64, r as u64]);
            assert_eq!(g2, vec![10 + r as u64, 10 + r as u64]);
        }
    }

    #[test]
    fn framed_exchange_accounts_logical_and_wire_bytes() {
        use crate::wire::{decode_rows, maybe_compress, CommPolicy};
        let rows: Vec<u32> = (0..32).collect();
        let policy = CommPolicy::default().with_downcast_f32(true);
        let (_, stats) = Cluster::run_with_stats(2, move |ctx| {
            let values: Vec<f64> = (0..rows.len() * 4).map(|i| i as f64 * 0.5).collect();
            let (frame, meta) = maybe_compress(&rows, &values, &policy).expect("frame wins");
            let me = ctx.rank();
            let outgoing: Vec<Framed> = (0..2)
                .map(|d| {
                    if d == me {
                        Framed::plain(Payload::Empty)
                    } else {
                        Framed::compressed(Payload::Bytes(frame.clone()), meta)
                    }
                })
                .collect();
            let pending = ctx.post_exchange_framed(outgoing).unwrap();
            let incoming = ctx.complete_exchange(pending).unwrap();
            let mut pool = crate::comm::BufferPool::new(false);
            let got = decode_rows(
                incoming.into_iter().nth(1 - me).unwrap(),
                1 - me,
                &rows,
                4,
                &mut pool,
            )
            .unwrap();
            for (g, w) in got.iter().zip(&values) {
                assert_eq!(*g, *w as f32 as f64);
            }
        })
        .unwrap();
        // Logical bytes: two remote messages of 32 rows × rank 4 × 8 bytes.
        assert_eq!(stats.bytes, 2 * 32 * 4 * 8);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.compressed_logical_bytes, stats.bytes);
        assert!(stats.compressed_bytes < stats.compressed_logical_bytes);
        assert_eq!(stats.downcast_rows, 2 * 32);
        assert!(stats.wire_bytes() < stats.bytes);
        assert!(stats.compression_ratio() > 1.5);
        assert!(stats.reconciles());
    }

    // ---- fault-path tests ------------------------------------------------

    #[test]
    fn panicking_worker_returns_error_not_hang() {
        let started = Instant::now();
        let err = Cluster::run(4, |ctx| {
            if ctx.rank() == 2 {
                panic!("boom at rank 2");
            }
            // Peers block on a collective the panicking worker never joins.
            ctx.allreduce_sum_scalar(1.0)
        })
        .unwrap_err();
        match err {
            ClusterError::PeerCrashed { rank, cause } => {
                assert_eq!(rank, 2);
                assert!(cause.contains("boom"), "cause = {cause}");
            }
            other => panic!("expected PeerCrashed, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "abort must beat the timeout backstop"
        );
    }

    #[test]
    fn closure_error_aborts_all_ranks() {
        let err = Cluster::try_run(3, |ctx| {
            if ctx.rank() == 1 {
                return Err(ClusterError::PeerCrashed {
                    rank: 1,
                    cause: "synthetic failure".into(),
                });
            }
            ctx.try_allreduce_sum_scalar(1.0)
        })
        .unwrap_err();
        assert_eq!(
            err,
            ClusterError::PeerCrashed {
                rank: 1,
                cause: "synthetic failure".into(),
            }
        );
    }

    #[test]
    fn recv_timeout_surfaces_typed_error() {
        // The closure handles the error itself, so the run succeeds and the
        // typed Timeout is the worker's plain return value.
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 1 {
                // Nobody ever sends tag 5.
                ctx.recv_timeout(0, 5, Duration::from_millis(20))
            } else {
                Ok(Payload::Empty)
            }
        })
        .unwrap();
        match &out[1] {
            Err(ClusterError::Timeout { rank, src, .. }) => {
                assert_eq!(*rank, 1);
                assert_eq!(*src, 0);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_context_fails_fast() {
        // Once a worker observes an abort, every later operation on its
        // context must fail immediately with the same error.
        let err = Cluster::try_run(2, |ctx| {
            if ctx.rank() == 0 {
                Err(ClusterError::PeerCrashed {
                    rank: 0,
                    cause: "origin".into(),
                })
            } else {
                // This receive wakes up with rank 0's abort...
                let first = ctx.try_recv(0, 1).unwrap_err();
                assert!(matches!(first, ClusterError::PeerCrashed { rank: 0, .. }));
                // ...and the context is now poisoned: no blocking, same error.
                let second = ctx.try_send(0, 2, Payload::Empty).unwrap_err();
                assert_eq!(first, second);
                let third = ctx.try_barrier().unwrap_err();
                assert_eq!(first, third);
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, ClusterError::PeerCrashed { rank: 0, .. }));
    }

    // ---- deterministic-simulation tests ----------------------------------

    /// A workload exercising every collective the runtime offers, so the
    /// scheduler has real interleaving decisions to make.
    fn sim_workload(ctx: &mut WorkerCtx) -> ClusterResult<Vec<f64>> {
        let me = ctx.rank() as f64;
        let world = ctx.world();
        let sum = ctx.try_allreduce_sum_scalar(me + 1.0)?;
        ctx.try_barrier()?;
        let bcast = (ctx.rank() == 0).then(|| Payload::F64(vec![sum * 2.0]));
        let root = ctx.try_broadcast(0, bcast)?.into_f64();
        let mut buf = vec![me; 8];
        ctx.try_allreduce_sum(&mut buf)?;
        let parts: Vec<Payload> = (0..world)
            .map(|d| Payload::F64(vec![me, d as f64]))
            .collect();
        let swapped = ctx.try_exchange(parts)?;
        let mut out = vec![sum, root[0], buf[0]];
        for p in swapped {
            out.extend(p.into_f64());
        }
        Ok(out)
    }

    fn run_sim(
        seed: u64,
        opts_extra: impl Fn(SimOptions) -> SimOptions,
    ) -> (Vec<Vec<f64>>, u64, u64) {
        let probe = SimProbe::new();
        let sim = opts_extra(SimOptions::from_seed(seed)).with_probe(Arc::clone(&probe));
        let opts = ClusterOptions::default().with_sim(sim);
        let (results, _) = Cluster::try_run_with_opts(4, &opts, sim_workload).unwrap();
        (results, probe.fingerprint(), probe.events())
    }

    #[test]
    fn sim_same_seed_is_bit_identical_and_same_trace() {
        let (r1, f1, e1) = run_sim(42, |s| s);
        let (r2, f2, e2) = run_sim(42, |s| s);
        assert!(e1 > 0, "probe recorded no events");
        assert_eq!(f1, f2, "same seed must replay the exact event trace");
        assert_eq!(e1, e2);
        assert_eq!(r1, r2, "same seed must produce bit-identical results");
    }

    #[test]
    fn sim_different_seeds_change_the_trace_not_the_values() {
        let (r1, f1, _) = run_sim(1, |s| s);
        let (r2, f2, _) = run_sim(2, |s| s);
        assert_ne!(f1, f2, "seeds are folded into the fingerprint");
        // Interleaving may differ but the SPMD results cannot.
        assert_eq!(r1, r2);
    }

    #[test]
    fn sim_results_match_real_execution_bitwise() {
        let (sim_results, _, _) = run_sim(7, |s| s);
        let real = Cluster::try_run(4, sim_workload).unwrap();
        assert_eq!(sim_results, real);
    }

    #[test]
    fn sim_partition_heals_and_run_completes() {
        // Cut rank 0 off from everyone for the first chunk of virtual
        // time: collectives stall behind held messages, then the heal
        // releases them and the run completes with correct values.
        let (r, _, _) = run_sim(11, |s| {
            s.with_partition(PartitionWindow {
                a: 0,
                b: usize::MAX,
                start_ns: 0,
                end_ns: 50_000,
            })
        });
        let real = Cluster::try_run(4, sim_workload).unwrap();
        assert_eq!(r, real);
    }

    #[test]
    fn sim_chaos_fates_stay_bit_identical_to_fault_free() {
        let plan = Arc::new(
            FaultPlan::seeded(99)
                .with_message_drops(150)
                .with_duplicates(150)
                .with_delays(150, Duration::from_millis(40)),
        );
        let probe = SimProbe::new();
        let opts = ClusterOptions::default()
            .with_fault_plan(plan)
            .with_sim(SimOptions::from_seed(5).with_probe(Arc::clone(&probe)));
        let (chaos, _) = Cluster::try_run_with_opts(4, &opts, sim_workload).unwrap();
        let (clean, _, _) = run_sim(5, |s| s);
        assert_eq!(chaos, clean, "fault fates must not change logical results");
        assert!(probe.events() > 0);
    }

    #[test]
    fn sim_deadlock_surfaces_typed_timeout_instead_of_hanging() {
        // Rank 1 waits for a message nobody will ever send, with NO
        // deadline: under the simulator that is a detected deadlock (no
        // runnable task, nothing in flight) and wakes as a typed Timeout
        // in zero wall-clock.
        let opts = ClusterOptions::no_timeout().with_sim(SimOptions::from_seed(3));
        let (results, _) = Cluster::try_run_with_opts(2, &opts, |ctx| {
            if ctx.rank() == 1 {
                Ok(ctx.try_recv(0, 77).unwrap_err())
            } else {
                Err(ClusterError::PeerCrashed {
                    rank: 0,
                    cause: "unused".into(),
                })
                .or(Ok(ClusterError::Timeout {
                    rank: 0,
                    src: 0,
                    tag: 0,
                    waited_ms: 0,
                }))
            }
        })
        .unwrap();
        assert!(
            matches!(results[1], ClusterError::Timeout { rank: 1, .. }),
            "expected typed timeout, got {:?}",
            results[1]
        );
    }

    #[test]
    fn sim_virtual_sleep_costs_no_wall_clock() {
        // A 10-minute delay fate would hang a real run; under the
        // simulator it is a virtual-time jump.
        let probe = SimProbe::new();
        let plan = Arc::new(FaultPlan::seeded(1).with_delays(1000, Duration::from_secs(600)));
        // No receive deadline: the 10-minute virtual delay must not trip
        // the (virtual) 30s backstop, and must still cost no wall-clock.
        let opts = ClusterOptions::no_timeout()
            .with_fault_plan(plan)
            .with_sim(SimOptions::from_seed(9).with_probe(Arc::clone(&probe)));
        let started = Instant::now();
        let (results, _) = Cluster::try_run_with_opts(2, &opts, |ctx| {
            if ctx.rank() == 0 {
                ctx.try_send(1, 1, Payload::F64(vec![4.25]))?;
                Ok(0.0)
            } else {
                Ok(ctx.try_recv(0, 1)?.into_f64()[0])
            }
        })
        .unwrap();
        assert_eq!(results[1], 4.25);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "virtual delays must not consume wall-clock"
        );
        assert!(
            probe.virtual_ns() >= 600_000_000_000,
            "the 10-minute delay must appear in virtual time (got {}ns)",
            probe.virtual_ns()
        );
    }
}

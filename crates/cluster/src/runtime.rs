//! The SPMD worker runtime.
//!
//! [`Cluster::run`] spawns one OS thread per simulated worker node and runs
//! the same closure on each (Single Program, Multiple Data — the execution
//! model of the paper's Spark implementation).  Workers coordinate only
//! through [`WorkerCtx`]: tagged point-to-point messages over unbounded
//! channels, plus the collectives DisMASTD needs (barrier, broadcast,
//! gather, all-reduce of `f64` buffers, all-to-all exchange).
//!
//! Collectives are sequenced by an internal counter that advances
//! identically on every worker (valid because the program is SPMD), so
//! messages from different phases can never be confused even though the
//! channels are shared.  All remote traffic is tallied in [`CommStats`].

use crate::comm::{CommStats, CommStatsSnapshot, Payload};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};

/// Tags below this are reserved for internally sequenced collectives;
/// user point-to-point tags are offset into the upper half.
const USER_TAG_BASE: u64 = 1 << 63;

struct Msg {
    src: usize,
    tag: u64,
    payload: Payload,
}

/// Entry point for running SPMD programs on the simulated cluster.
///
/// ```
/// use dismastd_cluster::Cluster;
/// // Every worker contributes its rank; the all-reduce sums them.
/// let results = Cluster::run(4, |ctx| ctx.allreduce_sum_scalar(ctx.rank() as f64));
/// assert_eq!(results, vec![6.0; 4]);
/// ```
pub struct Cluster;

impl Cluster {
    /// Runs `f` on `world` simulated worker nodes and returns each worker's
    /// result, ordered by rank.
    ///
    /// # Panics
    /// Panics if `world == 0` or if any worker panics.
    pub fn run<T, F>(world: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> T + Sync,
    {
        Self::run_with_stats(world, f).0
    }

    /// Like [`Cluster::run`], additionally returning the aggregate
    /// communication statistics of the whole run.
    pub fn run_with_stats<T, F>(world: usize, f: F) -> (Vec<T>, CommStatsSnapshot)
    where
        T: Send,
        F: Fn(&mut WorkerCtx) -> T + Sync,
    {
        assert!(world > 0, "cluster needs at least one worker");
        let stats = Arc::new(CommStats::with_world(world));
        let barrier = Arc::new(Barrier::new(world));

        // One inbound channel per worker; every worker holds all senders.
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(world);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(world);
        for _ in 0..world {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let results: Vec<T> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world);
            for (rank, slot) in receivers.iter_mut().enumerate() {
                let receiver = slot.take().expect("receiver taken once");
                let senders = senders.clone();
                let barrier = Arc::clone(&barrier);
                let stats = Arc::clone(&stats);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut ctx = WorkerCtx {
                        rank,
                        world,
                        senders,
                        receiver,
                        pending: VecDeque::new(),
                        seq: 0,
                        barrier,
                        stats,
                    };
                    f(&mut ctx)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let snapshot = stats.snapshot();
        (results, snapshot)
    }
}

/// A worker's handle to the simulated cluster: identity, messaging, and
/// collectives.
pub struct WorkerCtx {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Out-of-order messages awaiting a matching `recv`.
    pending: VecDeque<Msg>,
    /// Collective sequence number; advances in lock-step on all workers.
    seq: u64,
    barrier: Arc<Barrier>,
    stats: Arc<CommStats>,
}

impl WorkerCtx {
    /// This worker's rank in `[0, world)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of workers `M`.
    #[inline]
    pub fn world(&self) -> usize {
        self.world
    }

    /// Live communication statistics (shared across all workers).
    pub fn stats(&self) -> CommStatsSnapshot {
        self.stats.snapshot()
    }

    /// Sends `payload` to worker `dst` under a user tag.
    ///
    /// Only remote sends (`dst != rank`) count as network traffic.
    pub fn send(&self, dst: usize, tag: u64, payload: Payload) {
        self.send_raw(dst, USER_TAG_BASE + tag, payload);
    }

    /// Receives the payload sent by `src` under a user tag, blocking until
    /// it arrives.  Messages with other tags are buffered, not lost.
    pub fn recv(&mut self, src: usize, tag: u64) -> Payload {
        self.recv_raw(src, USER_TAG_BASE + tag)
    }

    fn send_raw(&self, dst: usize, tag: u64, payload: Payload) {
        if dst != self.rank {
            self.stats
                .record_message_from(self.rank, payload.size_bytes());
        }
        self.senders[dst]
            .send(Msg {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver lives as long as the cluster");
    }

    fn recv_raw(&mut self, src: usize, tag: u64) -> Payload {
        // Check buffered messages first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return self.pending.remove(pos).expect("position valid").payload;
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .expect("senders live as long as the cluster");
            if msg.src == src && msg.tag == tag {
                return msg.payload;
            }
            self.pending.push_back(msg);
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Blocks until every worker reaches the barrier.
    pub fn barrier(&mut self) {
        if self.rank == 0 {
            self.stats.record_collective();
        }
        self.barrier.wait();
    }

    /// All-to-all exchange: `outgoing[d]` is delivered to worker `d`; the
    /// return value holds, at position `s`, the payload worker `s` sent
    /// here.  Self-delivery is a local move (no traffic counted).
    ///
    /// This is the primitive behind the factor-row shuffles of Sec. IV-B1/B2.
    ///
    /// # Panics
    /// Panics unless `outgoing.len() == world`.
    pub fn exchange(&mut self, mut outgoing: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(outgoing.len(), self.world, "one payload per destination");
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        // Keep the self-payload aside, send the rest.
        let mine = std::mem::replace(&mut outgoing[self.rank], Payload::Empty);
        for (dst, payload) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            self.send_raw(dst, tag, payload);
        }
        let mut incoming = Vec::with_capacity(self.world);
        for src in 0..self.world {
            if src == self.rank {
                incoming.push(Payload::Empty); // placeholder, replaced below
            } else {
                incoming.push(self.recv_raw(src, tag));
            }
        }
        incoming[self.rank] = mine;
        incoming
    }

    /// Broadcast from `root`: the root passes `Some(payload)`, everyone else
    /// passes `None`; all workers (including the root) return the payload.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast(&mut self, root: usize, payload: Option<Payload>) -> Payload {
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        if self.rank == root {
            let payload = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.world {
                if dst != root {
                    self.send_raw(dst, tag, payload.clone());
                }
            }
            payload
        } else {
            assert!(payload.is_none(), "only the root supplies a payload");
            self.recv_raw(root, tag)
        }
    }

    /// Gather to `root`: returns `Some(payloads_by_rank)` on the root,
    /// `None` elsewhere.
    pub fn gather(&mut self, root: usize, payload: Payload) -> Option<Vec<Payload>> {
        let tag = self.next_seq();
        if self.rank == 0 {
            self.stats.record_collective();
        }
        if self.rank == root {
            let mut all: Vec<Payload> = Vec::with_capacity(self.world);
            for src in 0..self.world {
                if src == root {
                    all.push(payload.clone());
                } else {
                    all.push(self.recv_raw(src, tag));
                }
            }
            all[root] = payload;
            Some(all)
        } else {
            self.send_raw(root, tag, payload);
            None
        }
    }

    /// All-reduce (sum) of an `f64` buffer: after the call every worker's
    /// `buf` holds the element-wise sum over all workers.
    ///
    /// Implemented gather-to-0 + broadcast, the "All-to-All reduction …
    /// aggregate … and distribute among all partitions" of Sec. IV-B3.
    pub fn allreduce_sum(&mut self, buf: &mut [f64]) {
        if self.world == 1 {
            return;
        }
        let root = 0usize;
        let gathered = self.gather(root, Payload::F64(buf.to_vec()));
        if self.rank == root {
            let all = gathered.expect("root gathers");
            buf.iter_mut().for_each(|x| *x = 0.0);
            for p in all {
                let v = p.into_f64();
                assert_eq!(v.len(), buf.len(), "allreduce buffers must agree");
                for (b, x) in buf.iter_mut().zip(v) {
                    *b += x;
                }
            }
            self.broadcast(root, Some(Payload::F64(buf.to_vec())));
        } else {
            let reduced = self.broadcast(root, None).into_f64();
            buf.copy_from_slice(&reduced);
        }
    }

    /// All-reduce of a single scalar.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// All-reduce (max) of a single scalar — used for convergence voting.
    pub fn allreduce_max_scalar(&mut self, x: f64) -> f64 {
        if self.world == 1 {
            return x;
        }
        let gathered = self.gather(0, Payload::F64(vec![x]));
        if self.rank == 0 {
            let m = gathered
                .expect("root gathers")
                .into_iter()
                .map(|p| p.into_f64()[0])
                .fold(f64::NEG_INFINITY, f64::max);
            self.broadcast(0, Some(Payload::F64(vec![m])));
            m
        } else {
            self.broadcast(0, None).into_f64()[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        Cluster::run(0, |_| ());
    }

    #[test]
    fn single_worker_runs() {
        let out = Cluster::run(1, |ctx| {
            ctx.barrier();
            let s = ctx.allreduce_sum_scalar(5.0);
            (ctx.rank(), s)
        });
        assert_eq!(out, vec![(0, 5.0)]);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = Cluster::run(4, |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn point_to_point_round_trip() {
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Payload::F64(vec![1.0, 2.0]));
                ctx.recv(1, 8).into_f64()
            } else {
                let got = ctx.recv(0, 7).into_f64();
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                ctx.send(0, 8, Payload::F64(doubled.clone()));
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0]);
        assert_eq!(out[1], vec![2.0, 4.0]);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        // Worker 0 sends two tags; worker 1 receives them in reverse order.
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Payload::U64(vec![11]));
                ctx.send(1, 2, Payload::U64(vec![22]));
                vec![]
            } else {
                let second = ctx.recv(0, 2).into_u64();
                let first = ctx.recv(0, 1).into_u64();
                vec![first[0], second[0]]
            }
        });
        assert_eq!(out[1], vec![11, 22]);
    }

    #[test]
    fn allreduce_sums_across_workers() {
        let out = Cluster::run(4, |ctx| {
            let mut buf = vec![ctx.rank() as f64, 1.0];
            ctx.allreduce_sum(&mut buf);
            buf
        });
        for r in out {
            assert_eq!(r, vec![6.0, 4.0]); // 0+1+2+3, 1*4
        }
    }

    #[test]
    fn allreduce_scalar_and_max() {
        let sums = Cluster::run(3, |ctx| ctx.allreduce_sum_scalar(ctx.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| s == 6.0));
        let maxes = Cluster::run(3, |ctx| ctx.allreduce_max_scalar(-(ctx.rank() as f64)));
        assert!(maxes.iter().all(|&m| m == 0.0));
    }

    #[test]
    fn broadcast_delivers_to_everyone() {
        let out = Cluster::run(3, |ctx| {
            let payload = if ctx.rank() == 1 {
                Some(Payload::F64(vec![3.5]))
            } else {
                None
            };
            ctx.broadcast(1, payload).into_f64()
        });
        assert!(out.iter().all(|v| v == &vec![3.5]));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Cluster::run(3, |ctx| {
            ctx.gather(2, Payload::U64(vec![ctx.rank() as u64 * 10]))
        });
        assert!(out[0].is_none());
        assert!(out[1].is_none());
        let gathered = out[2].as_ref().unwrap();
        let vals: Vec<u64> = gathered
            .iter()
            .map(|p| match p {
                Payload::U64(v) => v[0],
                _ => panic!("wrong payload"),
            })
            .collect();
        assert_eq!(vals, vec![0, 10, 20]);
    }

    #[test]
    fn exchange_routes_by_destination() {
        let out = Cluster::run(3, |ctx| {
            // Worker r sends value 100*r + d to destination d.
            let outgoing: Vec<Payload> = (0..3)
                .map(|d| Payload::U64(vec![(100 * ctx.rank() + d) as u64]))
                .collect();
            let incoming = ctx.exchange(outgoing);
            incoming
                .into_iter()
                .map(|p| p.into_u64()[0])
                .collect::<Vec<u64>>()
        });
        // Worker d receives 100*s + d from each source s.
        assert_eq!(out[0], vec![0, 100, 200]);
        assert_eq!(out[1], vec![1, 101, 201]);
        assert_eq!(out[2], vec![2, 102, 202]);
    }

    #[test]
    fn self_messages_cost_nothing() {
        let (_, stats) = Cluster::run_with_stats(1, |ctx| {
            let incoming = ctx.exchange(vec![Payload::F64(vec![1.0; 100])]);
            assert_eq!(incoming[0].size_bytes(), 800);
        });
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn remote_traffic_is_counted() {
        let (_, stats) = Cluster::run_with_stats(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, Payload::F64(vec![0.0; 10])); // 80 bytes
            } else {
                ctx.recv(0, 0);
            }
        });
        assert_eq!(stats.bytes, 80);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn collectives_sequence_without_crosstalk() {
        // Two back-to-back allreduces must not mix, even with skewed timing.
        let out = Cluster::run(4, |ctx| {
            if ctx.rank() == 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            let a = ctx.allreduce_sum_scalar(1.0);
            let b = ctx.allreduce_sum_scalar(10.0);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, 4.0);
            assert_eq!(b, 40.0);
        }
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Cluster::run(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier everyone must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
